"""Per-unit symbol tables for the linter.

Race classification needs to know *where a name lives* — a write to a
local scalar races differently from a write to a COMMON-block member or a
USE-associated module array, and the finding should say which sharing
channel is involved.  :class:`UnitSymbols` flattens one subprogram's view
of the world (dummies, locals, COMMON members, USE imports, host-module
variables) into a name → channel map, resolving wildcard ``USE`` lines
through the host :class:`~repro.integration.legacy.LegacyCodebase` index
when one is supplied.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..fortranlib.ast import (
    FCommon,
    FDecl,
    FModule,
    FOmpDirective,
    FProgramUnit,
    FSubprogram,
    FUse,
)

__all__ = ["UnitSymbols", "build_symbols"]


@dataclass
class UnitSymbols:
    """What one subprogram can see, and through which channel."""

    unit: str
    channels: dict[str, str] = field(default_factory=dict)
    threadprivate: set[str] = field(default_factory=set)
    # Modules USE'd without ONLY whose export list could not be resolved:
    # visibility is then undecidable, so `unknown-clause-var` stays quiet.
    unresolved_use: list[str] = field(default_factory=list)

    def visible(self, name: str) -> bool:
        return name.lower() in self.channels

    def channel(self, name: str) -> str:
        n = name.lower()
        if n in self.channels:
            return self.channels[n]
        if self.unresolved_use:
            return f"USE {self.unresolved_use[0]} (unresolved)"
        return "unknown"

    @property
    def conclusive(self) -> bool:
        """False when a wildcard USE could hide any name."""
        return not self.unresolved_use


def _decl_names(decls: list) -> list[str]:
    names: list[str] = []
    for d in decls:
        if isinstance(d, FDecl):
            names.extend(e.name.lower() for e in d.entities)
    return names


def _module_exports(module_name: str, *, host: FModule | None,
                    legacy) -> set[str] | None:
    """Export list of ``module_name``, or None if we cannot know it."""
    if host is not None and host.name.lower() == module_name.lower():
        return set(_decl_names(host.decls))
    if legacy is not None:
        exports = legacy.module_exports.get(module_name.lower())
        if exports is not None:
            return {e.lower() for e in exports}
    return None


def build_symbols(
    sub: FSubprogram | FProgramUnit,
    *,
    host: FModule | None = None,
    legacy=None,
    siblings: dict[str, FModule] | None = None,
) -> UnitSymbols:
    """Build the symbol table for ``sub``.

    ``host`` is the enclosing FModule when the unit lives in one (host
    association), ``legacy`` an optional LegacyCodebase whose indexes
    resolve cross-file USE lines, and ``siblings`` the modules defined in
    the same parsed file (a generated file often defines the globals
    module its own units USE).
    """
    syms = UnitSymbols(unit=sub.name)
    ch = syms.channels

    # Host association: everything the enclosing module declares.
    if host is not None:
        for n in _decl_names(host.decls):
            ch[n] = f"host module {host.name}"
        for d in host.decls:
            if isinstance(d, FOmpDirective) and d.kind == "threadprivate":
                syms.threadprivate.update(v.lower() for v in d.private)

    decls = list(sub.decls)
    body_from = sub.body

    # USE association.
    for d in decls:
        if not isinstance(d, FUse):
            continue
        mod = d.module.lower()
        if d.only is not None:
            for n in d.only:
                ch[n.lower()] = f"USE {mod}"
            continue
        exports = _module_exports(mod, host=host, legacy=legacy)
        if exports is None and siblings and mod in siblings:
            exports = set(_decl_names(siblings[mod].decls))
        if exports is None:
            syms.unresolved_use.append(mod)
        else:
            for n in exports:
                ch[n] = f"USE {mod}"

    # Locals first: a COMMON member always carries a plain type
    # declaration too, so the COMMON channel must overwrite "local".
    for n in _decl_names(decls):
        ch[n] = "local"

    # COMMON blocks.
    for d in decls:
        if isinstance(d, FCommon):
            for n in d.names:
                ch[n.lower()] = f"COMMON /{d.block}/"

    # Dummies last (locals may re-declare a dummy's type; the dummy
    # channel must win).
    if isinstance(sub, FSubprogram):
        for p in sub.params:
            ch[p.lower()] = "dummy argument"
        if sub.result:
            ch[sub.result.lower()] = "function result"

    # THREADPRIVATE declared inside the unit itself.
    for d in list(decls) + list(body_from):
        if isinstance(d, FOmpDirective) and d.kind == "threadprivate":
            syms.threadprivate.update(v.lower() for v in d.private)

    return syms
