"""Executable case-study scenarios for guarded execution and faultcheck.

An :class:`ExecScenario` bundles what the robustness tooling needs to run
one paper workload end to end: how to build the GLAF program, the entry
point with its arguments/sizes/values, and which global grids constitute
the observable output.  ``repro profile --guarded`` and the
``repro faultcheck`` sweep both resolve workloads through
:func:`scenario_for`.

Unlike :mod:`repro.robust.faults` / :mod:`repro.robust.watchdog`, this
module imports the case-study packages, so it must be imported explicitly
(``from repro.robust import scenarios``) — never from
``repro.robust.__init__`` (import cycle: sarb/fun3d import glafexec,
which imports robust).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..errors import WorkloadError

__all__ = ["ExecScenario", "SCENARIOS", "scenario_for"]

# setup() -> (program, args, sizes, values, compare)
_Setup = Callable[[], tuple]


@dataclass(frozen=True)
class ExecScenario:
    """One runnable case-study workload for the robustness tooling."""

    name: str
    entry: str
    _setup: _Setup

    def setup(self) -> tuple:
        """``(program, args, sizes, values, compare_grids)`` for one run."""
        return self._setup()

    def run_guarded(self, *, seed: int = 1, tolerance: float = 1e-9,
                    limits=None):
        """Run under :class:`repro.glafexec.GuardedRunner`."""
        from ..glafexec import GuardedRunner

        program, args, sizes, values, _ = self.setup()
        runner = GuardedRunner(program, seed=seed, tolerance=tolerance,
                               limits=limits)
        return runner.run(self.entry, args, sizes=sizes, values=values)

    def run_executor(self, executor: str, **kwargs):
        """Run under a named executor (``docs/EXECUTORS.md``)."""
        from ..glafexec import get_executor

        program, args, sizes, values, _ = self.setup()
        return get_executor(executor, **kwargs).run(
            program, self.entry, args, sizes=sizes, values=values)

    def reference(self) -> dict[str, np.ndarray]:
        """Plain-interpreter output snapshot of the compare grids."""
        from ..glafexec import run_interpreted

        program, args, sizes, values, compare = self.setup()
        _, ctx, _ = run_interpreted(program, self.entry, args,
                                    sizes=sizes, values=values)
        return ctx.snapshot(list(compare))


def _sarb_setup() -> tuple:
    from ..sarb.atmosphere import DEFAULT_DIMS, make_inputs
    from ..sarb.kernels import build_sarb_program
    from ..sarb.validation import OUTPUT_NAMES, _context_values

    inp = make_inputs(DEFAULT_DIMS, seed=0)
    program = build_sarb_program(inp.dims)
    args = [inp.dims.nv, inp.dims.nblw, inp.dims.nbsw]
    return program, args, None, _context_values(inp), tuple(OUTPUT_NAMES)


def _fun3d_setup() -> tuple:
    from ..fun3d.kernels import build_fun3d_program, context_values
    from ..fun3d.mesh import make_mesh
    from ..fun3d.validation import mesh_sizes

    mesh = make_mesh(n_points=40, seed=42)
    program = build_fun3d_program()
    return (program, [mesh.ncell, mesh.nnz], mesh_sizes(mesh),
            context_values(mesh), ("jac",))


SCENARIOS: dict[str, ExecScenario] = {
    "sarb": ExecScenario("sarb", "entropy_interface", _sarb_setup),
    "fun3d": ExecScenario("fun3d", "edgejp", _fun3d_setup),
}


def scenario_for(program_name: str) -> ExecScenario:
    try:
        return SCENARIOS[program_name]
    except KeyError:
        raise WorkloadError(
            f"no robustness scenario for program {program_name!r}; "
            f"known: {', '.join(sorted(SCENARIOS))}"
        ) from None
