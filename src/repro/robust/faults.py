"""Deterministic fault injection at named pipeline sites.

A :class:`FaultPlan` is a seeded list of :class:`FaultSpec` entries, each
naming a registered :data:`SITES` entry.  Pipeline modules call the
module-level :func:`inject` hook at their site; when no plan is active the
hook is a cheap no-op, and under :func:`fault_injection` the active plan
decides — deterministically — whether and how to corrupt the payload,
raise an artificial :class:`repro.errors.ExecutionError`, or stall.

The hooks are intentionally tiny (one call per site) so the injection
surface is auditable: grep for ``inject(`` and compare against
:data:`SITES`.  ``repro faultcheck`` sweeps every registered site and
reports whether each fault was *recovered* or *surfaced* — see
:mod:`repro.robust.faultcheck` and ``docs/ROBUSTNESS.md``.

This module must stay dependency-light (errors + numpy only): the
instrumented packages (``fortranlib``, ``analysis``, ``codegen``,
``glafexec``) import it at module load.
"""

from __future__ import annotations

import re
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from ..errors import ExecutionError, ValidationError

__all__ = [
    "InjectionSite", "SITES", "FaultSpec", "FaultEvent", "FaultPlan",
    "inject", "fault_injection", "get_fault_plan",
]


@dataclass(frozen=True)
class InjectionSite:
    """One named place in the pipeline where a fault can be injected."""

    name: str
    module: str          # dotted module containing the inject() hook
    kinds: tuple[str, ...]
    description: str


SITES: dict[str, InjectionSite] = {
    s.name: s for s in (
        InjectionSite(
            name="fortran.lex.tokens",
            module="repro.fortranlib.lexer",
            kinds=("corrupt-token",),
            description="corrupt one lexed token of the FORTRAN source",
        ),
        InjectionSite(
            name="analysis.parallelize.verdict",
            module="repro.analysis.parallelize",
            kinds=("misparallelize",),
            description="force a serial (loop-carried) step to be marked parallel",
        ),
        InjectionSite(
            name="codegen.python.assign",
            module="repro.codegen.python_gen",
            kinds=("perturb",),
            description="numerically perturb one assignment in generated Python",
        ),
        InjectionSite(
            name="codegen.fortran.omp",
            module="repro.codegen.fortran",
            kinds=("drop-private", "drop-reduction", "widen-collapse",
                   "drop-directive", "spurious-directive"),
            description="corrupt one emitted !$OMP directive clause set "
                        "(the mutants 'repro lint' must catch)",
        ),
        InjectionSite(
            name="codegen.fortran.body",
            module="repro.codegen.fortran",
            kinds=("drop-init", "overrun-bound", "dead-store", "flip-intent"),
            description="corrupt one generated subprogram body "
                        "(the mutants 'repro lint --dataflow' must catch)",
        ),
        InjectionSite(
            name="exec.interp.step",
            module="repro.glafexec.interp",
            kinds=("raise",),
            description="raise an artificial ExecutionError at a step boundary",
        ),
        InjectionSite(
            name="exec.interp.iter",
            module="repro.glafexec.interp",
            kinds=("delay",),
            description="stall one loop iteration (exercises the wall-clock watchdog)",
        ),
        InjectionSite(
            name="numeric.sentinel",
            module="repro.glafexec.interp",
            kinds=("nan", "inf", "overflow"),
            description="poison one assigned value with NaN/Inf/huge "
                        "(the trips the numeric sentinels must catch)",
        ),
    )
}


@dataclass
class FaultSpec:
    """One planned fault: which site, what kind, when it fires.

    ``at`` is the first *matching* visit at which the fault may fire (0 =
    immediately); ``max_fires`` bounds how often it does (the default of 1
    makes faults one-shot, so a serial re-execution after a fallback is
    clean).  ``match`` filters visits by the metadata the hook supplies
    (e.g. ``{"function": "adjust2"}`` or ``{"parallel": True}``).
    """

    site: str
    kind: str
    at: int = 0
    max_fires: int = 1
    param: float | None = None
    match: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        site = SITES.get(self.site)
        if site is None:
            raise ValidationError(
                f"unknown injection site {self.site!r}; "
                f"registered: {', '.join(sorted(SITES))}"
            )
        if self.kind not in site.kinds:
            raise ValidationError(
                f"site {self.site!r} does not support fault kind {self.kind!r} "
                f"(supports: {', '.join(site.kinds)})"
            )

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse a CLI spec ``SITE:KIND[:FUNCTION]`` (``repro profile --fault``)."""
        parts = text.split(":")
        if len(parts) not in (2, 3) or not all(parts):
            raise ValidationError(
                f"bad fault spec {text!r}; expected SITE:KIND[:FUNCTION], "
                "e.g. analysis.parallelize.verdict:misparallelize:adjust2"
            )
        match = {"function": parts[2]} if len(parts) == 3 else {}
        return cls(site=parts[0], kind=parts[1], match=match)


@dataclass(frozen=True)
class FaultEvent:
    """A fault that actually fired."""

    site: str
    kind: str
    detail: str


class FaultPlan:
    """Seeded, deterministic schedule of faults for one pipeline run."""

    def __init__(self, faults: list[FaultSpec] | tuple[FaultSpec, ...] = (),
                 *, seed: int = 0):
        self.faults = list(faults)
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.fired: list[FaultEvent] = []
        self._visits: dict[int, int] = {}
        self._fires: dict[int, int] = {}

    def visit(self, site: str, payload: Any, meta: dict[str, object]) -> Any:
        """One hook visit: apply the first armed matching fault, if any.

        Returns a replacement payload (or ``None`` to keep the original);
        ``raise``-kind faults raise :class:`ExecutionError` instead, and
        ``delay``-kind faults sleep then return ``None``.
        """
        for i, spec in enumerate(self.faults):
            if spec.site != site or not self._matches(spec, payload, meta):
                continue
            n = self._visits[i] = self._visits.get(i, 0) + 1
            if n - 1 < spec.at or self._fires.get(i, 0) >= spec.max_fires:
                continue
            # Charge the fire up front so a 'raise'-kind fault is spent
            # even though its exception propagates out of _apply.
            self._fires[i] = self._fires.get(i, 0) + 1
            out = self._apply(spec, payload, meta)
            if out is _NO_EFFECT:
                self._fires[i] -= 1
                continue            # transform declined; stay armed
            return out
        return None

    def _matches(self, spec: FaultSpec, payload: Any, meta: dict) -> bool:
        for key, want in spec.match.items():
            have = meta.get(key, _MISSING)
            if have is _MISSING:
                have = getattr(payload, key, _MISSING)
            if have != want:
                return False
        return True

    def _apply(self, spec: FaultSpec, payload: Any, meta: dict) -> Any:
        if spec.kind == "raise":
            self._record(spec, meta, "raised injected ExecutionError")
            raise ExecutionError(
                f"injected fault at {spec.site} ({_fmt_meta(meta)})"
            )
        if spec.kind == "delay":
            seconds = spec.param if spec.param is not None else 0.2
            self._record(spec, meta, f"stalled {seconds}s")
            time.sleep(seconds)
            return None
        transform = _TRANSFORMS[spec.kind]
        out, detail = transform(payload, spec, self.rng)
        if out is _NO_EFFECT:
            return _NO_EFFECT
        self._record(spec, meta, detail)
        return out

    def _record(self, spec: FaultSpec, meta: dict, detail: str) -> None:
        if meta:
            detail = f"{detail} ({_fmt_meta(meta)})"
        self.fired.append(FaultEvent(site=spec.site, kind=spec.kind, detail=detail))
        from ..observe import get_decisions

        dl = get_decisions()
        if dl.enabled:
            dl.record(
                "fault", str(meta.get("function", "")),
                int(meta.get("step", -1)), spec.site, "injected",
                reasons=(detail,), kind=spec.kind,
            )


_MISSING = object()
_NO_EFFECT = object()    # transform sentinel: fault had nothing to corrupt


def _fmt_meta(meta: dict) -> str:
    return ", ".join(f"{k}={v}" for k, v in sorted(meta.items())) or "no context"


# ----------------------------------------------------------------------
# site-specific payload transforms
# ----------------------------------------------------------------------
def _corrupt_token(tokens: Any, spec: FaultSpec, rng) -> tuple[Any, str]:
    candidates = [i for i, t in enumerate(tokens)
                  if t.kind not in ("newline", "eof")]
    if not candidates:
        return _NO_EFFECT, ""
    i = candidates[int(rng.integers(len(candidates)))]
    old = tokens[i]
    bad = type(old)(kind="op", text="?", line=old.line, col=old.col)
    out = list(tokens)
    out[i] = bad
    return out, (f"corrupted token {old.text!r} -> '?' at "
                 f"line {old.line}, col {old.col}")


def _misparallelize(sp: Any, spec: FaultSpec, rng) -> tuple[Any, str]:
    if sp.parallel or sp.depth == 0:
        return _NO_EFFECT, ""
    why = sp.reasons[0] if sp.reasons else "unknown"
    sp.parallel = True
    sp.reasons = [f"FAULT-INJECTED: forced parallel despite: {why}"]
    return sp, (f"forced step {sp.function}/{sp.step_name} parallel "
                f"(was serial: {why})")


def _perturb_assign(value: str, spec: FaultSpec, rng) -> tuple[Any, str]:
    eps = spec.param if spec.param is not None else 1e-3
    return (f"(({value}) * (1 + {eps!r}) + {eps!r})",
            f"perturbed assignment RHS by eps={eps!r}")


# -- codegen.fortran.omp: clause mutations for the lint self-test ------
# The payload is the (frozen) codegen OmpDirective about to be rendered,
# or None when the step is a serial loop (only 'spurious-directive' can
# fire there).  Transforms decline (_NO_EFFECT) when the directive lacks
# the clause they corrupt, so a FaultSpec stays armed until it finds one.

def _drop_private(d: Any, spec: FaultSpec, rng) -> tuple[Any, str]:
    if d is None or not d.private:
        return _NO_EFFECT, ""
    from dataclasses import replace

    dropped = d.private[int(rng.integers(len(d.private)))]
    out = replace(d, private=tuple(v for v in d.private if v != dropped))
    return out, f"dropped PRIVATE({dropped})"


def _drop_reduction(d: Any, spec: FaultSpec, rng) -> tuple[Any, str]:
    if d is None or not d.reductions:
        return _NO_EFFECT, ""
    from dataclasses import replace

    victim = d.reductions[int(rng.integers(len(d.reductions)))]
    out = replace(d, reductions=tuple(r for r in d.reductions if r != victim))
    return out, f"dropped REDUCTION({victim[0]}:{victim[1]})"


def _widen_collapse(d: Any, spec: FaultSpec, rng) -> tuple[Any, str]:
    if d is None:
        return _NO_EFFECT, ""
    from dataclasses import replace

    extra = int(spec.param) if spec.param is not None else 1
    out = replace(d, collapse=d.collapse + extra)
    return out, f"widened COLLAPSE({d.collapse}) to COLLAPSE({out.collapse})"


def _drop_directive(d: Any, spec: FaultSpec, rng) -> tuple[Any, str]:
    if d is None:
        return _NO_EFFECT, ""
    from dataclasses import replace

    return replace(d, suppressed=True), "suppressed the PARALLEL DO directive"


def _spurious_directive(d: Any, spec: FaultSpec, rng) -> tuple[Any, str]:
    if d is not None:
        return _NO_EFFECT, ""
    # Imported lazily (fire time only): this module must stay
    # dependency-light because codegen itself imports it at load.
    from ..codegen.omp import OmpDirective

    return OmpDirective(), "added a spurious PARALLEL DO on a serial loop"


# -- codegen.fortran.body: dataflow mutations for the lint self-test ---
# The payload is one generated subprogram's body lines (list of str);
# transforms return a *new* list (the original is never mutated) and
# decline (_NO_EFFECT) when the unit offers no viable target, so a
# FaultSpec stays armed until it reaches a unit that does.  These are the
# seeded bugs the dataflow rules of 'repro lint --dataflow' must catch:
# use-before-def, possible-oob, dead-store and intent-violation.

def _drop_init(lines: Any, spec: FaultSpec, rng) -> tuple[Any, str]:
    """Delete the only assignment to a scalar that is used elsewhere."""
    stmt = [ln.split("!")[0] for ln in lines]
    assigns: dict[str, list[int]] = {}
    for i, ln in enumerate(stmt):
        m = re.match(r"\s*(\w+)\s*=", ln)
        if m and "::" not in ln:
            assigns.setdefault(m.group(1).lower(), []).append(i)
    cands = []
    for name, idxs in sorted(assigns.items()):
        if len(idxs) != 1:
            continue
        i = idxs[0]
        used = any(j != i and "::" not in stmt[j]
                   and re.search(rf"\b{name}\b", stmt[j], re.IGNORECASE)
                   for j in range(len(stmt)))
        if used:
            cands.append((name, i))
    if not cands:
        return _NO_EFFECT, ""
    name, i = cands[int(rng.integers(len(cands)))]
    out = list(lines[:i]) + list(lines[i + 1:])
    return out, (f"deleted the only assignment to {name!r}: "
                 f"{lines[i].strip()!r}")


def _overrun_bound(lines: Any, spec: FaultSpec, rng) -> tuple[Any, str]:
    """Widen every literal ``DO v = 1, N`` upper bound in the unit by one
    (off-by-one past the end of any array those loops index)."""
    out = list(lines)
    hit = []
    for i, ln in enumerate(lines):
        body = ln.split("!")[0].rstrip()
        m = re.match(r"(\s*DO\s+(\w+)\s*=\s*1\s*,\s*)(\d+)$", body)
        if m:
            widened = int(m.group(3)) + 1
            out[i] = f"{m.group(1)}{widened}"
            hit.append(f"{m.group(2)}<={widened}")
    if not hit:
        return _NO_EFFECT, ""
    return out, f"widened {len(hit)} literal DO bound(s): {', '.join(hit)}"


def _dead_store_array(lines: Any, spec: FaultSpec, rng) -> tuple[Any, str]:
    """Store into an allocated array that nothing else touches."""
    stmt = [ln.split("!")[0] for ln in lines]
    cands = []
    for i, ln in enumerate(stmt):
        m = re.match(r"(\s*)ALLOCATE\((\w+)\(([^()]*)\)\)", ln, re.IGNORECASE)
        if not m:
            continue
        name = m.group(2)
        low = name.lower()
        used = any(j != i and "::" not in stmt[j]
                   and not re.match(r"\s*(DE)?ALLOCATE\b", stmt[j],
                                    re.IGNORECASE)
                   and re.search(rf"\b{low}\b", stmt[j], re.IGNORECASE)
                   for j in range(len(stmt)))
        if not used:
            rank = m.group(3).count(",") + 1
            cands.append((i, m.group(1), name, rank))
    if not cands:
        return _NO_EFFECT, ""
    i, indent, name, rank = cands[int(rng.integers(len(cands)))]
    subs = ", ".join(["1"] * rank)
    out = list(lines[:i + 1]) + [f"{indent}{name}({subs}) = 0.0D0"] \
        + list(lines[i + 1:])
    return out, f"stored to never-read array {name!r} after its ALLOCATE"


def _flip_intent(lines: Any, spec: FaultSpec, rng) -> tuple[Any, str]:
    """Rewrite one scalar INTENT(IN) declaration to INTENT(OUT)."""
    cands = []
    for i, ln in enumerate(lines):
        if "INTENT(IN)" not in ln or "DIMENSION" in ln:
            continue
        ent = ln.split("::")[-1]
        if "(" in ent or "," in ent:
            continue
        cands.append(i)
    if not cands:
        return _NO_EFFECT, ""
    i = cands[int(rng.integers(len(cands)))]
    out = list(lines)
    out[i] = lines[i].replace("INTENT(IN)", "INTENT(OUT)")
    name = lines[i].split("::")[-1].strip()
    return out, f"flipped INTENT(IN) to INTENT(OUT) on dummy {name!r}"


# -- numeric.sentinel: poison one assigned value ------------------------
# The payload is the scalar about to be stored into a floating grid; the
# interpreter only offers floating destinations, so the poison is always
# representable.  With sentinels active the poisoned store trips a typed
# NumericIntegrityError; without them it demonstrates the silent-NaN hole
# the sentinels close.

def _poison_nan(value: Any, spec: FaultSpec, rng) -> tuple[Any, str]:
    return float("nan"), f"poisoned assigned value {value!r} with NaN"


def _poison_inf(value: Any, spec: FaultSpec, rng) -> tuple[Any, str]:
    return float("inf"), f"poisoned assigned value {value!r} with +Inf"


def _poison_overflow(value: Any, spec: FaultSpec, rng) -> tuple[Any, str]:
    huge = spec.param if spec.param is not None else 1e305
    return float(huge), f"poisoned assigned value {value!r} with {huge!r}"


_TRANSFORMS = {
    "corrupt-token": _corrupt_token,
    "misparallelize": _misparallelize,
    "perturb": _perturb_assign,
    "drop-private": _drop_private,
    "drop-reduction": _drop_reduction,
    "widen-collapse": _widen_collapse,
    "drop-directive": _drop_directive,
    "spurious-directive": _spurious_directive,
    "drop-init": _drop_init,
    "overrun-bound": _overrun_bound,
    "dead-store": _dead_store_array,
    "flip-intent": _flip_intent,
    "nan": _poison_nan,
    "inf": _poison_inf,
    "overflow": _poison_overflow,
}


# ----------------------------------------------------------------------
# the process-wide hook
# ----------------------------------------------------------------------
_ACTIVE: FaultPlan | None = None


def get_fault_plan() -> FaultPlan | None:
    """The currently-installed plan (``None`` almost always)."""
    return _ACTIVE


def inject(site: str, payload: Any = None, **meta: object) -> Any:
    """Fault-injection hook.  No-op unless a :func:`fault_injection` plan
    is active; otherwise returns a replacement payload or ``None``."""
    if _ACTIVE is None:
        return None
    if site not in SITES:       # keep hooks honest even in tests
        raise ValidationError(f"inject() called with unregistered site {site!r}")
    return _ACTIVE.visit(site, payload, meta)


@contextmanager
def fault_injection(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the duration of the block (plans nest; the
    innermost wins)."""
    global _ACTIVE
    prev = _ACTIVE
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = prev
