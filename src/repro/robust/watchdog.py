"""Execution watchdogs: iteration budgets and wall-clock limits.

Nothing in the pipeline bounded interpreter runtime before this module: a
mis-transformed loop nest (or an injected stall) could hang a run
silently.  :class:`ResourceLimits` declares the budget, :class:`Budget`
enforces it from inside the IR interpreter (which counts innermost loop
iterations), and :func:`wall_clock_guard` enforces the wall-clock half for
generated-Python execution, where we cannot count iterations but can trace
the generated module's frames.

All violations raise the typed :class:`repro.errors.ResourceLimitError`
(an :class:`ExecutionError` the divergence guard deliberately refuses to
recover from — re-running an exhausted step only digs deeper).
"""

from __future__ import annotations

import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from ..errors import ResourceLimitError

__all__ = ["ResourceLimits", "Budget", "wall_clock_guard",
           "apply_memory_limit"]


@dataclass(frozen=True)
class ResourceLimits:
    """Execution budget for one entry-point call.

    ``max_loop_iterations`` bounds the total number of innermost loop-body
    executions (IR interpreter only); ``max_wall_seconds`` bounds elapsed
    wall-clock time (IR interpreter and generated Python);
    ``max_memory_mb`` bounds the address space of an isolated batch
    worker process (enforced by :func:`apply_memory_limit` at worker
    startup — the parent process is never limited).
    """

    max_loop_iterations: int | None = None
    max_wall_seconds: float | None = None
    max_memory_mb: int | None = None

    def __post_init__(self) -> None:
        if self.max_loop_iterations is not None and self.max_loop_iterations <= 0:
            raise ValueError("max_loop_iterations must be positive")
        if self.max_wall_seconds is not None and self.max_wall_seconds <= 0:
            raise ValueError("max_wall_seconds must be positive")
        if self.max_memory_mb is not None and self.max_memory_mb <= 0:
            raise ValueError("max_memory_mb must be positive")


def apply_memory_limit(max_memory_mb: int) -> bool:
    """Cap this process's address space at ``max_memory_mb`` MiB.

    Uses ``RLIMIT_AS``, so an over-budget allocation surfaces as a clean
    :class:`MemoryError` inside the process (which the batch worker
    converts to a typed :class:`repro.errors.ResourceLimitError`) instead
    of inviting the kernel OOM killer.  Returns ``False`` when the
    platform has no ``resource`` module or refuses the limit — callers
    degrade to wall-clock budgets only.
    """
    try:
        import resource
    except ImportError:              # pragma: no cover - non-POSIX
        return False
    limit = int(max_memory_mb) * 1024 * 1024
    try:
        _soft, hard = resource.getrlimit(resource.RLIMIT_AS)
        if hard != resource.RLIM_INFINITY:
            limit = min(limit, hard)
        resource.setrlimit(resource.RLIMIT_AS, (limit, hard))
    except (ValueError, OSError):    # pragma: no cover - platform refusal
        return False
    return True


class Budget:
    """Runtime enforcement state for one :class:`ResourceLimits`."""

    def __init__(self, limits: ResourceLimits, what: str = "execution"):
        self.limits = limits
        self.what = what
        self.iterations = 0
        self._deadline: float | None = None

    def start(self) -> None:
        self.iterations = 0
        if self.limits.max_wall_seconds is not None:
            self._deadline = time.monotonic() + self.limits.max_wall_seconds

    def tick(self, n: int = 1) -> None:
        """Account ``n`` innermost loop iterations; raise when over budget."""
        self.iterations += n
        cap = self.limits.max_loop_iterations
        if cap is not None and self.iterations > cap:
            raise ResourceLimitError(
                f"{self.what}: iteration budget exceeded "
                f"({self.iterations} > {cap})"
            )
        self.check_time()

    def check_time(self) -> None:
        if self._deadline is not None and time.monotonic() > self._deadline:
            raise ResourceLimitError(
                f"{self.what}: wall-clock limit of "
                f"{self.limits.max_wall_seconds}s exceeded"
            )


@contextmanager
def wall_clock_guard(limits: ResourceLimits | None, *, what: str,
                     filename_prefix: str = "<glaf:") -> Iterator[None]:
    """Enforce ``max_wall_seconds`` over a block of generated-Python code.

    Installs a line-granular trace function restricted to frames whose
    code objects come from ``filename_prefix`` (the ``compile`` filename
    GeneratedModule uses), so only generated code pays the tracing cost.
    A no-op when ``limits`` is ``None`` or has no wall-clock bound.
    """
    if limits is None or limits.max_wall_seconds is None:
        yield
        return
    deadline = time.monotonic() + limits.max_wall_seconds
    message = (f"{what}: wall-clock limit of "
               f"{limits.max_wall_seconds}s exceeded")

    def tracer(frame, event, arg):
        if not frame.f_code.co_filename.startswith(filename_prefix):
            return None
        if time.monotonic() > deadline:
            raise ResourceLimitError(message)
        return tracer

    prev = sys.gettrace()
    sys.settrace(tracer)
    try:
        yield
    finally:
        sys.settrace(prev)
