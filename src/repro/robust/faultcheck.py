"""The ``repro faultcheck`` sweep: fire every registered fault, verify the
pipeline degrades the way ``docs/ROBUSTNESS.md`` promises.

For each :data:`repro.robust.faults.SITES` entry the sweep installs a
seeded one-fault :class:`FaultPlan`, runs a representative workload, and
classifies the outcome:

* **recovered** — the recovery machinery engaged (parser resynchronization,
  guard serial-fallback, generated-Python fallback) *and* the final results
  match the fault-free reference;
* **surfaced** — the fault could not be recovered but was reported as a
  typed :class:`repro.errors.GlafError` (e.g. the watchdog's
  :class:`ResourceLimitError`);
* **failed** — a raw (non-GlafError) exception escaped, the fault never
  fired, or results were silently corrupted.

``repro faultcheck`` exits non-zero iff any site **failed**.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import (
    DiagnosticBundle,
    ExecutionError,
    GlafError,
    NumericIntegrityError,
    ResourceLimitError,
)
from ..numeric import snapshot_max_abs_error
from .faults import SITES, FaultPlan, FaultSpec, fault_injection
from .watchdog import ResourceLimits

__all__ = ["SiteResult", "FaultCheckReport", "run_faultcheck"]

_TOLERANCE = 1e-9

# Two healthy units; the corrupt-token fault turns one token into garbage.
_LEX_CHECK_SOURCE = """\
subroutine scale_it(a, n)
  integer, intent(in) :: n
  real(kind=8), intent(inout) :: a(n)
  integer :: i
  do i = 1, n
    a(i) = a(i) * 2.0
  end do
end subroutine scale_it

subroutine shift_it(b, n)
  integer, intent(in) :: n
  real(kind=8), intent(inout) :: b(n)
  integer :: i
  do i = 1, n
    b(i) = b(i) + 1.0
  end do
end subroutine shift_it
"""


@dataclass(frozen=True)
class SiteResult:
    """Outcome of exercising one injection site."""

    site: str
    kind: str
    outcome: str          # 'recovered' | 'surfaced' | 'failed'
    detail: str
    fired: int            # faults that actually fired
    events: int           # recovery events observed (guard demotions, diags)

    @property
    def ok(self) -> bool:
        return self.outcome in ("recovered", "surfaced")


@dataclass
class FaultCheckReport:
    seed: int
    results: list[SiteResult]

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    def to_json(self) -> dict:
        return {
            "schema": "repro.robust.faultcheck/v1",
            "seed": self.seed,
            "ok": self.ok,
            "sites": [
                {"site": r.site, "kind": r.kind, "outcome": r.outcome,
                 "detail": r.detail, "fired": r.fired, "events": r.events}
                for r in self.results
            ],
        }

    def render(self) -> str:
        lines = [f"faultcheck (seed={self.seed}): "
                 f"{len(self.results)} site(s) swept"]
        width = max(len(r.site) for r in self.results)
        for r in self.results:
            lines.append(
                f"  {r.site:<{width}}  {r.kind:<15}  {r.outcome:<9}  {r.detail}"
            )
        lines.append("result: " + ("OK" if self.ok else "FAILED"))
        return "\n".join(lines)


def _max_abs_err(got: dict[str, np.ndarray], ref: dict[str, np.ndarray]) -> float:
    # NaN/Inf-aware (returns inf on a special-value mismatch): a silently
    # NaN-corrupted run must never compare equal to the reference.
    return snapshot_max_abs_error(got, ref)


def _check_lexer(seed: int) -> SiteResult:
    from ..fortranlib.parser import parse_source

    site, kind = "fortran.lex.tokens", "corrupt-token"
    plan = FaultPlan([FaultSpec(site, kind)], seed=seed)
    try:
        with fault_injection(plan):
            parse_source(_LEX_CHECK_SOURCE, recover=True)
        # The recovering parser skipped the corruption entirely — only
        # acceptable if the fault genuinely fired and produced no error
        # (it cannot: '?' is not parsable), so treat as failed.
        return SiteResult(site, kind, "failed",
                          "corrupted source parsed without diagnostics",
                          len(plan.fired), 0)
    except DiagnosticBundle as bundle:
        partial = bundle.partial
        units = (len(partial.subprograms) + len(partial.modules)
                 + len(partial.programs)) if partial is not None else 0
        if units >= 1:
            return SiteResult(
                site, kind, "recovered",
                f"parser resynchronized: {len(bundle.diagnostics)} diagnostic(s), "
                f"{units} unit(s) still parsed", len(plan.fired),
                len(bundle.diagnostics))
        return SiteResult(site, kind, "surfaced",
                          f"typed DiagnosticBundle, no units salvaged: {bundle}",
                          len(plan.fired), len(bundle.diagnostics))
    except GlafError as e:
        return SiteResult(site, kind, "surfaced",
                          f"typed {type(e).__name__}: {e}", len(plan.fired), 0)


def _check_guarded(site: str, kind: str, spec: FaultSpec, seed: int) -> SiteResult:
    """Shared harness: SARB under GuardedRunner must demote and still match."""
    from ..observe import observed
    from .scenarios import scenario_for

    scenario = scenario_for("sarb")
    ref = scenario.reference()
    plan = FaultPlan([spec], seed=seed)
    with observed(), fault_injection(plan):
        run = scenario.run_guarded(tolerance=_TOLERANCE)
    if not plan.fired:
        return SiteResult(site, kind, "failed", "fault never fired", 0, 0)
    if not run.events:
        return SiteResult(site, kind, "failed",
                          "fault fired but the guard recorded no fallback",
                          len(plan.fired), 0)
    _, _, _, _, compare = scenario.setup()
    err = _max_abs_err(run.context.snapshot(list(compare)), ref)
    if err > _TOLERANCE:
        return SiteResult(site, kind, "failed",
                          f"fallback taken but outputs diverge ({err:.3e})",
                          len(plan.fired), len(run.events))
    demoted = ", ".join(f"{f}/{i}" for f, i in sorted(run.demoted))
    return SiteResult(
        site, kind, "recovered",
        f"serial fallback on {demoted}; outputs match reference "
        f"(max abs err {err:.1e})", len(plan.fired), len(run.events))


def _check_codegen(seed: int) -> SiteResult:
    from ..glafexec import guarded_python_run
    from ..observe import observed
    from .scenarios import scenario_for

    site, kind = "codegen.python.assign", "perturb"
    scenario = scenario_for("sarb")
    program, args, sizes, values, compare = scenario.setup()
    ref = scenario.reference()
    plan = FaultPlan(
        [FaultSpec(site, kind, match={"function": "shortwave_entropy_model"})],
        seed=seed)
    with observed(), fault_injection(plan):
        result = guarded_python_run(
            program, scenario.entry, args, sizes=sizes, values=values,
            compare=list(compare), tolerance=_TOLERANCE)
    if not plan.fired:
        return SiteResult(site, kind, "failed", "fault never fired", 0, 0)
    if not result.fell_back:
        return SiteResult(site, kind, "failed",
                          "perturbed generated Python was not detected",
                          len(plan.fired), 0)
    err = _max_abs_err(result.context.snapshot(list(compare)), ref)
    if err > _TOLERANCE:
        return SiteResult(site, kind, "failed",
                          f"fallback taken but outputs diverge ({err:.3e})",
                          len(plan.fired), 1)
    return SiteResult(site, kind, "recovered",
                      f"fell back to interpreter: {result.reason}",
                      len(plan.fired), 1)


def _check_watchdog(seed: int) -> SiteResult:
    from ..glafexec import run_interpreted
    from .scenarios import scenario_for

    site, kind = "exec.interp.iter", "delay"
    scenario = scenario_for("sarb")
    program, args, sizes, values, _ = scenario.setup()
    plan = FaultPlan(
        [FaultSpec(site, kind, param=0.25, max_fires=10**6)], seed=seed)
    limits = ResourceLimits(max_wall_seconds=0.05)
    try:
        with fault_injection(plan):
            run_interpreted(program, scenario.entry, args,
                            sizes=sizes, values=values, limits=limits)
        return SiteResult(site, kind, "failed",
                          "stalled run finished under its wall-clock limit",
                          len(plan.fired), 0)
    except ResourceLimitError as e:
        return SiteResult(site, kind, "surfaced",
                          f"watchdog raised ResourceLimitError: {e}",
                          len(plan.fired), 1)


def _check_lint_mutant(site: str, mutant_id: str, seed: int) -> SiteResult:
    """One representative mutant per codegen site; the linter must catch it.

    The full mutant corpus runs under ``repro lint --selftest`` (and in
    CI); the sweep runs a single cheap mutant per site so every registered
    site has a scenario here too.
    """
    from ..lint.mutation import MUTANTS, run_mutant

    mutant = next(m for m in MUTANTS if m.id == mutant_id)
    result, report = run_mutant(mutant, seed=seed)
    if not result.fired:
        return SiteResult(site, mutant.kind, "failed", "fault never fired", 0, 0)
    if not result.caught:
        return SiteResult(site, mutant.kind, "failed",
                          f"linter missed the mutant ({result.fault_detail})",
                          1, 0)
    return SiteResult(
        site, mutant.kind, "recovered",
        f"linter caught '{result.fault_detail}' via {', '.join(result.rules)}",
        1, len(report.findings))


def _check_sentinel(seed: int) -> SiteResult:
    """Two-part scenario for ``numeric.sentinel``:

    1. an injected NaN assignment must trip an active sentinel — typed
       :class:`NumericIntegrityError` naming the kind, plus a
       ``numeric:nan`` DecisionLog event;
    2. a benchmark sweep that crashes mid-run must *resume* from its
       checkpoints and produce an ``experiments`` section content-digest
       identical to an uninterrupted sweep (the resumability the sentinel
       trip relies on: detect, fix, re-run only what's missing).
    """
    import tempfile
    from pathlib import Path

    from ..bench.harness import Experiment, ExperimentResult
    from ..bench.record import record_benchmark
    from ..glafexec import run_interpreted
    from ..numeric import CheckpointStore, content_digest, sentinels
    from ..observe import observed
    from .scenarios import scenario_for

    site, kind = "numeric.sentinel", "nan"

    # -- part 1: the trip ------------------------------------------------
    scenario = scenario_for("sarb")
    program, args, sizes, values, _ = scenario.setup()
    plan = FaultPlan([FaultSpec(site, kind)], seed=seed)
    trip: NumericIntegrityError | None = None
    with observed() as obs, fault_injection(plan), sentinels():
        try:
            run_interpreted(program, scenario.entry, args,
                            sizes=sizes, values=values)
        except NumericIntegrityError as e:
            trip = e
    if not plan.fired:
        return SiteResult(site, kind, "failed", "fault never fired", 0, 0)
    if trip is None:
        return SiteResult(site, kind, "failed",
                          "injected NaN was assigned but no sentinel tripped "
                          "(the silent-NaN hole is open)", len(plan.fired), 0)
    if trip.kind != "nan":
        return SiteResult(site, kind, "failed",
                          f"sentinel tripped with kind {trip.kind!r}, "
                          "expected 'nan'", len(plan.fired), 0)
    decisions = obs.decisions.for_stage("numeric:nan")
    if not decisions:
        return SiteResult(site, kind, "failed",
                          "sentinel tripped but recorded no numeric:nan "
                          "DecisionLog event", len(plan.fired), 0)

    # -- part 2: crash-and-resume ---------------------------------------
    def registry(crash_on_call: int | None) -> dict[str, Experiment]:
        calls = {"n": 0}

        def run() -> ExperimentResult:
            calls["n"] += 1
            if crash_on_call is not None and calls["n"] == crash_on_call:
                raise ExecutionError("simulated mid-sweep crash")
            return ExperimentResult(
                experiment_id="SYN", title="synthetic resume probe",
                headers=["case", "value"], rows=[["a", 1.0]])

        return {"SYN": Experiment("SYN", "synthetic resume probe", "-", run)}

    def fake_clock():
        # Integer steps: binary-exact, so elapsed differences are identical
        # regardless of where in the tick sequence a repeat starts (a
        # 0.001-step clock would leak float round-off into the walls and
        # break the digest-equality assertion below).
        t = {"v": 0.0}

        def clk() -> float:
            t["v"] += 1.0
            return t["v"]

        return clk

    with tempfile.TemporaryDirectory() as td:
        store = CheckpointStore(Path(td) / "ckpt")
        try:
            record_benchmark(["SYN"], repeats=3, clock=fake_clock(),
                             experiments=registry(2), checkpoints=store)
            return SiteResult(site, kind, "failed",
                              "simulated mid-sweep crash did not propagate",
                              len(plan.fired), len(decisions))
        except ExecutionError:
            pass
        if not store.keys():
            return SiteResult(site, kind, "failed",
                              "crashed sweep left no checkpoint to resume "
                              "from", len(plan.fired), len(decisions))
        resumed = record_benchmark(["SYN"], repeats=3, clock=fake_clock(),
                                   experiments=registry(None),
                                   checkpoints=store)
        fresh = record_benchmark(["SYN"], repeats=3, clock=fake_clock(),
                                 experiments=registry(None))
    if resumed["meta"]["resumed"] < 1:
        return SiteResult(site, kind, "failed",
                          "resumed sweep re-ran every repeat (checkpoints "
                          "ignored)", len(plan.fired), len(decisions))
    d_resumed = content_digest(resumed["experiments"])
    d_fresh = content_digest(fresh["experiments"])
    if d_resumed != d_fresh:
        return SiteResult(site, kind, "failed",
                          f"resumed artifact diverges from uninterrupted run "
                          f"({d_resumed[:12]}… != {d_fresh[:12]}…)",
                          len(plan.fired), len(decisions))
    return SiteResult(
        site, kind, "recovered",
        f"sentinel raised typed NumericIntegrityError ({trip.kind} in "
        f"{trip.function}, step {trip.step_index}); crash-resumed sweep "
        f"digest-identical to uninterrupted run "
        f"(resumed {resumed['meta']['resumed']} repeat(s))",
        len(plan.fired), len(decisions))


def run_faultcheck(seed: int = 0) -> FaultCheckReport:
    """Sweep every registered injection site; see the module docstring."""
    checks = {
        "fortran.lex.tokens":
            lambda: _check_lexer(seed),
        "codegen.fortran.omp":
            lambda: _check_lint_mutant(
                "codegen.fortran.omp", "sarb-drop-reduction-lw", seed),
        "codegen.fortran.body":
            lambda: _check_lint_mutant(
                "codegen.fortran.body", "fun3d-drop-init-edge", seed),
        "analysis.parallelize.verdict":
            lambda: _check_guarded(
                "analysis.parallelize.verdict", "misparallelize",
                FaultSpec("analysis.parallelize.verdict", "misparallelize",
                          match={"function": "adjust2"}), seed),
        "codegen.python.assign":
            lambda: _check_codegen(seed),
        "exec.interp.step":
            lambda: _check_guarded(
                "exec.interp.step", "raise",
                FaultSpec("exec.interp.step", "raise",
                          match={"parallel": True}), seed),
        "exec.interp.iter":
            lambda: _check_watchdog(seed),
        "numeric.sentinel":
            lambda: _check_sentinel(seed),
    }
    missing = set(SITES) - set(checks)
    if missing:
        raise AssertionError(
            f"faultcheck has no scenario for registered site(s): {sorted(missing)}"
        )
    from ..observe import get_tracer

    tracer = get_tracer()
    results = []
    for site in sorted(checks):
        kinds = SITES[site].kinds
        try:
            with tracer.span("faultcheck.site", site=site):
                results.append(checks[site]())
        except GlafError as e:
            results.append(SiteResult(site, kinds[0], "surfaced",
                                      f"typed {type(e).__name__}: {e}", -1, 0))
        except Exception as e:  # raw escape: exactly what the sweep polices
            results.append(SiteResult(site, kinds[0], "failed",
                                      f"raw {type(e).__name__}: {e}", -1, 0))
    return FaultCheckReport(seed=seed, results=results)
