"""Fault tolerance for the GLAF pipeline.

The paper's integration story hinges on trust: generated kernels are
spliced into the legacy code only after side-by-side correctness
comparison (§4, Table 1).  This package mechanizes the "degrade safely"
half of that contract (see ``docs/ROBUSTNESS.md``):

* :mod:`repro.robust.faults` — a seeded, deterministic :class:`FaultPlan`
  that injects faults at named pipeline sites (lexer token corruption,
  dependence-analysis misclassification, numeric perturbation of generated
  Python, artificial errors/delays in the interpreter) through tiny
  :func:`inject` hooks threaded through the pipeline;
* :mod:`repro.robust.watchdog` — :class:`ResourceLimits` iteration/wall-
  clock budgets enforced by the IR interpreter and generated-Python
  execution, raising the typed :class:`repro.errors.ResourceLimitError`;
* :mod:`repro.robust.faultcheck` — the ``repro faultcheck`` sweep: fire
  every registered fault and verify each one is either *recovered* (serial
  fallback with a DecisionLog event) or *surfaced* as a typed GlafError;
* :mod:`repro.robust.scenarios` — executable workloads for the guarded
  CLI paths (imported lazily; see below).

The divergence guard itself (:class:`repro.glafexec.GuardedRunner`) lives
in :mod:`repro.glafexec` next to the interpreter it wraps.

This ``__init__`` imports only the dependency-light legs (``faults``,
``watchdog``) because the instrumented modules (``fortranlib``,
``analysis``, ``codegen``, ``glafexec``) import it at module load;
``faultcheck`` and ``scenarios`` import those packages back and must be
imported explicitly.
"""

from .faults import (
    SITES,
    FaultEvent,
    FaultPlan,
    FaultSpec,
    InjectionSite,
    fault_injection,
    get_fault_plan,
    inject,
)
from .watchdog import (Budget, ResourceLimits, apply_memory_limit,
                       wall_clock_guard)

__all__ = [
    "SITES", "FaultEvent", "FaultPlan", "FaultSpec", "InjectionSite",
    "fault_injection", "get_fault_plan", "inject",
    "Budget", "ResourceLimits", "apply_memory_limit", "wall_clock_guard",
]
