"""Synthetic atmospheric input generator for the SARB case study.

NASA's Synoptic SARB inputs (CERES instrument retrievals) are restricted;
this generator produces deterministic, physically-plausible column profiles
with the same structure the Fu-Liou-style kernels consume: pressure and
temperature profiles over ``nv`` levels, cloud fractions, and per-band
optical depths for the longwave and shortwave spectral ranges, plus the
band-weight tables that live in the ``/entwts/`` COMMON block.

Zones mirror the paper's description ("the earth is split into multiple
zones that run parallel to the equator ... the execution of each zone takes
time proportional to its size"): zone ``z`` of ``n_zones`` carries a size
factor proportional to the cosine of its central latitude.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SarbDimensions", "AtmosphereInputs", "make_inputs", "zone_sizes",
           "DEFAULT_DIMS"]


@dataclass(frozen=True)
class SarbDimensions:
    nv: int = 60       # atmospheric levels (the paper's 2x60 loops)
    nblw: int = 12     # longwave bands
    nbsw: int = 6      # shortwave bands


DEFAULT_DIMS = SarbDimensions()


@dataclass
class AtmosphereInputs:
    """One column's inputs (all float64, 1-based semantics left to callers)."""

    dims: SarbDimensions
    tsfc: float                     # surface temperature [K]
    pres: np.ndarray                # (nv,) pressure [hPa]
    temp: np.ndarray                # (nv,) temperature [K]
    cld: np.ndarray                 # (nv,) cloud fraction [0, 1]
    taudp: np.ndarray               # (nv, nblw) longwave optical depth
    tausw: np.ndarray               # (nv, nbsw) shortwave optical depth
    wlw: np.ndarray                 # (nblw,) longwave band weights
    wsw: np.ndarray                 # (nbsw,) shortwave band weights
    wwin: np.ndarray                # (nblw,) window-channel weights


def make_inputs(dims: SarbDimensions = DEFAULT_DIMS, seed: int = 2018) -> AtmosphereInputs:
    """Deterministic synthetic column (seeded, reproducible)."""
    rng = np.random.default_rng(seed)
    nv, nblw, nbsw = dims.nv, dims.nblw, dims.nbsw

    # Pressure: log-spaced from ~1 hPa (top) to 1013 hPa (surface).
    pres = np.logspace(np.log10(1.0), np.log10(1013.25), nv)
    # Temperature: stratosphere->troposphere profile with noise.
    temp = 210.0 + 80.0 * (pres / pres[-1]) ** 0.28 + rng.normal(0, 1.5, nv)
    temp = np.clip(temp, 180.0, 320.0)
    tsfc = float(temp[-1] + rng.uniform(0.0, 4.0))

    # Clouds: a couple of layers with fractional cover.
    cld = np.zeros(nv)
    for _ in range(3):
        center = rng.integers(nv // 4, nv - 2)
        width = int(rng.integers(2, 6))
        lo, hi = max(0, center - width), min(nv, center + width)
        cld[lo:hi] = np.maximum(cld[lo:hi], rng.uniform(0.2, 0.95))

    # Optical depths: increase toward the surface; band-dependent scale.
    col = (pres / pres[-1])[:, None] ** 1.7
    band_scale_lw = np.exp(rng.uniform(np.log(0.05), np.log(4.0), nblw))[None, :]
    taudp = col * band_scale_lw * (1.0 + 2.0 * cld[:, None])
    band_scale_sw = np.exp(rng.uniform(np.log(0.02), np.log(1.0), nbsw))[None, :]
    tausw = col * band_scale_sw * (1.0 + 1.5 * cld[:, None])

    # Band weights: positive, normalized.
    wlw = rng.uniform(0.3, 1.0, nblw)
    wlw /= wlw.sum()
    wsw = rng.uniform(0.3, 1.0, nbsw)
    wsw /= wsw.sum()
    wwin = np.zeros(nblw)
    wwin[: nblw // 3] = rng.uniform(0.5, 1.0, nblw // 3)  # window bands subset
    wwin /= max(wwin.sum(), 1e-12)

    return AtmosphereInputs(
        dims=dims, tsfc=tsfc,
        pres=pres.astype(np.float64), temp=temp.astype(np.float64),
        cld=cld.astype(np.float64),
        taudp=taudp.astype(np.float64), tausw=tausw.astype(np.float64),
        wlw=wlw.astype(np.float64), wsw=wsw.astype(np.float64),
        wwin=wwin.astype(np.float64),
    )


def zone_sizes(n_zones: int = 18) -> np.ndarray:
    """Relative zone sizes (proportional to the cosine of zone latitude).

    Synoptic SARB processes zones parallel to the equator; zones near the
    equator are larger than polar zones (paper §2.2).
    """
    lat_centers = np.linspace(-90.0, 90.0, n_zones + 1)
    lat_centers = 0.5 * (lat_centers[:-1] + lat_centers[1:])
    sizes = np.cos(np.deg2rad(lat_centers))
    return np.maximum(sizes, 0.05)
