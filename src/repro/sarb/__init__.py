"""Synoptic SARB case study (synthetic Fu-Liou radiative transfer)."""

from .atmosphere import (
    DEFAULT_DIMS,
    AtmosphereInputs,
    SarbDimensions,
    make_inputs,
    zone_sizes,
)
from .fuliou import (
    SarbState,
    fresh_state,
    ref_adjust2,
    ref_entropy_interface,
    ref_longwave_entropy_model,
    ref_lw_spectral_integration,
    ref_shortwave_entropy_model,
    ref_sw_spectral_integration,
)
from .kernels import SARB_SUBROUTINES, build_sarb_program, sarb_workload
from .legacy_src import full_legacy_source
from .validation import (
    OUTPUT_NAMES,
    build_legacy_codebase,
    run_generated_fortran,
    run_generated_python,
    run_ir_interpreter,
    run_legacy_fortran,
    run_reference,
    run_spliced,
)

__all__ = [
    "DEFAULT_DIMS", "AtmosphereInputs", "SarbDimensions", "make_inputs",
    "zone_sizes",
    "SarbState", "fresh_state", "ref_adjust2", "ref_entropy_interface",
    "ref_longwave_entropy_model", "ref_lw_spectral_integration",
    "ref_shortwave_entropy_model", "ref_sw_spectral_integration",
    "SARB_SUBROUTINES", "build_sarb_program", "sarb_workload",
    "full_legacy_source",
    "OUTPUT_NAMES", "build_legacy_codebase", "run_generated_fortran",
    "run_generated_python", "run_ir_interpreter", "run_legacy_fortran",
    "run_reference", "run_spliced",
]
