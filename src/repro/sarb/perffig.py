"""Figure-5 / Figure-6 / Table-1 / Table-2 harnesses for the SARB study."""

from __future__ import annotations

from dataclasses import dataclass

from ..codegen.fortran import FortranGenerator
from ..codegen.sloc import module_unit_slocs
from ..optimize.plan import make_plan
from ..optimize.pruning import VARIANTS, describe_variants
from ..perf.machine import MachineSpec, i5_2400
from ..perf.simulate import SimOptions, SimResult, simulate
from .atmosphere import DEFAULT_DIMS, SarbDimensions
from .kernels import SARB_SUBROUTINES, build_sarb_program, sarb_workload

__all__ = ["PAPER_FIGURE5", "PAPER_FIGURE6", "PAPER_TABLE1",
           "figure5_rows", "figure6_rows", "table1_rows", "table2_rows",
           "simulate_variant"]

# Paper-reported values.
PAPER_FIGURE5 = {
    "original serial": 1.00,
    "GLAF serial": 0.89,
    "GLAF-parallel v0": 0.48,
    "GLAF-parallel v1": 0.66,
    "GLAF-parallel v2": 1.11,
    "GLAF-parallel v3": 1.41,
}
PAPER_FIGURE6 = {1: 0.92, 2: 1.24, 4: 1.59, 8: 0.70}
PAPER_TABLE1 = {
    "lw_spectral_integration": 75,
    "longwave_entropy_model": 422,
    "sw_spectral_integration": 50,
    "shortwave_entropy_model": 13,
    "entropy_interface": 46,
    "adjust2": 38,
}


def simulate_variant(variant: str, threads: int = 4, *,
                     monolithic: bool = False,
                     dims: SarbDimensions = DEFAULT_DIMS,
                     machine: MachineSpec = i5_2400) -> SimResult:
    program = build_sarb_program(dims)
    wl = sarb_workload(dims)
    plan = make_plan(program, variant, threads=threads)
    return simulate(plan, machine, wl,
                    SimOptions(threads=threads, monolithic=monolithic))


def figure5_rows(dims: SarbDimensions = DEFAULT_DIMS,
                 machine: MachineSpec = i5_2400,
                 *, include_auto: bool = False) -> list[tuple[str, float]]:
    """Speed-up of each Table-2 variant vs the original serial (4 threads).

    With ``include_auto`` an extra bar is appended for the model-guided
    advisor's variant — the future-work extension, not a paper bar.
    """
    base = simulate_variant("original serial", threads=1, monolithic=True,
                            dims=dims, machine=machine)
    rows = [("original serial", 1.0)]
    for name in ("GLAF serial", "GLAF-parallel v0", "GLAF-parallel v1",
                 "GLAF-parallel v2", "GLAF-parallel v3"):
        threads = 1 if name == "GLAF serial" else 4
        r = simulate_variant(name, threads=threads, dims=dims, machine=machine)
        rows.append((name, base.total_cycles / r.total_cycles))
    if include_auto:
        from ..optimize.advisor import advise

        auto_plan, _ = advise(build_sarb_program(dims), machine,
                              sarb_workload(dims), threads=4)
        r = simulate(auto_plan, machine, sarb_workload(dims),
                     SimOptions(threads=4))
        rows.append(("GLAF-parallel auto", base.total_cycles / r.total_cycles))
    return rows


def figure6_rows(dims: SarbDimensions = DEFAULT_DIMS,
                 machine: MachineSpec = i5_2400) -> list[tuple[int, float]]:
    """Speed-up of GLAF-parallel v3 over GLAF serial, by thread count."""
    glaf_serial = simulate_variant("GLAF serial", threads=1, dims=dims,
                                   machine=machine)
    rows = []
    for t in (1, 2, 4, 8):
        r = simulate_variant("GLAF-parallel v3", threads=t, dims=dims,
                             machine=machine)
        rows.append((t, glaf_serial.total_cycles / r.total_cycles))
    return rows


def table1_rows(dims: SarbDimensions = DEFAULT_DIMS) -> dict[str, int]:
    """Generated-FORTRAN SLOC per subroutine (our Table 1)."""
    program = build_sarb_program(dims)
    plan = make_plan(program, "GLAF-parallel v0")
    source = FortranGenerator(plan).generate_module()
    slocs = module_unit_slocs(source)
    return {name: slocs[name] for name in SARB_SUBROUTINES}


def table2_rows() -> list[tuple[str, str]]:
    """The implementation matrix (Table 2)."""
    return describe_variants()
