"""SARB functional-correctness methodology (paper §4.1.1).

Implements the paper's validation pipeline end to end:

1. **Wrapper-based unit testing** — generate a wrapper PROGRAM per
   subroutine with sample inputs, run it against both the legacy original
   and the GLAF-generated code, compare outputs element by element.
2. **Side-by-side comparison** — run the whole pipeline through every
   execution path (NumPy reference, GLAF IR interpreter, generated Python,
   generated FORTRAN on the FORTRAN runtime, legacy FORTRAN) and compare.
3. **Splice-and-run** — substitute the generated subroutines into the
   legacy codebase, run the legacy test-suite driver, and corroborate the
   printed statistics against the original run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..codegen.fortran import FortranGenerator
from ..fortranlib import FortranRuntime
from ..glafexec import (
    ExecutionContext,
    GeneratedModule,
    GuardedRunner,
    Interpreter,
    executor_mode,
    get_executor,
    guard_mode,
)
from ..errors import NumericIntegrityError
from ..integration import LegacyCodebase, check_program, splice_into_codebase
from ..numeric import ComparisonResult, get_policy
from ..optimize.plan import OptimizationPlan, make_plan
from .atmosphere import DEFAULT_DIMS, AtmosphereInputs, SarbDimensions, make_inputs
from .fuliou import SarbState, fresh_state, ref_entropy_interface
from .kernels import SARB_SUBROUTINES, build_sarb_program
from .legacy_src import full_legacy_source

__all__ = ["load_sarb_runtime", "set_sarb_inputs", "read_outputs",
           "run_reference", "run_ir_interpreter", "run_generated_python",
           "run_legacy_fortran", "run_generated_fortran", "run_spliced",
           "build_legacy_codebase", "compare_outputs", "OUTPUT_NAMES",
           "SARB_COMPARE_TOLERANCE"]

OUTPUT_NAMES = ("fulw", "fusw", "fwin", "slw", "ssw")

#: The paper's side-by-side agreement bar for the SARB outputs (§4.1.1).
SARB_COMPARE_TOLERANCE = 1e-9


def compare_outputs(
    got: dict[str, np.ndarray], ref: dict[str, np.ndarray],
    *, policy: str = "abs", tolerance: float = SARB_COMPARE_TOLERANCE,
) -> ComparisonResult:
    """Compare two output sets under a named tolerance policy.

    Replaces the ad-hoc ``np.max(np.abs(a - b))`` comparisons: a NaN on
    either side fails loudly (the naive form passes silently when both
    sides carry NaN at the same position), missing outputs fail, and the
    worst-offending output is named in the result detail.
    """
    pol = get_policy(policy, tolerance)
    worst: ComparisonResult | None = None
    for name in OUTPUT_NAMES:
        if name not in ref:
            continue
        if name not in got:
            return ComparisonResult(
                ok=False, policy=pol.name, tolerance=tolerance,
                max_error=float("inf"), detail=f"output {name!r} missing")
        res = pol.compare(got[name], ref[name])
        if not res.ok:
            return ComparisonResult(
                ok=False, policy=res.policy, tolerance=res.tolerance,
                max_error=res.max_error,
                detail=f"output {name!r}: {res.detail}",
                first_bad=res.first_bad)
        if worst is None or res.max_error > worst.max_error:
            worst = res
    if worst is None:
        raise NumericIntegrityError(
            "compare_outputs: no outputs to compare (empty reference)")
    return worst


def build_legacy_codebase(dims: SarbDimensions = DEFAULT_DIMS) -> LegacyCodebase:
    legacy = LegacyCodebase("synoptic-sarb")
    for fname, src in full_legacy_source(dims).items():
        legacy.add_file(fname, src)
    return legacy


def load_sarb_runtime(sources: dict[str, str]) -> FortranRuntime:
    rt = FortranRuntime()
    for fname in sorted(sources):
        rt.load(sources[fname])
    return rt


def set_sarb_inputs(rt: FortranRuntime, inp: AtmosphereInputs) -> None:
    """Populate legacy module + COMMON storage from synthetic inputs."""
    fm = rt.modules["fuliou_mod"]
    fin = fm.variables["fin"].store
    fin.fields["tsfc"][()] = inp.tsfc
    fin.fields["pres"][...] = inp.pres
    fin.fields["temp"][...] = inp.temp
    fin.fields["cld"][...] = inp.cld
    fm.variables["taudp"].store[...] = inp.taudp
    fm.variables["tausw"].store[...] = inp.tausw
    rt.call("set_entwts", [inp.wlw.copy(), inp.wsw.copy(), inp.wwin.copy()])


def read_outputs(rt: FortranRuntime) -> dict[str, np.ndarray]:
    rom = rt.modules["rad_output_mod"]
    return {n: rom.variables[n].store.copy() for n in OUTPUT_NAMES}


def run_reference(inp: AtmosphereInputs) -> dict[str, np.ndarray]:
    st = fresh_state(inp.dims.nv)
    ref_entropy_interface(inp, st)
    return {"fulw": st.fulw, "fusw": st.fusw, "fwin": st.fwin,
            "slw": st.slw, "ssw": st.ssw}


def _context_values(inp: AtmosphereInputs) -> dict[str, np.ndarray]:
    return {
        "tsfc": inp.tsfc, "pres": inp.pres, "temp": inp.temp, "cld": inp.cld,
        "taudp": inp.taudp, "tausw": inp.tausw,
        "wlw": inp.wlw, "wsw": inp.wsw, "wwin": inp.wwin,
    }


def run_ir_interpreter(inp: AtmosphereInputs, *, guarded: bool | None = None,
                       executor: str | None = None) -> dict[str, np.ndarray]:
    """Run through the IR execution pipeline.

    Under ``--guarded`` (or explicit ``guarded=True``) execution goes
    through :class:`GuardedRunner`, which probes every plan-parallel step
    and falls back to serial on divergence (results are bit-identical
    either way — the serial result is kept).  Otherwise the selected
    executor runs the program: ``executor=None`` honors the process-wide
    mode (the CLI's ``--executor`` flag), ``"interpreter"`` is the
    reference path, ``"vectorized"`` lifts loop steps to whole-grid array
    programs, ``"guarded"`` cross-checks the vectorized path against the
    interpreter."""
    program = build_sarb_program(inp.dims)
    ctx = ExecutionContext(program, values=_context_values(inp))
    args = [inp.dims.nv, inp.dims.nblw, inp.dims.nbsw]
    if guard_mode() if guarded is None else guarded:
        GuardedRunner(program).run("entropy_interface", args, context=ctx)
    else:
        mode = executor_mode() if executor is None else executor
        if mode == "interpreter":
            Interpreter(program, ctx).call("entropy_interface", args)
        else:
            get_executor(mode).run(program, "entropy_interface", args,
                                   context=ctx)
    return {n: ctx.get(n).copy() for n in OUTPUT_NAMES}


def run_generated_python(inp: AtmosphereInputs,
                         variant: str = "GLAF serial") -> dict[str, np.ndarray]:
    program = build_sarb_program(inp.dims)
    ctx = ExecutionContext(program, values=_context_values(inp))
    plan = make_plan(program, variant)
    mod = GeneratedModule(plan, ctx)
    mod.call("entropy_interface", [inp.dims.nv, inp.dims.nblw, inp.dims.nbsw])
    return {n: ctx.get(n).copy() for n in OUTPUT_NAMES}


def run_legacy_fortran(inp: AtmosphereInputs) -> tuple[dict[str, np.ndarray], FortranRuntime]:
    rt = load_sarb_runtime(full_legacy_source(inp.dims))
    set_sarb_inputs(rt, inp)
    rt.call("entropy_interface", [inp.dims.nv, inp.dims.nblw, inp.dims.nbsw])
    return read_outputs(rt), rt


def run_generated_fortran(
    inp: AtmosphereInputs, variant: str = "GLAF serial"
) -> tuple[dict[str, np.ndarray], FortranRuntime, str]:
    """Generate FORTRAN for the GLAF program, load it alongside the legacy
    modules (for fuliou_mod / rad_output_mod) and execute the generated
    entry point."""
    program = build_sarb_program(inp.dims)
    plan = make_plan(program, variant)
    source = FortranGenerator(plan).generate_module()
    sources = full_legacy_source(inp.dims)
    rt = FortranRuntime()
    # Load the legacy data modules and setup, but NOT the legacy kernels —
    # the generated module provides the subroutines under test.
    rt.load(sources["fuliou_modules.f90"])
    rt.load(sources["sarb_setup.f90"])
    rt.load(source)
    set_sarb_inputs(rt, inp)
    rt.call("entropy_interface", [inp.dims.nv, inp.dims.nblw, inp.dims.nbsw])
    return read_outputs(rt), rt, source


def run_spliced(
    inp: AtmosphereInputs, variant: str = "GLAF serial",
    subroutines: tuple[str, ...] = SARB_SUBROUTINES,
) -> tuple[dict[str, np.ndarray], FortranRuntime, list]:
    """The paper's final step: substitute the generated subroutines into the
    legacy code and run the provided test-suite driver."""
    program = build_sarb_program(inp.dims)
    plan = make_plan(program, variant)
    legacy = build_legacy_codebase(inp.dims)
    reports = check_program(program, legacy, list(subroutines))
    bad = {n: r for n, r in reports.items() if not r.ok}
    if bad:
        details = "; ".join(
            f"{n}: {[i.message for i in r.errors()]}" for n, r in bad.items()
        )
        raise AssertionError(f"interface checks failed before splicing: {details}")
    result = splice_into_codebase(plan, legacy, list(subroutines))
    rt = FortranRuntime()
    if result.support_source:
        rt.load(result.support_source)
    for fname in sorted(result.files):
        rt.load(result.files[fname])
    set_sarb_inputs(rt, inp)
    rt.run_program("sarb_test_suite")
    return read_outputs(rt), rt, rt.output
