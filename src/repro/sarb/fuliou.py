"""NumPy reference implementation of the synthetic Fu-Liou-style kernels.

These functions define the ground-truth semantics of the six Table-1
subroutines.  Every other execution path — the GLAF IR interpreter, the
GLAF-generated Python, the GLAF-generated FORTRAN run by
:mod:`repro.fortranlib`, and the hand-written "legacy" FORTRAN — must
reproduce these outputs (the paper's side-by-side functional comparison,
§4.1.1).

The state record mirrors the legacy code's module and COMMON storage:
``fulw``/``fusw``/``fwin``/``slw``/``ssw`` live in ``rad_output_mod``;
``planck_tmp``/``scratch``/``olr_acc``/``swn_acc`` are the GLAF module-scope
scratch grids (§3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .atmosphere import AtmosphereInputs

__all__ = ["SarbState", "ref_lw_spectral_integration", "ref_sw_spectral_integration",
           "ref_longwave_entropy_model", "ref_shortwave_entropy_model",
           "ref_adjust2", "ref_entropy_interface", "fresh_state"]


@dataclass
class SarbState:
    """Mutable outputs + scratch, mirroring legacy module storage."""

    fulw: np.ndarray
    fusw: np.ndarray
    fwin: np.ndarray
    slw: np.ndarray
    ssw: np.ndarray
    planck_tmp: np.ndarray
    scratch: np.ndarray
    scr2: np.ndarray
    swtmp: np.ndarray
    olr_acc: float = 0.0
    swn_acc: float = 0.0


def fresh_state(nv: int) -> SarbState:
    z = lambda: np.zeros(nv, dtype=np.float64)
    return SarbState(fulw=z(), fusw=z(), fwin=z(), slw=z(), ssw=z(),
                     planck_tmp=z(), scratch=z(), scr2=z(), swtmp=z())


def ref_lw_spectral_integration(inp: AtmosphereInputs, st: SarbState,
                                flux: np.ndarray) -> None:
    """Longwave spectral integration (Table 1 row 1)."""
    nv, nb = inp.dims.nv, inp.dims.nblw
    flux[:] = 0.0
    st.planck_tmp[:] = inp.tsfc
    # Accumulate bands; vectorized sum is within rounding of the loop order.
    flux += (inp.wlw[None, :] * np.exp(-inp.taudp)).sum(axis=1) * st.planck_tmp
    flux[:] = flux * 0.5 + np.abs(inp.pres) * 0.001
    st.olr_acc += float(flux.sum())


def ref_sw_spectral_integration(inp: AtmosphereInputs, st: SarbState,
                                flux: np.ndarray) -> None:
    """Shortwave spectral integration (Table 1 row 3)."""
    flux[:] = 0.0
    flux += (inp.wsw[None, :] * np.exp(-inp.tausw * 2.0)).sum(axis=1)
    st.swtmp[:] = inp.wsw[0]
    flux[:] = np.sqrt(flux * flux + 1.0) - 1.0 + 0.05 * inp.cld * st.swtmp
    st.swn_acc += float((flux * inp.wsw[0]).sum())


def ref_longwave_entropy_model(inp: AtmosphereInputs, st: SarbState) -> None:
    """Longwave entropy model (Table 1 row 2) — the two 'large loops'."""
    nv, nb = inp.dims.nv, inp.dims.nblw
    st.slw[:] = 0.0
    st.scratch[:] = 0.0
    st.scr2[:] = 0.0
    st.fwin[:] = 0.0       # redundant init kept from the legacy code
    tmax = np.maximum(inp.temp, 180.0)
    thick = inp.taudp > 1.0
    # Large loop A: thick/thin branch per (level, band).
    contrib_scr = np.where(thick,
                           inp.wlw[None, :] * np.log(inp.taudp + 1.0),
                           inp.wlw[None, :] * inp.taudp)
    contrib_slw = np.where(
        thick,
        st.fulw[:, None] * inp.wlw[None, :] / tmax[:, None],
        st.fulw[:, None] * inp.wlw[None, :] * np.exp(-inp.taudp) / tmax[:, None],
    )
    st.scratch += contrib_scr.sum(axis=1)
    st.slw += contrib_slw.sum(axis=1)
    # Large loop B: cloudy/clear adjustment per (level, band).
    cloudy = inp.cld > 0.5
    adj = np.where(cloudy[:, None],
                   0.1 * inp.wlw[None, :] * inp.cld[:, None] * st.scratch[:, None],
                   0.01 * inp.wlw[None, :] * st.scratch[:, None])
    st.slw += adj.sum(axis=1)
    # Per-band window weighting of the optical depths.
    st.scr2 += (inp.wwin[None, :] * inp.taudp * 0.01).sum(axis=1)
    # Normalization + window flux.
    st.slw[:] = st.slw / np.maximum(st.scratch, 1.0)
    st.fwin[:] = st.slw * inp.wwin[0] + 0.5 * inp.wwin[1] + 0.001 * st.scr2


def ref_shortwave_entropy_model(inp: AtmosphereInputs, st: SarbState) -> None:
    """Shortwave entropy model (Table 1 row 4)."""
    st.ssw[:] = st.fusw / np.maximum(inp.temp, 180.0)


def ref_adjust2(inp: AtmosphereInputs, st: SarbState, flux: np.ndarray) -> None:
    """Flux adjustment (Table 1 row 6); middle step is order-dependent."""
    nv = inp.dims.nv
    flux[:] = flux * (1.0 + 0.01 * inp.wwin[0])
    for i in range(1, nv):  # loop-carried: deliberately serial
        flux[i] = flux[i] + flux[i - 1] * 0.05
    flux[:] = np.minimum(np.maximum(flux, 0.0), 1000.0)


def ref_entropy_interface(inp: AtmosphereInputs, st: SarbState) -> None:
    """Driver (Table 1 row 5): calls the other five in order."""
    ref_lw_spectral_integration(inp, st, st.fulw)
    ref_sw_spectral_integration(inp, st, st.fusw)
    ref_longwave_entropy_model(inp, st)
    ref_shortwave_entropy_model(inp, st)
    ref_adjust2(inp, st, st.fulw)
    ref_adjust2(inp, st, st.fusw)
    st.fwin[:] = st.fwin + 0.5 * (st.fulw + st.fusw) * inp.wwin[1]
