"""GLAF IR construction of the six SARB subroutines (paper Table 1).

``build_sarb_program`` performs, through the programmatic builder, exactly
the GPI actions the paper describes: create the existing-module grids in
Global Scope (marking TYPE elements of ``fin``), create the COMMON-block
weight grids, create the module-scope scratch grids, then build each
subroutine (void return type -> SUBROUTINE form) step by step.

The loop-class census this program produces is what drives the Table 2 /
Figure 5 pruning study:

=====================  =====================================================
class                  steps
=====================  =====================================================
ZERO_INIT              lw s1, lwent s1, lwent s2, sw s1
BROADCAST_INIT         lw s2
SIMPLE_DOUBLE          lw s3, sw s2
SIMPLE_SINGLE          lw s4, lw s5, lwent s5, lwent s6, sw s3, sw s4,
                       swent s1, adj s1, adj s3, iface s6
COMPLEX (kept in v3)   lwent s3, lwent s4  — the paper's "two large loops
                       in the longwave_entropy_model subroutine"
serial (never OMP)     adj s2 (loop-carried)
=====================  =====================================================
"""

from __future__ import annotations

from ..core import (
    GlafBuilder,
    GlafProgram,
    I,
    T_INT,
    T_REAL8,
    T_VOID,
    lib,
    ref,
)
from ..perf.simulate import Workload
from .atmosphere import DEFAULT_DIMS, SarbDimensions

__all__ = ["build_sarb_program", "sarb_workload", "SARB_SUBROUTINES",
           "FULIOU_MODULE", "RAD_OUTPUT_MODULE", "ENTWTS_COMMON"]

FULIOU_MODULE = "fuliou_mod"
RAD_OUTPUT_MODULE = "rad_output_mod"
ENTWTS_COMMON = "entwts"

SARB_SUBROUTINES = (
    "lw_spectral_integration",
    "longwave_entropy_model",
    "sw_spectral_integration",
    "shortwave_entropy_model",
    "entropy_interface",
    "adjust2",
)


def build_sarb_program(dims: SarbDimensions = DEFAULT_DIMS) -> GlafProgram:
    nv, nb, nbs = dims.nv, dims.nblw, dims.nbsw
    b = GlafBuilder("sarb")

    # ------------------------------------------------------------------
    # Global Scope: the Figure 3 configuration screens.
    # ------------------------------------------------------------------
    b.derived_type(
        "rad_input",
        {
            "tsfc": (T_REAL8, 0),
            "pres": (T_REAL8, 1),
            "temp": (T_REAL8, 1),
            "cld": (T_REAL8, 1),
        },
        defined_in_module=FULIOU_MODULE,
    )
    # §3.5: elements of the existing TYPE(rad_input) variable `fin`.
    b.global_grid("tsfc", T_REAL8, exists_in_module=FULIOU_MODULE,
                  type_parent="fin", type_name="rad_input",
                  comment="surface temperature [K]")
    b.global_grid("pres", T_REAL8, dims=(nv,), exists_in_module=FULIOU_MODULE,
                  type_parent="fin", type_name="rad_input",
                  comment="pressure profile [hPa]")
    b.global_grid("temp", T_REAL8, dims=(nv,), exists_in_module=FULIOU_MODULE,
                  type_parent="fin", type_name="rad_input",
                  comment="temperature profile [K]")
    b.global_grid("cld", T_REAL8, dims=(nv,), exists_in_module=FULIOU_MODULE,
                  type_parent="fin", type_name="rad_input",
                  comment="cloud fraction profile")
    # §3.1: plain existing-module variables.
    b.global_grid("taudp", T_REAL8, dims=(nv, nb), exists_in_module=FULIOU_MODULE,
                  comment="longwave optical depths")
    b.global_grid("tausw", T_REAL8, dims=(nv, nbs), exists_in_module=FULIOU_MODULE,
                  comment="shortwave optical depths")
    b.global_grid("fulw", T_REAL8, dims=(nv,), exists_in_module=RAD_OUTPUT_MODULE,
                  comment="longwave flux profile (output)")
    b.global_grid("fusw", T_REAL8, dims=(nv,), exists_in_module=RAD_OUTPUT_MODULE,
                  comment="shortwave flux profile (output)")
    b.global_grid("fwin", T_REAL8, dims=(nv,), exists_in_module=RAD_OUTPUT_MODULE,
                  comment="window-channel flux profile (output)")
    b.global_grid("slw", T_REAL8, dims=(nv,), exists_in_module=RAD_OUTPUT_MODULE,
                  comment="longwave entropy profile (output)")
    b.global_grid("ssw", T_REAL8, dims=(nv,), exists_in_module=RAD_OUTPUT_MODULE,
                  comment="shortwave entropy profile (output)")
    # §3.2: COMMON-block members.
    b.global_grid("wlw", T_REAL8, dims=(nb,), common_block=ENTWTS_COMMON,
                  comment="longwave band weights")
    b.global_grid("wsw", T_REAL8, dims=(nbs,), common_block=ENTWTS_COMMON,
                  comment="shortwave band weights")
    b.global_grid("wwin", T_REAL8, dims=(nb,), common_block=ENTWTS_COMMON,
                  comment="window-channel weights")
    # §3.3: module-scope scratch shared between GLAF functions.
    b.global_grid("planck_tmp", T_REAL8, dims=(nv,), module_scope=True,
                  comment="Planck emission scratch")
    b.global_grid("scratch", T_REAL8, dims=(nv,), module_scope=True,
                  comment="entropy-model scratch")
    b.global_grid("scr2", T_REAL8, dims=(nv,), module_scope=True,
                  comment="window-weighting scratch")
    b.global_grid("swtmp", T_REAL8, dims=(nv,), module_scope=True,
                  comment="shortwave broadcast scratch")
    b.global_grid("olr_acc", T_REAL8, module_scope=True,
                  comment="accumulated outgoing longwave radiation")
    b.global_grid("swn_acc", T_REAL8, module_scope=True,
                  comment="accumulated net shortwave")

    m = b.module("Module1")

    # ------------------------------------------------------------------
    # lw_spectral_integration (75 SLOC in the paper)
    # ------------------------------------------------------------------
    f = m.function("lw_spectral_integration", return_type=T_VOID,
                   comment="Longwave spectral integration over bands")
    f.param("nv", T_INT, intent="in")
    f.param("nb", T_INT, intent="in")
    f.param("flux", T_REAL8, dims=(dims.nv,), intent="inout")
    s = f.step("init_flux", comment="zero-initialize flux profile")
    s.foreach(i=(1, "nv"))
    s.formula(ref("flux", I("i")), 0.0)
    s = f.step("planck", comment="broadcast surface Planck emission")
    s.foreach(i=(1, "nv"))
    s.formula(ref("planck_tmp", I("i")), ref("tsfc"))
    s = f.step("band_integration", comment="integrate over spectral bands")
    s.foreach(i=(1, "nv"), bnd=(1, "nb"))
    s.formula(
        ref("flux", I("i")),
        ref("flux", I("i"))
        + ref("wlw", I("bnd")) * lib("EXP", -ref("taudp", I("i"), I("bnd")))
        * ref("planck_tmp", I("i")),
    )
    s = f.step("pressure_olr", comment="pressure correction + OLR accumulation")
    s.foreach(i=(1, "nv"))
    s.formula(
        ref("flux", I("i")),
        ref("flux", I("i")) * 0.5 + lib("ABS", ref("pres", I("i"))) * 0.001,
    )
    s.formula(ref("olr_acc"), ref("olr_acc") + ref("flux", I("i")))

    # ------------------------------------------------------------------
    # longwave_entropy_model (422 SLOC in the paper) — the big kernel
    # ------------------------------------------------------------------
    f = m.function("longwave_entropy_model", return_type=T_VOID,
                   comment="Longwave entropy model with thick/thin and "
                           "cloudy/clear branches")
    f.param("nv", T_INT, intent="in")
    f.param("nb", T_INT, intent="in")
    s = f.step("init_slw")
    s.foreach(i=(1, "nv"))
    s.formula(ref("slw", I("i")), 0.0)
    s = f.step("init_scratch")
    s.foreach(i=(1, "nv"))
    s.formula(ref("scratch", I("i")), 0.0)
    s = f.step("init_scr2")
    s.foreach(i=(1, "nv"))
    s.formula(ref("scr2", I("i")), 0.0)
    s = f.step("init_fwin", comment="redundant init kept from the legacy code")
    s.foreach(i=(1, "nv"))
    s.formula(ref("fwin", I("i")), 0.0)

    from ..core.builder import StepBuilder as SB

    s = f.step("thick_thin", comment="large loop A: optically thick vs thin")
    s.foreach(i=(1, "nv"), bnd=(1, "nb"))
    s.if_(
        ref("taudp", I("i"), I("bnd")).gt(1.0),
        [
            SB.assign(
                ref("scratch", I("i")),
                ref("scratch", I("i"))
                + ref("wlw", I("bnd")) * lib("ALOG", ref("taudp", I("i"), I("bnd")) + 1.0),
            ),
            SB.assign(
                ref("slw", I("i")),
                ref("slw", I("i"))
                + ref("fulw", I("i")) * ref("wlw", I("bnd"))
                / lib("MAX", ref("temp", I("i")), 180.0),
            ),
        ],
        [
            SB.assign(
                ref("scratch", I("i")),
                ref("scratch", I("i"))
                + ref("wlw", I("bnd")) * ref("taudp", I("i"), I("bnd")),
            ),
            SB.assign(
                ref("slw", I("i")),
                ref("slw", I("i"))
                + ref("fulw", I("i")) * ref("wlw", I("bnd"))
                * lib("EXP", -ref("taudp", I("i"), I("bnd")))
                / lib("MAX", ref("temp", I("i")), 180.0),
            ),
        ],
    )
    s = f.step("cloud_adjust", comment="large loop B: cloudy vs clear")
    s.foreach(i=(1, "nv"), bnd=(1, "nb"))
    s.if_(
        ref("cld", I("i")).gt(0.5),
        [
            SB.assign(
                ref("slw", I("i")),
                ref("slw", I("i"))
                + 0.1 * ref("wlw", I("bnd")) * ref("cld", I("i")) * ref("scratch", I("i")),
            ),
        ],
        [
            SB.assign(
                ref("slw", I("i")),
                ref("slw", I("i")) + 0.01 * ref("wlw", I("bnd")) * ref("scratch", I("i")),
            ),
        ],
    )
    s = f.step("window_weights", comment="per-band window weighting of depths")
    s.foreach(i=(1, "nv"), bnd=(1, "nb"))
    s.formula(
        ref("scr2", I("i")),
        ref("scr2", I("i")) + ref("wwin", I("bnd")) * ref("taudp", I("i"), I("bnd")) * 0.01,
    )
    s = f.step("normalize_window", comment="normalize entropy; window flux")
    s.foreach(i=(1, "nv"))
    s.formula(
        ref("slw", I("i")),
        ref("slw", I("i")) / lib("MAX", ref("scratch", I("i")), 1.0),
    )
    s.formula(
        ref("fwin", I("i")),
        ref("slw", I("i")) * ref("wwin", 1) + 0.5 * ref("wwin", 2)
        + 0.001 * ref("scr2", I("i")),
    )

    # ------------------------------------------------------------------
    # sw_spectral_integration (50 SLOC in the paper)
    # ------------------------------------------------------------------
    f = m.function("sw_spectral_integration", return_type=T_VOID,
                   comment="Shortwave spectral integration")
    f.param("nv", T_INT, intent="in")
    f.param("nbs", T_INT, intent="in")
    f.param("flux", T_REAL8, dims=(dims.nv,), intent="inout")
    s = f.step("init_flux")
    s.foreach(i=(1, "nv"))
    s.formula(ref("flux", I("i")), 0.0)
    s = f.step("band_integration")
    s.foreach(i=(1, "nv"), bnd=(1, "nbs"))
    s.formula(
        ref("flux", I("i")),
        ref("flux", I("i"))
        + ref("wsw", I("bnd")) * lib("EXP", -ref("tausw", I("i"), I("bnd")) * 2.0),
    )
    s = f.step("init_swtmp", comment="broadcast leading band weight")
    s.foreach(i=(1, "nv"))
    s.formula(ref("swtmp", I("i")), ref("wsw", 1))
    s = f.step("scatter_net", comment="scattering correction + net accumulation")
    s.foreach(i=(1, "nv"))
    s.formula(
        ref("flux", I("i")),
        lib("SQRT", ref("flux", I("i")) * ref("flux", I("i")) + 1.0) - 1.0
        + 0.05 * ref("cld", I("i")) * ref("swtmp", I("i")),
    )
    s.formula(ref("swn_acc"), ref("swn_acc") + ref("flux", I("i")) * ref("wsw", 1))

    # ------------------------------------------------------------------
    # shortwave_entropy_model (13 SLOC in the paper)
    # ------------------------------------------------------------------
    f = m.function("shortwave_entropy_model", return_type=T_VOID,
                   comment="Shortwave entropy from flux/temperature ratio")
    f.param("nv", T_INT, intent="in")
    s = f.step("entropy")
    s.foreach(i=(1, "nv"))
    s.formula(
        ref("ssw", I("i")),
        ref("fusw", I("i")) / lib("MAX", ref("temp", I("i")), 180.0),
    )

    # ------------------------------------------------------------------
    # adjust2 (38 SLOC in the paper)
    # ------------------------------------------------------------------
    f = m.function("adjust2", return_type=T_VOID,
                   comment="Flux adjustment with serial smoothing sweep")
    f.param("nv", T_INT, intent="in")
    f.param("flux", T_REAL8, dims=(dims.nv,), intent="inout")
    s = f.step("scale")
    s.foreach(i=(1, "nv"))
    s.formula(ref("flux", I("i")), ref("flux", I("i")) * (1.0 + 0.01 * ref("wwin", 1)))
    s = f.step("smooth", comment="loop-carried smoothing (not parallelizable)")
    s.foreach(i=(2, "nv"))
    s.formula(ref("flux", I("i")), ref("flux", I("i")) + ref("flux", I("i") - 1) * 0.05)
    s = f.step("clamp")
    s.foreach(i=(1, "nv"))
    s.formula(
        ref("flux", I("i")),
        lib("MIN", lib("MAX", ref("flux", I("i")), 0.0), 1000.0),
    )

    # ------------------------------------------------------------------
    # entropy_interface (46 SLOC in the paper) — the driver
    # ------------------------------------------------------------------
    f = m.function("entropy_interface", return_type=T_VOID,
                   comment="Driver: runs the full entropy pipeline")
    f.param("nv", T_INT, intent="in")
    f.param("nb", T_INT, intent="in")
    f.param("nbs", T_INT, intent="in")
    s = f.step("run_lw")
    s.call("lw_spectral_integration", [ref("nv"), ref("nb"), ref("fulw")])
    s = f.step("run_sw")
    s.call("sw_spectral_integration", [ref("nv"), ref("nbs"), ref("fusw")])
    s = f.step("run_lw_entropy")
    s.call("longwave_entropy_model", [ref("nv"), ref("nb")])
    s = f.step("run_sw_entropy")
    s.call("shortwave_entropy_model", [ref("nv")])
    s = f.step("adjust_fluxes")
    s.call("adjust2", [ref("nv"), ref("fulw")])
    s.call("adjust2", [ref("nv"), ref("fusw")])
    s = f.step("combine_window", comment="combine adjusted fluxes into window")
    s.foreach(i=(1, "nv"))
    s.formula(
        ref("fwin", I("i")),
        ref("fwin", I("i"))
        + 0.5 * (ref("fulw", I("i")) + ref("fusw", I("i"))) * ref("wwin", 2),
    )

    return b.build()


def sarb_workload(dims: SarbDimensions = DEFAULT_DIMS, *, entry_calls: int = 1) -> Workload:
    """Performance-model workload for the SARB kernel set.

    Branch fractions reflect the synthetic atmosphere: roughly 45% of
    (level, band) cells are optically thick, ~20% of levels are cloudy.
    """
    return Workload(
        name="sarb",
        entry="entropy_interface",
        sizes={"nv": dims.nv, "nb": dims.nblw, "nbs": dims.nbsw},
        entry_calls=entry_calls,
        branch_fractions={
            ("longwave_entropy_model", 4): 0.45,   # thick_thin
            ("longwave_entropy_model", 5): 0.20,   # cloud_adjust
        },
    )
