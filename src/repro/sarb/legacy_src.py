"""The synthetic legacy Synoptic SARB FORTRAN code.

This is the "original serial implementation" of the case study: the
modules the GLAF-generated code must integrate with (``fuliou_mod`` with
its derived TYPE and optical-depth tables, ``rad_output_mod`` with the flux
and entropy profiles, the ``/entwts/`` COMMON block) and the hand-written,
monolithic subroutines that GLAF's generated units replace.

The source is genuine FORTRAN executed by :mod:`repro.fortranlib`; it
deliberately mixes modern modules with FORTRAN-77 COMMON blocks, as
production SARB does (paper §3.2: "COMMON blocks are present in a lot of
production-level codes").
"""

from __future__ import annotations

from .atmosphere import DEFAULT_DIMS, AtmosphereInputs, SarbDimensions

__all__ = ["legacy_modules_source", "legacy_kernels_source", "legacy_driver_source",
           "setup_source", "full_legacy_source"]


def legacy_modules_source(dims: SarbDimensions = DEFAULT_DIMS) -> str:
    nv, nb, nbs = dims.nv, dims.nblw, dims.nbsw
    return f"""
! ======================================================================
! fuliou_mod: Fu-Liou radiative transfer model inputs (legacy)
! ======================================================================
MODULE fuliou_mod
  IMPLICIT NONE
  TYPE rad_input
    REAL(KIND=8) :: tsfc
    REAL(KIND=8) :: pres({nv})
    REAL(KIND=8) :: temp({nv})
    REAL(KIND=8) :: cld({nv})
  END TYPE rad_input
  TYPE(rad_input) :: fin
  REAL(KIND=8) :: taudp({nv}, {nb})
  REAL(KIND=8) :: tausw({nv}, {nbs})
END MODULE fuliou_mod

! ======================================================================
! rad_output_mod: flux and entropy profiles (legacy outputs)
! ======================================================================
MODULE rad_output_mod
  IMPLICIT NONE
  REAL(KIND=8) :: fulw({nv})
  REAL(KIND=8) :: fusw({nv})
  REAL(KIND=8) :: fwin({nv})
  REAL(KIND=8) :: slw({nv})
  REAL(KIND=8) :: ssw({nv})
END MODULE rad_output_mod
"""


def legacy_kernels_source(dims: SarbDimensions = DEFAULT_DIMS) -> str:
    """The original serial subroutines, monolithic style (no GLAF scratch
    module: local temporaries instead of module-scope grids)."""
    nv, nb, nbs = dims.nv, dims.nblw, dims.nbsw
    return f"""
! ======================================================================
! sarb_kernels_mod: original serial implementations
! ======================================================================
MODULE sarb_kernels_mod
  IMPLICIT NONE
  REAL(KIND=8) :: planck_tmp({nv})
  REAL(KIND=8) :: scratch({nv})
  REAL(KIND=8) :: scr2({nv})
  REAL(KIND=8) :: swtmp({nv})
  REAL(KIND=8) :: olr_acc
  REAL(KIND=8) :: swn_acc
CONTAINS

  SUBROUTINE lw_spectral_integration(nv, nb, flux)
    USE fuliou_mod, ONLY: fin, taudp
    IMPLICIT NONE
    INTEGER, INTENT(IN) :: nv
    INTEGER, INTENT(IN) :: nb
    REAL(KIND=8), INTENT(INOUT) :: flux({nv})
    REAL(KIND=8) :: wlw({nb})
    REAL(KIND=8) :: wsw({nbs})
    REAL(KIND=8) :: wwin({nb})
    COMMON /entwts/ wlw, wsw, wwin
    INTEGER :: i, bnd
    DO i = 1, nv
      flux(i) = 0.0D0
    END DO
    DO i = 1, nv
      planck_tmp(i) = fin%tsfc
    END DO
    DO i = 1, nv
      DO bnd = 1, nb
        flux(i) = flux(i) + wlw(bnd) * EXP(-taudp(i, bnd)) * planck_tmp(i)
      END DO
    END DO
    DO i = 1, nv
      flux(i) = flux(i) * 0.5D0 + ABS(fin%pres(i)) * 0.001D0
      olr_acc = olr_acc + flux(i)
    END DO
  END SUBROUTINE lw_spectral_integration

  SUBROUTINE longwave_entropy_model(nv, nb)
    USE fuliou_mod, ONLY: fin, taudp
    USE rad_output_mod, ONLY: fulw, slw, fwin
    IMPLICIT NONE
    INTEGER, INTENT(IN) :: nv
    INTEGER, INTENT(IN) :: nb
    REAL(KIND=8) :: wlw({nb})
    REAL(KIND=8) :: wsw({nbs})
    REAL(KIND=8) :: wwin({nb})
    COMMON /entwts/ wlw, wsw, wwin
    INTEGER :: i, bnd
    DO i = 1, nv
      slw(i) = 0.0D0
    END DO
    DO i = 1, nv
      scratch(i) = 0.0D0
    END DO
    DO i = 1, nv
      scr2(i) = 0.0D0
    END DO
    DO i = 1, nv
      fwin(i) = 0.0D0
    END DO
    DO i = 1, nv
      DO bnd = 1, nb
        IF (taudp(i, bnd) > 1.0D0) THEN
          scratch(i) = scratch(i) + wlw(bnd) * ALOG(taudp(i, bnd) + 1.0D0)
          slw(i) = slw(i) + fulw(i) * wlw(bnd) / MAX(fin%temp(i), 180.0D0)
        ELSE
          scratch(i) = scratch(i) + wlw(bnd) * taudp(i, bnd)
          slw(i) = slw(i) + fulw(i) * wlw(bnd) * EXP(-taudp(i, bnd)) / MAX(fin%temp(i), 180.0D0)
        END IF
      END DO
    END DO
    DO i = 1, nv
      DO bnd = 1, nb
        IF (fin%cld(i) > 0.5D0) THEN
          slw(i) = slw(i) + 0.1D0 * wlw(bnd) * fin%cld(i) * scratch(i)
        ELSE
          slw(i) = slw(i) + 0.01D0 * wlw(bnd) * scratch(i)
        END IF
      END DO
    END DO
    DO i = 1, nv
      DO bnd = 1, nb
        scr2(i) = scr2(i) + wwin(bnd) * taudp(i, bnd) * 0.01D0
      END DO
    END DO
    DO i = 1, nv
      slw(i) = slw(i) / MAX(scratch(i), 1.0D0)
      fwin(i) = slw(i) * wwin(1) + 0.5D0 * wwin(2) + 0.001D0 * scr2(i)
    END DO
  END SUBROUTINE longwave_entropy_model

  SUBROUTINE sw_spectral_integration(nv, nbs, flux)
    USE fuliou_mod, ONLY: fin, tausw
    IMPLICIT NONE
    INTEGER, INTENT(IN) :: nv
    INTEGER, INTENT(IN) :: nbs
    REAL(KIND=8), INTENT(INOUT) :: flux({nv})
    REAL(KIND=8) :: wlw({nb})
    REAL(KIND=8) :: wsw({dims.nbsw})
    REAL(KIND=8) :: wwin({nb})
    COMMON /entwts/ wlw, wsw, wwin
    INTEGER :: i, bnd
    DO i = 1, nv
      flux(i) = 0.0D0
    END DO
    DO i = 1, nv
      DO bnd = 1, nbs
        flux(i) = flux(i) + wsw(bnd) * EXP(-tausw(i, bnd) * 2.0D0)
      END DO
    END DO
    DO i = 1, nv
      swtmp(i) = wsw(1)
    END DO
    DO i = 1, nv
      flux(i) = SQRT(flux(i) * flux(i) + 1.0D0) - 1.0D0 + 0.05D0 * fin%cld(i) * swtmp(i)
      swn_acc = swn_acc + flux(i) * wsw(1)
    END DO
  END SUBROUTINE sw_spectral_integration

  SUBROUTINE shortwave_entropy_model(nv)
    USE fuliou_mod, ONLY: fin
    USE rad_output_mod, ONLY: fusw, ssw
    IMPLICIT NONE
    INTEGER, INTENT(IN) :: nv
    INTEGER :: i
    DO i = 1, nv
      ssw(i) = fusw(i) / MAX(fin%temp(i), 180.0D0)
    END DO
  END SUBROUTINE shortwave_entropy_model

  SUBROUTINE adjust2(nv, flux)
    IMPLICIT NONE
    INTEGER, INTENT(IN) :: nv
    REAL(KIND=8), INTENT(INOUT) :: flux({nv})
    REAL(KIND=8) :: wlw({nb})
    REAL(KIND=8) :: wsw({nbs})
    REAL(KIND=8) :: wwin({nb})
    COMMON /entwts/ wlw, wsw, wwin
    INTEGER :: i
    DO i = 1, nv
      flux(i) = flux(i) * (1.0D0 + 0.01D0 * wwin(1))
    END DO
    DO i = 2, nv
      flux(i) = flux(i) + flux(i - 1) * 0.05D0
    END DO
    DO i = 1, nv
      flux(i) = MIN(MAX(flux(i), 0.0D0), 1000.0D0)
    END DO
  END SUBROUTINE adjust2

  SUBROUTINE entropy_interface(nv, nb, nbs)
    USE rad_output_mod, ONLY: fulw, fusw, fwin
    IMPLICIT NONE
    INTEGER, INTENT(IN) :: nv
    INTEGER, INTENT(IN) :: nb
    INTEGER, INTENT(IN) :: nbs
    REAL(KIND=8) :: wlw({nb})
    REAL(KIND=8) :: wsw({nbs})
    REAL(KIND=8) :: wwin({nb})
    COMMON /entwts/ wlw, wsw, wwin
    INTEGER :: i
    CALL lw_spectral_integration(nv, nb, fulw)
    CALL sw_spectral_integration(nv, nbs, fusw)
    CALL longwave_entropy_model(nv, nb)
    CALL shortwave_entropy_model(nv)
    CALL adjust2(nv, fulw)
    CALL adjust2(nv, fusw)
    DO i = 1, nv
      fwin(i) = fwin(i) + 0.5D0 * (fulw(i) + fusw(i)) * wwin(2)
    END DO
  END SUBROUTINE entropy_interface

END MODULE sarb_kernels_mod
"""


def setup_source(dims: SarbDimensions = DEFAULT_DIMS) -> str:
    """Subroutines the harness calls to populate COMMON storage."""
    nb, nbs = dims.nblw, dims.nbsw
    return f"""
SUBROUTINE set_entwts(w1, w2, w3)
  IMPLICIT NONE
  REAL(KIND=8), INTENT(IN) :: w1({nb})
  REAL(KIND=8), INTENT(IN) :: w2({nbs})
  REAL(KIND=8), INTENT(IN) :: w3({nb})
  REAL(KIND=8) :: wlw({nb})
  REAL(KIND=8) :: wsw({nbs})
  REAL(KIND=8) :: wwin({nb})
  COMMON /entwts/ wlw, wsw, wwin
  INTEGER :: i
  DO i = 1, {nb}
    wlw(i) = w1(i)
    wwin(i) = w3(i)
  END DO
  DO i = 1, {nbs}
    wsw(i) = w2(i)
  END DO
END SUBROUTINE set_entwts
"""


def legacy_driver_source(dims: SarbDimensions = DEFAULT_DIMS) -> str:
    """The 'provided Synoptic SARB test suite' equivalent: runs the
    pipeline and prints summary statistics the harness checks."""
    nv = dims.nv
    return f"""
PROGRAM sarb_test_suite
  USE rad_output_mod, ONLY: fulw, fusw, fwin, slw, ssw
  IMPLICIT NONE
  INTEGER :: i
  REAL(KIND=8) :: rms_lw, rms_sw
  CALL entropy_interface({nv}, {dims.nblw}, {dims.nbsw})
  rms_lw = 0.0D0
  rms_sw = 0.0D0
  DO i = 1, {nv}
    rms_lw = rms_lw + fulw(i) * fulw(i)
    rms_sw = rms_sw + fusw(i) * fusw(i)
  END DO
  rms_lw = SQRT(rms_lw / {nv})
  rms_sw = SQRT(rms_sw / {nv})
  PRINT *, 'rms_lw', rms_lw
  PRINT *, 'rms_sw', rms_sw
  PRINT *, 'slw_sum', SUM(slw)
  PRINT *, 'ssw_sum', SUM(ssw)
  PRINT *, 'fwin_sum', SUM(fwin)
END PROGRAM sarb_test_suite
"""


def full_legacy_source(dims: SarbDimensions = DEFAULT_DIMS) -> dict[str, str]:
    """The legacy codebase as {filename: source}."""
    return {
        "fuliou_modules.f90": legacy_modules_source(dims),
        "sarb_kernels.f90": legacy_kernels_source(dims),
        "sarb_setup.f90": setup_source(dims),
        "sarb_driver.f90": legacy_driver_source(dims),
    }
