"""Zone-level Synoptic SARB driver (paper §2.2).

"For Synoptic SARB, the earth is split into multiple zones that run
parallel to the equator.  Computation for each zone can occur independently
(and hence in parallel) ... The execution of each zone takes time that is
proportional to its size.  Prior to our introduction to the code, Synoptic
SARB only used (coarse-grained) inter-zone parallelism via MPI."

This module provides that encompassing driver:

* :func:`run_synoptic` executes the entropy pipeline for every
  (zone, synoptic hour) column through the GLAF IR interpreter — the
  functional equivalent of the production driver — and returns per-zone
  flux summaries;
* :class:`MpiZoneModel` models the pre-existing coarse-grained MPI
  decomposition (static block distribution of zones over ranks, load
  imbalance from zone sizes) and composes it with the intra-zone OpenMP
  speed-ups of Figures 5/6, quantifying what the paper's intra-zone
  parallelization adds on top of the legacy MPI layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..glafexec import ExecutionContext, Interpreter
from .atmosphere import DEFAULT_DIMS, SarbDimensions, make_inputs, zone_sizes
from .kernels import build_sarb_program
from .validation import OUTPUT_NAMES, _context_values

__all__ = ["ZoneResult", "SynopticResult", "run_synoptic",
           "MpiZoneModel", "mpi_omp_speedup"]


@dataclass
class ZoneResult:
    zone: int
    hours: int
    size_factor: float
    mean_fulw: float
    mean_fusw: float
    olr_total: float


@dataclass
class SynopticResult:
    zones: list[ZoneResult] = field(default_factory=list)

    def olr_by_zone(self) -> np.ndarray:
        return np.array([z.olr_total for z in self.zones])


def run_synoptic(
    n_zones: int = 6,
    n_hours: int = 2,
    dims: SarbDimensions = DEFAULT_DIMS,
    seed: int = 2018,
) -> SynopticResult:
    """Run the full entropy pipeline for every (zone, hour) column.

    Each zone gets its own synthetic atmosphere (seeded per zone, so runs
    are reproducible); within a zone, hours are processed serially in
    synoptic order, exactly as the paper describes.
    """
    program = build_sarb_program(dims)
    sizes = zone_sizes(n_zones)
    result = SynopticResult()
    for z in range(n_zones):
        inp = make_inputs(dims, seed=seed + 101 * z)
        ctx = ExecutionContext(program, values=_context_values(inp))
        interp = Interpreter(program, ctx)
        fulw_sum = fusw_sum = 0.0
        for _hour in range(n_hours):
            interp.call("entropy_interface", [dims.nv, dims.nblw, dims.nbsw])
            fulw_sum += float(ctx.get("fulw").mean())
            fusw_sum += float(ctx.get("fusw").mean())
        result.zones.append(ZoneResult(
            zone=z,
            hours=n_hours,
            size_factor=float(sizes[z]),
            mean_fulw=fulw_sum / n_hours,
            mean_fusw=fusw_sum / n_hours,
            olr_total=float(ctx.value("olr_acc")),
        ))
    return result


@dataclass(frozen=True)
class MpiZoneModel:
    """The legacy coarse-grained decomposition: zones statically blocked
    over MPI ranks; a rank's time is the sum of its zones' sizes; the job
    finishes with the slowest rank."""

    n_zones: int = 18
    n_ranks: int = 4

    def zone_assignment(self) -> list[list[int]]:
        """Contiguous block distribution (the classic legacy layout)."""
        out: list[list[int]] = [[] for _ in range(self.n_ranks)]
        per = self.n_zones / self.n_ranks
        for z in range(self.n_zones):
            out[min(int(z / per), self.n_ranks - 1)].append(z)
        return out

    def rank_loads(self) -> np.ndarray:
        sizes = zone_sizes(self.n_zones)
        return np.array([
            sizes[zs].sum() for zs in self.zone_assignment()
        ])

    def makespan(self) -> float:
        """Wall time in zone-size units (slowest rank wins)."""
        return float(self.rank_loads().max())

    def serial_time(self) -> float:
        return float(zone_sizes(self.n_zones).sum())

    def mpi_speedup(self) -> float:
        return self.serial_time() / self.makespan()

    def load_imbalance(self) -> float:
        """max/mean rank load — 1.0 is perfect; block distribution of
        cosine-sized zones is notably imbalanced (equatorial ranks heavy)."""
        loads = self.rank_loads()
        return float(loads.max() / loads.mean())


def mpi_omp_speedup(model: MpiZoneModel, intra_zone_speedup: float) -> float:
    """Combined speed-up of MPI-over-zones x OpenMP-within-zone vs fully
    serial processing: every zone's work shrinks by the intra-zone factor,
    the makespan math is unchanged.

    This is the quantity the paper's intra-zone work unlocks: the legacy
    code already had ``mpi_speedup()``; multiplying in the Figure-6 v3
    speed-up gives the end-to-end gain.
    """
    if intra_zone_speedup <= 0:
        raise ValueError("intra-zone speedup must be positive")
    return model.mpi_speedup() * intra_zone_speedup
