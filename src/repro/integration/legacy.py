"""Model of a legacy FORTRAN codebase.

A :class:`LegacyCodebase` holds the source files of an existing program
(e.g. our synthetic Synoptic SARB), parses them, and builds the indexes the
integration checks need: which modules export which variables and TYPEs,
which COMMON blocks exist with what member shapes, and the signature of
every subprogram (so a GLAF-generated replacement can be verified against
the original interface before splicing).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import DiagnosticBundle, IntegrationError
from ..fortranlib.ast import (
    FCommon,
    FDecl,
    FDeclEntity,
    FModule,
    FNum,
    FProgramUnit,
    FSourceFile,
    FSubprogram,
    FTypeDef,
    FTypeSpec,
    FUse,
    FVar,
)
from ..fortranlib.parser import parse_source

__all__ = ["LegacyCodebase", "SubprogramSignature", "ParamSpec", "CommonSpec"]


@dataclass(frozen=True)
class ParamSpec:
    name: str
    base: str                # 'integer' | 'real' | ...
    kind: int
    rank: int
    intent: str | None
    dims: tuple[str, ...]    # textual dims for reporting


@dataclass(frozen=True)
class SubprogramSignature:
    name: str
    kind: str                # 'subroutine' | 'function'
    module: str | None
    params: tuple[ParamSpec, ...]
    result_base: str | None = None
    result_kind: int | None = None


@dataclass(frozen=True)
class CommonSpec:
    block: str
    members: tuple[ParamSpec, ...]


def _dim_text(e) -> str:
    if isinstance(e, FNum):
        return str(e.value)
    if isinstance(e, FVar):
        return e.name
    return "<expr>"


def _param_spec(name: str, decl: tuple[FDecl, FDeclEntity] | None) -> ParamSpec:
    if decl is None:
        raise IntegrationError(f"parameter {name!r} lacks a declaration")
    d, ent = decl
    rank = len(ent.dims) if not ent.deferred_rank else ent.deferred_rank
    return ParamSpec(
        name=name,
        base=d.spec.base,
        kind=d.spec.kind,
        rank=rank,
        intent=d.intent,
        dims=tuple(_dim_text(x) for x in ent.dims),
    )


class LegacyCodebase:
    """Parsed legacy sources with integration-relevant indexes."""

    def __init__(self, name: str):
        self.name = name
        self.files: dict[str, str] = {}
        self.parsed: dict[str, FSourceFile] = {}
        # indexes
        self.module_exports: dict[str, set[str]] = {}     # module -> names
        self.module_types: dict[str, set[str]] = {}       # module -> TYPE names
        self.type_fields: dict[str, dict[str, tuple[str, int, int]]] = {}
        self.commons: dict[str, CommonSpec] = {}
        self.signatures: dict[str, SubprogramSignature] = {}
        self.subprogram_file: dict[str, str] = {}
        self.module_of_sub: dict[str, str | None] = {}
        # filename -> syntax errors skipped while indexing with recover=True
        self.diagnostics: dict[str, list] = {}

    # ------------------------------------------------------------------
    def add_file(self, filename: str, source: str, *, recover: bool = False) -> None:
        """Parse and index one legacy source file.

        With ``recover=True`` a file with syntax errors is still indexed
        from its partial parse (every unit that did parse); the skipped
        errors are kept in ``self.diagnostics[filename]`` so integration
        reports can surface them instead of losing the whole codebase.
        """
        if filename in self.files:
            raise IntegrationError(f"duplicate file {filename!r}")
        self.files[filename] = source
        if recover:
            try:
                tree = parse_source(source, recover=True)
            except DiagnosticBundle as bundle:
                tree = bundle.partial if bundle.partial is not None else FSourceFile()
                self.diagnostics[filename] = list(bundle.diagnostics)
        else:
            tree = parse_source(source)
        self.parsed[filename] = tree
        for mod in tree.modules:
            self._index_module(filename, mod)
        for sub in tree.subprograms:
            self._index_subprogram(filename, sub, None)
        for prog in tree.programs:
            for sub in prog.subprograms:
                self._index_subprogram(filename, sub, None)

    def _index_module(self, filename: str, mod: FModule) -> None:
        exports = self.module_exports.setdefault(mod.name, set())
        types = self.module_types.setdefault(mod.name, set())
        for d in mod.decls:
            if isinstance(d, FDecl):
                for ent in d.entities:
                    exports.add(ent.name)
            elif isinstance(d, FTypeDef):
                types.add(d.name)
                fields: dict[str, tuple[str, int, int]] = {}
                for fd in d.decls:
                    for ent in fd.entities:
                        fields[ent.name] = (fd.spec.base, fd.spec.kind, len(ent.dims))
                self.type_fields[d.name] = fields
        for sub in mod.subprograms:
            self._index_subprogram(filename, sub, mod.name)

    def _index_subprogram(self, filename: str, sub: FSubprogram, module: str | None) -> None:
        decls: dict[str, tuple[FDecl, FDeclEntity]] = {}
        for d in sub.decls:
            if isinstance(d, FDecl):
                for ent in d.entities:
                    decls[ent.name] = (d, ent)
            elif isinstance(d, FCommon):
                members = []
                for vname in d.names:
                    if vname in decls:
                        members.append(_param_spec(vname, decls[vname]))
                existing = self.commons.get(d.block)
                spec = CommonSpec(block=d.block, members=tuple(members))
                if existing is None or len(members) > len(existing.members):
                    self.commons[d.block] = spec
        params = tuple(_param_spec(p, decls.get(p)) for p in sub.params)
        result_base = result_kind = None
        if sub.kind == "function" and sub.result and sub.result in decls:
            d, _ = decls[sub.result]
            result_base, result_kind = d.spec.base, d.spec.kind
        self.signatures[sub.name] = SubprogramSignature(
            name=sub.name, kind=sub.kind, module=module, params=params,
            result_base=result_base, result_kind=result_kind,
        )
        self.subprogram_file[sub.name] = filename
        self.module_of_sub[sub.name] = module

    # ------------------------------------------------------------------
    def signature(self, name: str) -> SubprogramSignature:
        try:
            return self.signatures[name.lower()]
        except KeyError:
            raise IntegrationError(
                f"legacy codebase has no subprogram {name!r}"
            ) from None

    def has_module(self, name: str) -> bool:
        return name.lower() in self.module_exports

    def module_has(self, module: str, name: str) -> bool:
        return name.lower() in self.module_exports.get(module.lower(), set())

    def all_sources(self) -> str:
        return "\n".join(self.files[f] for f in sorted(self.files))
