"""Correctness-wrapper generation (paper §4.1.1).

"For evaluating the functional correctness of the code, we create a wrapper
function that calls the GLAF auto-generated subroutines and provides sample
values for the required inputs."  This module generates exactly that
wrapper: a FORTRAN PROGRAM that declares the arguments, fills inputs with
supplied sample values, calls the subprogram, and PRINTs every output
element so a harness can compare runs side by side.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..codegen.base import Emitter
from ..codegen.fortran import FortranExprRenderer
from ..core.expr import Const
from ..core.function import GlafProgram
from ..core.types import GlafType, fortran_decl
from ..errors import IntegrationError

__all__ = ["generate_wrapper", "parse_wrapper_output"]


def _literal(renderer: FortranExprRenderer, ty: GlafType, v: Any) -> str:
    if ty is GlafType.T_INT:
        return str(int(v))
    if ty is GlafType.T_LOGICAL:
        return ".TRUE." if v else ".FALSE."
    return renderer.render_const(Const(float(v)))


def generate_wrapper(
    program: GlafProgram,
    fn_name: str,
    sample_inputs: dict[str, Any],
    *,
    module_name: str,
    wrapper_name: str | None = None,
) -> str:
    """Generate a PROGRAM that drives ``fn_name`` with the given samples.

    ``sample_inputs`` maps each dummy-argument name to a scalar or NumPy
    array of sample values; intent(out) arguments may be omitted (they are
    zero-initialized).  Every argument is printed after the call, one
    element per PRINT line, tagged ``name(index) value``.
    """
    fn = program.find_function(fn_name)
    renderer = FortranExprRenderer(program, fn)
    wrapper_name = wrapper_name or f"test_{fn_name}"
    em = Emitter()
    em.emit(f"! Correctness wrapper for {fn_name} (paper section 4.1.1)")
    em.emit(f"PROGRAM {wrapper_name}")
    em.indent()
    em.emit(f"USE {module_name}")
    em.emit("IMPLICIT NONE")

    # Resolve symbolic dims from integer sample inputs.
    sizes: dict[str, int] = {}
    for p in fn.params:
        g = fn.grids[p]
        if g.ty is GlafType.T_INT and g.rank == 0 and p in sample_inputs:
            sizes[p] = int(sample_inputs[p])

    arrays: list[tuple[str, tuple[int, ...]]] = []
    for p in fn.params:
        g = fn.grids[p]
        if g.rank == 0:
            em.emit(f"{fortran_decl(g.ty)} :: {g.name}")
        else:
            shape = g.shape(sizes)
            dims = ", ".join(str(n) for n in shape)
            em.emit(f"{fortran_decl(g.ty)} :: {g.name}({dims})")
            arrays.append((p, shape))
    if not fn.is_subroutine:
        em.emit(f"{fortran_decl(fn.return_type)} :: wrapper_result")
    em.blank()

    # Assign sample values.
    for p in fn.params:
        g = fn.grids[p]
        if p not in sample_inputs:
            if g.intent == "in":
                raise IntegrationError(
                    f"wrapper for {fn_name}: intent(in) argument {p!r} needs a sample"
                )
            continue
        v = sample_inputs[p]
        if g.rank == 0:
            em.emit(f"{g.name} = {_literal(renderer, g.ty, v)}")
        else:
            arr = np.asarray(v)
            shape = g.shape(sizes)
            if arr.shape != shape:
                raise IntegrationError(
                    f"wrapper for {fn_name}: sample for {p!r} has shape "
                    f"{arr.shape}, expected {shape}"
                )
            for idx in np.ndindex(*shape):
                subs = ", ".join(str(i + 1) for i in idx)
                em.emit(f"{g.name}({subs}) = {_literal(renderer, g.ty, arr[idx])}")
    em.blank()

    args = ", ".join(fn.params)
    if fn.is_subroutine:
        em.emit(f"CALL {fn_name}({args})")
    else:
        em.emit(f"wrapper_result = {fn_name}({args})")
        em.emit("PRINT *, 'result', wrapper_result")

    # Print every argument element for side-by-side comparison.
    for p in fn.params:
        g = fn.grids[p]
        if g.rank == 0:
            em.emit(f"PRINT *, '{p}', {g.name}")
        else:
            shape = g.shape(sizes)
            for idx in np.ndindex(*shape):
                subs = ", ".join(str(i + 1) for i in idx)
                em.emit(f"PRINT *, '{p}({subs})', {g.name}({subs})")
    em.dedent()
    em.emit(f"END PROGRAM {wrapper_name}")
    return em.text()


def parse_wrapper_output(output: list[tuple]) -> dict[str, float]:
    """Turn the runtime's PRINT log into a {'name(i, j)': value} mapping."""
    out: dict[str, float] = {}
    for entry in output:
        if len(entry) == 2 and isinstance(entry[0], str):
            out[entry[0]] = entry[1]
    return out
