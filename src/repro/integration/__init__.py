"""Legacy-code integration: the paper's contribution (§3/§4 methodology)."""

from .interface import InterfaceIssue, InterfaceReport, check_interface, check_program
from .legacy import CommonSpec, LegacyCodebase, ParamSpec, SubprogramSignature
from .report import IntegrationReport, UnitIntegrationSummary, build_report
from .splice import SpliceResult, extract_unit, splice_into_codebase, splice_units
from .wrapper import generate_wrapper, parse_wrapper_output

__all__ = [
    "InterfaceIssue", "InterfaceReport", "check_interface", "check_program",
    "CommonSpec", "LegacyCodebase", "ParamSpec", "SubprogramSignature",
    "IntegrationReport", "UnitIntegrationSummary", "build_report",
    "SpliceResult", "extract_unit", "splice_into_codebase", "splice_units",
    "generate_wrapper", "parse_wrapper_output",
]
