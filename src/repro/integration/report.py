"""Integration reporting.

Summarizes, per generated unit, which of the paper's §3 mechanisms were
exercised: modules imported (§3.1), COMMON blocks referenced (§3.2),
module-scope grids used (§3.3), subroutine-vs-function form (§3.4), TYPE
elements accessed (§3.5), and library functions used (§3.6).  The SARB and
FUN3D validation suites assert these reports show full feature coverage,
which is the reproduction's analogue of the paper "exercising all GLAF
front-ends and back-ends in concert".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..codegen.fortran import FortranGenerator
from ..core.expr import LibCall, walk
from ..core.function import GlafProgram
from ..optimize.plan import OptimizationPlan

__all__ = ["UnitIntegrationSummary", "IntegrationReport", "build_report"]


@dataclass
class UnitIntegrationSummary:
    name: str
    kind: str                                  # 'subroutine' | 'function'
    used_modules: dict[str, list[str]]         # §3.1
    common_blocks: dict[str, list[str]]        # §3.2
    module_scope_used: list[str]               # §3.3
    type_elements: list[str]                   # §3.5, as 'parent%name'
    lib_functions: list[str]                   # §3.6
    omp_step_indices: list[int]


@dataclass
class IntegrationReport:
    program: str
    variant: str
    units: list[UnitIntegrationSummary] = field(default_factory=list)

    def features_exercised(self) -> dict[str, bool]:
        """Which §3 mechanisms the program as a whole exercises."""
        return {
            "existing_module_import (3.1)": any(u.used_modules for u in self.units),
            "common_blocks (3.2)": any(u.common_blocks for u in self.units),
            "module_scope_grids (3.3)": any(u.module_scope_used for u in self.units),
            "subroutines (3.4)": any(u.kind == "subroutine" for u in self.units),
            "type_elements (3.5)": any(u.type_elements for u in self.units),
            "library_functions (3.6)": any(u.lib_functions for u in self.units),
        }

    def to_text(self) -> str:
        lines = [f"Integration report: {self.program} [{self.variant}]"]
        for u in self.units:
            lines.append(f"  {u.kind.upper()} {u.name}")
            for mod, names in sorted(u.used_modules.items()):
                lines.append(f"    USE {mod}: {', '.join(sorted(set(names)))}")
            for blk, names in sorted(u.common_blocks.items()):
                lines.append(f"    COMMON /{blk}/: {', '.join(names)}")
            if u.module_scope_used:
                lines.append(f"    module-scope: {', '.join(u.module_scope_used)}")
            if u.type_elements:
                lines.append(f"    TYPE elements: {', '.join(u.type_elements)}")
            if u.lib_functions:
                lines.append(f"    library funcs: {', '.join(u.lib_functions)}")
            if u.omp_step_indices:
                lines.append(f"    OMP steps: {u.omp_step_indices}")
        feats = self.features_exercised()
        lines.append("  features: " + ", ".join(
            f"{k}={'yes' if v else 'no'}" for k, v in feats.items()))
        return "\n".join(lines)


def build_report(plan: OptimizationPlan) -> IntegrationReport:
    """Generate FORTRAN and summarize the §3 features each unit exercises."""
    gen = FortranGenerator(plan)
    gen.generate_module()
    program = plan.program
    report = IntegrationReport(program=program.name, variant=plan.variant.name)
    module_scope_names = {g.name for g in program.module_scope_grids()}
    for unit in gen.units:
        fn = program.find_function(unit.name)
        referenced = fn.grids_referenced()
        type_elements = sorted(
            f"{g.type_parent}%{g.name}"
            for name in referenced
            if (g := program.global_grids.get(name)) is not None and g.is_type_element
        )
        libs: set[str] = set()
        for step in fn.steps:
            for e in step.all_exprs():
                for node in walk(e):
                    if isinstance(node, LibCall):
                        libs.add(node.name)
        report.units.append(UnitIntegrationSummary(
            name=unit.name,
            kind=unit.kind,
            used_modules=unit.used_modules,
            common_blocks=unit.common_blocks,
            module_scope_used=sorted(referenced & module_scope_names),
            type_elements=type_elements,
            lib_functions=sorted(libs),
            omp_step_indices=unit.omp_steps,
        ))
    return report
