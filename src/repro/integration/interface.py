"""Interface-compatibility checking.

Before a GLAF-generated subprogram replaces a legacy one, its interface must
match what every existing call site expects: same subprogram kind
(SUBROUTINE vs FUNCTION, §3.4), same parameter count, per-parameter
type/kind/rank compatibility, and — for the §3.1/§3.2 features — every USEd
module must actually exist in the legacy codebase and export the imported
names, and every referenced COMMON block must agree with the legacy block's
member declarations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..codegen.fortran import FortranGenerator
from ..core.function import GlafFunction, GlafProgram
from ..core.types import GlafType
from .legacy import LegacyCodebase, ParamSpec, SubprogramSignature

__all__ = ["InterfaceIssue", "InterfaceReport", "check_interface", "check_program"]

_GLAF_TO_F = {
    GlafType.T_INT: ("integer", 4),
    GlafType.T_REAL: ("real", 4),
    GlafType.T_REAL8: ("real", 8),
    GlafType.T_LOGICAL: ("logical", 4),
    GlafType.T_CHAR: ("character", 4),
}


@dataclass(frozen=True)
class InterfaceIssue:
    severity: str          # 'error' | 'warning'
    where: str
    message: str


@dataclass
class InterfaceReport:
    function: str
    issues: list[InterfaceIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(i.severity == "error" for i in self.issues)

    def errors(self) -> list[InterfaceIssue]:
        return [i for i in self.issues if i.severity == "error"]

    def add(self, severity: str, where: str, message: str) -> None:
        self.issues.append(InterfaceIssue(severity, where, message))


def _check_param(report: InterfaceReport, fn: GlafFunction, gname: str,
                 legacy: ParamSpec, position: int) -> None:
    g = fn.grids[gname]
    base, kind = _GLAF_TO_F[g.ty]
    where = f"{fn.name} parameter {position} ({gname})"
    if legacy.base != base or (legacy.base in ("integer", "real") and legacy.kind != kind
                               and not (legacy.base == "integer")):
        report.add("error", where,
                   f"type mismatch: generated {base}*{kind} vs legacy "
                   f"{legacy.base}*{legacy.kind}")
    if legacy.rank != g.rank:
        report.add("error", where,
                   f"rank mismatch: generated rank {g.rank} vs legacy rank {legacy.rank}")
    gi, li = g.intent, legacy.intent
    if gi and li and gi != li:
        sev = "error" if (li == "in" and gi in ("out", "inout")) else "warning"
        report.add(sev, where, f"intent mismatch: generated {gi} vs legacy {li}")


def check_interface(
    program: GlafProgram, fn_name: str, legacy: LegacyCodebase
) -> InterfaceReport:
    """Check one generated subprogram against the legacy original."""
    fn = program.find_function(fn_name)
    report = InterfaceReport(function=fn_name)
    try:
        sig = legacy.signature(fn_name)
    except Exception:
        report.add("error", fn_name, "legacy codebase has no such subprogram to replace")
        return report

    want_kind = "subroutine" if fn.is_subroutine else "function"
    if sig.kind != want_kind:
        report.add("error", fn_name,
                   f"subprogram kind mismatch: generated {want_kind} vs legacy "
                   f"{sig.kind} (paper section 3.4)")
    if len(sig.params) != len(fn.params):
        report.add("error", fn_name,
                   f"parameter count mismatch: generated {len(fn.params)} vs "
                   f"legacy {len(sig.params)}")
    else:
        for pos, (gname, legacy_p) in enumerate(zip(fn.params, sig.params)):
            _check_param(report, fn, gname, legacy_p, pos)

    # §3.1/§3.5: imported modules must exist and export the imported names.
    referenced = fn.grids_referenced()
    for name in sorted(referenced):
        if name in fn.grids:
            continue
        g = program.global_grids.get(name)
        if g is None:
            continue
        if g.exists_in_module is not None:
            imported = g.type_parent if g.is_type_element else g.name
            if not legacy.has_module(g.exists_in_module):
                report.add("error", f"{fn_name} USE {g.exists_in_module}",
                           "legacy codebase has no such module")
            elif not legacy.module_has(g.exists_in_module, imported):
                report.add("error", f"{fn_name} USE {g.exists_in_module}",
                           f"module does not export {imported!r}")
            if g.is_type_element and g.type_name:
                fields = legacy.type_fields.get(g.type_name.lower())
                if fields is None:
                    report.add("error", f"{fn_name} TYPE {g.type_name}",
                               "legacy codebase does not define this TYPE")
                elif g.name.lower() not in fields:
                    report.add("error", f"{fn_name} TYPE {g.type_name}",
                               f"TYPE has no element {g.name!r}")
        elif g.common_block is not None:
            spec = legacy.commons.get(g.common_block.lower())
            if spec is None:
                report.add("warning", f"{fn_name} COMMON /{g.common_block}/",
                           "block not present in legacy code (new block)")
            else:
                legacy_names = {m.name for m in spec.members}
                if g.name.lower() not in legacy_names:
                    report.add("warning", f"{fn_name} COMMON /{g.common_block}/",
                               f"legacy block does not list member {g.name!r}")
                else:
                    m = next(m for m in spec.members if m.name == g.name.lower())
                    base, kind = _GLAF_TO_F[g.ty]
                    if m.base != base or m.rank != g.rank:
                        report.add("error", f"{fn_name} COMMON /{g.common_block}/",
                                   f"member {g.name!r}: generated {base} rank "
                                   f"{g.rank} vs legacy {m.base} rank {m.rank}")
    return report


def check_program(
    program: GlafProgram, legacy: LegacyCodebase, names: list[str] | None = None
) -> dict[str, InterfaceReport]:
    """Check every (or the named) generated subprogram against the legacy code."""
    names = names or [fn.name for fn in program.functions()
                      if fn.name.lower() in legacy.signatures]
    return {n: check_interface(program, n, legacy) for n in names}
