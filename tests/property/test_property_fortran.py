"""Property-based tests on the FORTRAN path: expression rendering must
round-trip through the FORTRAN parser and evaluate identically, and the
directive-pruning pipeline must be monotone."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis.classify import LoopClass
from repro.codegen.fortran import FortranExprRenderer
from repro.core import GlafBuilder, T_INT, T_REAL8, T_VOID
from repro.core.expr import BinOp, Const, Expr, IndexVar, UnOp
from repro.core.function import GlafProgram
from repro.fortranlib import FortranRuntime

_vars = ("i", "j")


@st.composite
def fortran_exprs(draw, depth=0):
    """Integer expressions renderable to FORTRAN and evaluable there."""
    if depth > 3 or draw(st.integers(0, 2)) == 0:
        if draw(st.booleans()):
            return Const(draw(st.integers(-9, 9)))
        return IndexVar(draw(st.sampled_from(_vars)))
    kind = draw(st.sampled_from(["+", "-", "*", "neg"]))
    if kind == "neg":
        return UnOp("neg", draw(fortran_exprs(depth + 1)))
    return BinOp(kind, draw(fortran_exprs(depth + 1)),
                 draw(fortran_exprs(depth + 1)))


def _eval_py(e: Expr, env) -> int:
    if isinstance(e, Const):
        return e.value
    if isinstance(e, IndexVar):
        return env[e.name]
    if isinstance(e, UnOp):
        return -_eval_py(e.operand, env)
    l, r = _eval_py(e.left, env), _eval_py(e.right, env)
    return {"+": l + r, "-": l - r, "*": l * r}[e.op]


class TestFortranRoundTrip:
    @given(fortran_exprs(), st.integers(-5, 5), st.integers(-5, 5))
    @settings(max_examples=60, deadline=None)
    def test_rendered_expression_evaluates_identically(self, e, iv, jv):
        """Render the GLAF expression as FORTRAN, wrap it in a FUNCTION,
        execute through the FORTRAN interpreter, compare with direct eval."""
        renderer = FortranExprRenderer(GlafProgram(name="x"), None)
        text = renderer.render(e)
        src = f"""
INTEGER FUNCTION evalit(i, j)
  INTEGER, INTENT(IN) :: i
  INTEGER, INTENT(IN) :: j
  evalit = {text}
END FUNCTION evalit
"""
        rt = FortranRuntime()
        rt.load(src)
        got = int(rt.call("evalit", [iv, jv]))
        assert got == _eval_py(e, {"i": iv, "j": jv})


class TestPruningMonotonicity:
    @given(st.permutations([LoopClass.ZERO_INIT, LoopClass.BROADCAST_INIT,
                            LoopClass.SIMPLE_SINGLE, LoopClass.SIMPLE_DOUBLE]))
    @settings(max_examples=24, deadline=None)
    def test_directive_count_monotone_under_any_pruning_order(self, order):
        """However the pruned classes accumulate, directives only decrease."""
        from repro.core import I, ref
        from repro.optimize import Variant, directives_for_variant, make_plan
        from repro.sarb import build_sarb_program

        program = build_sarb_program()
        plan = make_plan(program, "GLAF-parallel v0")
        counts = []
        pruned: list[LoopClass] = []
        for cls in order:
            pruned.append(cls)
            v = Variant(name="x", description="", glaf_generated=True,
                        parallel=True, pruned_classes=tuple(pruned))
            counts.append(
                directives_for_variant(program, plan.parallel_plan, v).n_directives()
            )
        assert counts == sorted(counts, reverse=True)
