"""Property-based tests (hypothesis) on the core IR: expression evaluation,
affine analysis and project serialization."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis.accesses import AffineForm, affine_form
from repro.core import GlafBuilder, I, T_INT, T_REAL8, T_VOID, ref
from repro.core.expr import BinOp, Const, Expr, IndexVar, UnOp
from repro.core.project import expr_from_dict, expr_to_dict

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

_index_vars = st.sampled_from(["i", "j", "k"])


@st.composite
def affine_exprs(draw, depth=0):
    """Expressions that must stay affine in {i, j, k}."""
    if depth > 3 or draw(st.booleans()):
        if draw(st.booleans()):
            return Const(draw(st.integers(-20, 20)))
        return IndexVar(draw(_index_vars))
    op = draw(st.sampled_from(["+", "-", "mul_const", "neg"]))
    if op == "neg":
        return UnOp("neg", draw(affine_exprs(depth + 1)))
    if op == "mul_const":
        return BinOp("*", Const(draw(st.integers(-5, 5))),
                     draw(affine_exprs(depth + 1)))
    return BinOp(op, draw(affine_exprs(depth + 1)), draw(affine_exprs(depth + 1)))


@st.composite
def numeric_exprs(draw, depth=0):
    """General numeric expressions over index variables and constants."""
    if depth > 3 or draw(st.integers(0, 2)) == 0:
        if draw(st.booleans()):
            return Const(draw(st.integers(-9, 9)))
        return IndexVar(draw(_index_vars))
    op = draw(st.sampled_from(["+", "-", "*"]))
    return BinOp(op, draw(numeric_exprs(depth + 1)), draw(numeric_exprs(depth + 1)))


def _eval_py(e: Expr, env: dict[str, int]) -> int:
    if isinstance(e, Const):
        return e.value
    if isinstance(e, IndexVar):
        return env[e.name]
    if isinstance(e, UnOp):
        return -_eval_py(e.operand, env)
    assert isinstance(e, BinOp)
    l, r = _eval_py(e.left, env), _eval_py(e.right, env)
    return {"+": l + r, "-": l - r, "*": l * r}[e.op]


# ---------------------------------------------------------------------------
# properties
# ---------------------------------------------------------------------------

class TestAffineProperties:
    @given(affine_exprs(), st.integers(-10, 10), st.integers(-10, 10),
           st.integers(-10, 10))
    @settings(max_examples=150, deadline=None)
    def test_affine_form_evaluates_correctly(self, e, i, j, k):
        """The affine decomposition must agree with direct evaluation."""
        form = affine_form(e, {"i", "j", "k"})
        assert form is not None, e
        env = {"i": i, "j": j, "k": k}
        direct = _eval_py(e, env)
        via_form = form.const + sum(c * env[v] for v, c in form.coeffs.items())
        assert direct == via_form

    @given(affine_exprs(), affine_exprs())
    @settings(max_examples=80, deadline=None)
    def test_affine_minus_is_difference(self, a, b):
        fa = affine_form(a, {"i", "j", "k"})
        fb = affine_form(b, {"i", "j", "k"})
        diff = fa.minus(fb)
        env = {"i": 3, "j": -2, "k": 5}
        da = _eval_py(a, env) - _eval_py(b, env)
        dv = diff.const + sum(c * env[v] for v, c in diff.coeffs.items())
        assert da == dv

    @given(numeric_exprs())
    @settings(max_examples=150, deadline=None)
    def test_nonaffine_never_misclassified(self, e):
        """If affine_form returns a form, it must be exact everywhere."""
        form = affine_form(e, {"i", "j", "k"})
        if form is None:
            return
        for env in ({"i": 0, "j": 0, "k": 0}, {"i": 2, "j": 3, "k": 5},
                    {"i": -1, "j": 7, "k": -4}):
            direct = _eval_py(e, env)
            via = form.const + sum(c * env[v] for v, c in form.coeffs.items())
            assert direct == via


class TestExprSerializationProperties:
    @given(numeric_exprs())
    @settings(max_examples=150, deadline=None)
    def test_expr_round_trip(self, e):
        assert expr_from_dict(expr_to_dict(e)) == e


class TestInterpreterAgainstPython:
    @given(numeric_exprs(), st.integers(1, 5), st.integers(1, 5), st.integers(1, 5))
    @settings(max_examples=60, deadline=None)
    def test_ir_interpreter_matches_python_eval(self, e, i, j, k):
        """Build a 1-iteration triple nest evaluating `e` into a scalar and
        compare the IR interpreter's result with direct evaluation."""
        from repro.glafexec import run_interpreted

        b = GlafBuilder("prop")
        m = b.module("M")
        f = m.function("f", return_type=T_INT)
        s = f.step()
        s.foreach(i=(i, i), j=(j, j), k=(k, k))
        f.local("out", T_INT)
        s.formula(ref("out"), e)
        f.returns(ref("out"))
        program = b.build()
        result, _, _ = run_interpreted(program, "f", [])
        assert int(result) == _eval_py(e, {"i": i, "j": j, "k": k})
