"""Property tests: mesh invariants across sizes/seeds and whole-program
project round trips."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import GlafBuilder, I, T_INT, T_REAL8, T_VOID, lib, ref
from repro.core.project import program_from_dict, program_to_dict
from repro.fun3d.mesh import make_mesh


class TestMeshInvariants:
    @given(st.integers(27, 200), st.integers(0, 10_000))
    @settings(max_examples=12, deadline=None)
    def test_invariants_hold_for_any_mesh(self, n_points, seed):
        mesh = make_mesh(n_points, seed=seed)
        # Connectivity counts in plausible ranges for tet meshes.
        assert mesh.ncell > 0 and mesh.nedge > mesh.nnode // 2
        assert mesh.nnz == mesh.nnode + 2 * mesh.nedge
        # 1-based ranges.
        assert mesh.cell_nodes.min() >= 1 and mesh.cell_nodes.max() <= mesh.nnode
        assert mesh.cell_edges.min() >= 1 and mesh.cell_edges.max() <= mesh.nedge
        # Every cell's 4 nodes are distinct.
        sorted_nodes = np.sort(mesh.cell_nodes, axis=1)
        assert np.all(np.diff(sorted_nodes, axis=1) > 0)
        # Edge endpoints distinct and ordered.
        assert np.all(mesh.edge_nodes[:, 0] < mesh.edge_nodes[:, 1])
        # CSR is consistent: row_ptr monotone, cols within range.
        assert np.all(np.diff(mesh.row_ptr) >= 1)  # diagonal always present
        assert mesh.col_idx.min() >= 1 and mesh.col_idx.max() <= mesh.nnode
        # Angle metric in range.
        assert np.all((mesh.face_angle >= 0) & (mesh.face_angle <= 1))

    @given(st.integers(27, 120))
    @settings(max_examples=8, deadline=None)
    def test_every_cell_edge_findable_in_csr(self, n_points):
        mesh = make_mesh(n_points, seed=3)
        rng = np.random.default_rng(0)
        cells = rng.integers(0, mesh.ncell, size=min(20, mesh.ncell))
        for c in cells:
            for e in mesh.cell_edges[c]:
                n1, n2 = mesh.edge_nodes[e - 1]
                p = mesh.csr_offset(int(n1), int(n2))
                assert mesh.col_idx[p - 1] == n2


@st.composite
def small_programs(draw):
    """Random small-but-valid GLAF programs."""
    b = GlafBuilder("rand")
    n_globals = draw(st.integers(0, 2))
    for gi in range(n_globals):
        kind = draw(st.sampled_from(["module_scope", "common", "imported"]))
        name = f"g{gi}"
        if kind == "module_scope":
            b.global_grid(name, T_REAL8, dims=(4,), module_scope=True)
        elif kind == "common":
            b.global_grid(name, T_REAL8, dims=(4,), common_block="blk")
        else:
            b.global_grid(name, T_REAL8, dims=(4,), exists_in_module="ext_mod")
    m = b.module("M")
    n_funcs = draw(st.integers(1, 2))
    for fi in range(n_funcs):
        f = m.function(f"f{fi}", return_type=T_VOID)
        f.param("n", T_INT, intent="in")
        f.param("a", T_REAL8, dims=("n",), intent="inout")
        n_steps = draw(st.integers(1, 3))
        for si in range(n_steps):
            s = f.step(f"s{si}")
            shape = draw(st.sampled_from(
                ["zero", "scale", "accum", "libfn", "cond", "branch", "nest"]))
            if shape == "nest":
                s.foreach(i=(1, "n"), j=(1, 3))
                s.formula(ref("a", I("i")),
                          ref("a", I("i")) + 0.25 * I("j"))
                continue
            s.foreach(i=(1, "n"))
            if shape == "zero":
                s.formula(ref("a", I("i")), 0.0)
            elif shape == "scale":
                s.formula(ref("a", I("i")), ref("a", I("i")) * 2.0)
            elif shape == "accum":
                s.formula(ref("a", I("i")), ref("a", I("i")) + 1.5)
            elif shape == "libfn":
                s.formula(ref("a", I("i")), lib("ABS", ref("a", I("i"))))
            elif shape == "cond":
                s.condition(ref("n").gt(2))
                s.formula(ref("a", I("i")), ref("a", I("i")) - 0.5)
            else:  # branch
                from repro.core.builder import StepBuilder as SB

                s.if_(ref("a", I("i")).gt(0.0),
                      [SB.assign(ref("a", I("i")), ref("a", I("i")) * 0.5)],
                      [SB.assign(ref("a", I("i")), ref("a", I("i")) + 1.0)])
            if n_globals and draw(st.booleans()):
                s.formula(ref("a", I("i")), ref("a", I("i")) + ref("g0", 1))
    return b.build()


class TestProgramProperties:
    @given(small_programs())
    @settings(max_examples=25, deadline=None)
    def test_project_round_trip(self, program):
        d = program_to_dict(program)
        assert program_to_dict(program_from_dict(d)) == d

    @given(small_programs())
    @settings(max_examples=15, deadline=None)
    def test_generated_fortran_reparses(self, program):
        from repro.codegen import generate_fortran_module
        from repro.fortranlib.parser import parse_source
        from repro.optimize import make_plan

        src = generate_fortran_module(make_plan(program, "GLAF-parallel v0"))
        tree = parse_source(src)
        generated_names = {s.name for mod in tree.modules
                           for s in mod.subprograms}
        expected = {fn.name for fn in program.functions()}
        assert generated_names == expected

    @given(small_programs())
    @settings(max_examples=6, deadline=None)
    def test_generated_fortran_executes_identically(self, program):
        """Random programs: generated FORTRAN (run by fortranlib) matches
        the IR interpreter elementwise."""
        import numpy as np

        from repro.codegen import generate_fortran_module
        from repro.fortranlib import FortranRuntime
        from repro.glafexec import ExecutionContext, Interpreter
        from repro.optimize import make_plan

        values = {
            name: np.linspace(0.5, 2.0, 4)
            for name, g in program.global_grids.items()
        }
        entry = next(iter(program.functions())).name
        a_ir = np.linspace(-2.0, 2.0, 6)
        ctx = ExecutionContext(program, sizes={"n": 6}, values=values)
        Interpreter(program, ctx).call(entry, [6, a_ir])

        rt = FortranRuntime()
        ext_names = [name for name, g in program.global_grids.items()
                     if g.exists_in_module]
        if ext_names:
            decls = "\n".join(f"  REAL(KIND=8) :: {n}(4)" for n in ext_names)
            rt.load(f"MODULE ext_mod\n  IMPLICIT NONE\n{decls}\nEND MODULE ext_mod\n")
        rt.load(generate_fortran_module(make_plan(program, "GLAF serial")))
        for name, g in program.global_grids.items():
            if g.exists_in_module:
                rt.modules["ext_mod"].variables[name].store[...] = values[name]
            elif g.common_block:
                # Materialize the COMMON block through a setter unit.
                rt.load(f"""
SUBROUTINE set_{name}(v)
  REAL(KIND=8), INTENT(IN) :: v(4)
  REAL(KIND=8) :: {name}(4)
  COMMON /blk/ {name}
  INTEGER :: i
  DO i = 1, 4
    {name}(i) = v(i)
  END DO
END SUBROUTINE set_{name}
""")
                rt.call(f"set_{name}", [values[name].copy()])
        # Module-scope grids of the generated module:
        gen_mod = f"glaf_{program.name.lower()}_mod"
        for name, g in program.global_grids.items():
            if not g.is_external:
                rt.modules[gen_mod].variables[name].store[...] = values[name]
        a_ft = np.linspace(-2.0, 2.0, 6)
        rt.call(entry, [6, a_ft])
        assert np.allclose(a_ir, a_ft, rtol=1e-14, atol=1e-300)

    @given(small_programs())
    @settings(max_examples=10, deadline=None)
    def test_interpreter_and_generated_python_agree(self, program):
        import numpy as np

        from repro.glafexec import run_generated_python, run_interpreted

        entry = next(iter(program.functions())).name
        a1 = np.linspace(-2.0, 2.0, 6)
        a2 = a1.copy()
        run_interpreted(program, entry, [6, a1], sizes={"n": 6})
        run_generated_python(program, entry, [6, a2], sizes={"n": 6})
        assert np.array_equal(a1, a2)
