"""Smoke tests keeping every example script runnable.

Each example's ``main()`` is invoked in-process; assertions inside the
examples double as checks (they raise on regression).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _load(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


@pytest.mark.parametrize("name", [
    "quickstart",
    "codegen_tour",
    "sarb_integration",
    "fun3d_jacobian",
    "graph_kernel",
    "paper_figures",
])
def test_example_runs(name, capsys):
    mod = _load(name)
    mod.main()
    out = capsys.readouterr().out
    assert len(out) > 200  # every example narrates its steps
