"""Integration test: the full SARB methodology of paper §4.1.1.

1. unit testing via generated wrapper programs;
2. side-by-side comparison across all five execution paths;
3. interface checks, then substitution into the legacy code and a run of
   the test-suite driver;
4. inspection of the OpenMP directives actually executed (the paper's
   "manually verify the correctness of the OpenMP directives" step, done
   mechanically here).
"""

import numpy as np
import pytest

from repro.codegen.fortran import FortranGenerator
from repro.fortranlib import FortranRuntime
from repro.integration import build_report, check_program, generate_wrapper, \
    parse_wrapper_output
from repro.optimize import make_plan
from repro.sarb import (
    OUTPUT_NAMES,
    SARB_SUBROUTINES,
    build_legacy_codebase,
    build_sarb_program,
    full_legacy_source,
    make_inputs,
    run_generated_fortran,
    run_generated_python,
    run_ir_interpreter,
    run_legacy_fortran,
    run_reference,
    run_spliced,
)


@pytest.fixture(scope="module")
def inp():
    return make_inputs()


@pytest.fixture(scope="module")
def reference(inp):
    return run_reference(inp)


class TestSideBySide:
    def test_ir_interpreter_matches_reference(self, inp, reference):
        outs = run_ir_interpreter(inp)
        for n in OUTPUT_NAMES:
            assert np.allclose(outs[n], reference[n], rtol=1e-10, atol=1e-12), n

    def test_generated_python_matches_ir_exactly(self, inp):
        # Bitwise identity is a claim about the *reference* interpreter's
        # evaluation order, so pin the executor: under the vectorized
        # executor (REPRO_EXECUTOR=vectorized) reductions reassociate and
        # equality is tolerance-based instead (test_executor_equivalence).
        ir = run_ir_interpreter(inp, executor="interpreter")
        py = run_generated_python(inp)
        for n in OUTPUT_NAMES:
            assert np.array_equal(ir[n], py[n]), n

    def test_legacy_fortran_matches_reference(self, inp, reference):
        outs, _ = run_legacy_fortran(inp)
        for n in OUTPUT_NAMES:
            assert np.allclose(outs[n], reference[n], rtol=1e-10, atol=1e-12), n

    def test_generated_fortran_matches_legacy(self, inp):
        leg, _ = run_legacy_fortran(inp)
        gen, _, _ = run_generated_fortran(inp)
        for n in OUTPUT_NAMES:
            assert np.allclose(gen[n], leg[n], rtol=1e-12, atol=1e-14), n

    def test_parallel_variant_same_numbers(self, inp):
        serial, _, _ = run_generated_fortran(inp, variant="GLAF serial")
        par, rt, _ = run_generated_fortran(inp, variant="GLAF-parallel v0")
        for n in OUTPUT_NAMES:
            assert np.array_equal(serial[n], par[n]), n
        assert any(e.kind == "parallel_do" for e in rt.omp_log)


class TestWrapperUnitTesting:
    def test_adjust2_wrapper_side_by_side(self, inp):
        """Wrapper-based unit test: adjust2 run standalone under both the
        legacy original and the GLAF-generated module."""
        program = build_sarb_program(inp.dims)
        plan = make_plan(program, "GLAF serial")
        gen = FortranGenerator(plan)
        gen_src = gen.generate_module()
        sample = {"nv": inp.dims.nv,
                  "flux": np.linspace(0.0, 10.0, inp.dims.nv)}
        wrapper_gen = generate_wrapper(program, "adjust2", sample,
                                       module_name=gen.module_name)

        sources = full_legacy_source(inp.dims)

        # Path A: GLAF-generated adjust2.
        rt_a = FortranRuntime()
        rt_a.load(sources["fuliou_modules.f90"])
        rt_a.load(sources["sarb_setup.f90"])
        rt_a.load(gen_src)
        rt_a.load(wrapper_gen)
        rt_a.call("set_entwts", [inp.wlw.copy(), inp.wsw.copy(), inp.wwin.copy()])
        rt_a.run_program("test_adjust2")
        vals_a = parse_wrapper_output(rt_a.output)

        # Path B: legacy adjust2, same wrapper body but direct CALL.
        rt_b = FortranRuntime()
        for fname in sorted(sources):
            rt_b.load(sources[fname])
        rt_b.call("set_entwts", [inp.wlw.copy(), inp.wsw.copy(), inp.wwin.copy()])
        flux = np.linspace(0.0, 10.0, inp.dims.nv)
        rt_b.call("adjust2", [inp.dims.nv, flux])

        for i in range(inp.dims.nv):
            assert vals_a[f"flux({i + 1})"] == pytest.approx(flux[i], rel=1e-14)


class TestSpliceAndRun:
    def test_interface_checks_pass(self, inp):
        program = build_sarb_program(inp.dims)
        legacy = build_legacy_codebase(inp.dims)
        reports = check_program(program, legacy, list(SARB_SUBROUTINES))
        for name, report in reports.items():
            assert report.ok, (name, [i.message for i in report.errors()])

    def test_spliced_serial_matches_legacy_driver(self, inp):
        leg, rt_leg = run_legacy_fortran(inp)
        spl, rt_spl, output = run_spliced(inp, variant="GLAF serial")
        for n in OUTPUT_NAMES:
            assert np.allclose(spl[n], leg[n], rtol=1e-12, atol=1e-14), n
        printed = dict(output)
        assert printed["rms_lw"] == pytest.approx(
            float(np.sqrt((leg["fulw"] ** 2).mean())), rel=1e-12)

    def test_spliced_v3_keeps_two_omp_loops(self, inp):
        _, rt, _ = run_spliced(inp, variant="GLAF-parallel v3")
        events = [e for e in rt.omp_log if e.kind == "parallel_do"]
        assert len(events) == 2
        assert all(e.unit == "longwave_entropy_model" for e in events)
        assert all(e.collapse == 2 for e in events)
        # Multi-variable reduction on the first large loop (§4.2.1).
        red_vars = {v for e in events for _, v in e.reductions}
        assert {"scratch", "slw"} <= red_vars

    def test_spliced_v0_annotates_many_loops(self, inp):
        _, rt0, _ = run_spliced(inp, variant="GLAF-parallel v0")
        _, rt3, _ = run_spliced(inp, variant="GLAF-parallel v3")
        n0 = len([e for e in rt0.omp_log if e.kind == "parallel_do"])
        n3 = len([e for e in rt3.omp_log if e.kind == "parallel_do"])
        assert n0 > 10 > n3


class TestIntegrationReport:
    def test_all_section3_features_exercised(self, inp):
        program = build_sarb_program(inp.dims)
        report = build_report(make_plan(program, "GLAF-parallel v0"))
        feats = report.features_exercised()
        assert all(feats.values()), feats

    def test_report_names_modules_and_blocks(self, inp):
        program = build_sarb_program(inp.dims)
        text = build_report(make_plan(program, "GLAF-parallel v0")).to_text()
        assert "fuliou_mod" in text
        assert "rad_output_mod" in text
        assert "COMMON /entwts/" in text
        assert "fin%tsfc" in text
