"""Integration: cross-backend agreement on a feature-rich program.

One program exercising every §3 mechanism runs through the IR interpreter,
the generated Python, and the generated FORTRAN executed by the runtime;
all three must agree bit-for-bit (same operation order, float64
throughout).
"""

import numpy as np
import pytest

from repro.codegen.fortran import FortranGenerator
from repro.core import GlafBuilder, I, T_INT, T_REAL8, T_VOID, lib, ref
from repro.core.builder import StepBuilder as SB
from repro.fortranlib import FortranRuntime
from repro.glafexec import ExecutionContext, GeneratedModule, Interpreter
from repro.optimize import make_plan

EXT_MODULE_SRC = """
MODULE ext_mod
  IMPLICIT NONE
  TYPE config
    REAL(KIND=8) :: scale
    REAL(KIND=8) :: offsets(6)
  END TYPE config
  TYPE(config) :: cfg
  REAL(KIND=8) :: table(6)
END MODULE ext_mod
"""


def _program():
    b = GlafBuilder("cross")
    b.derived_type("config", {"scale": (T_REAL8, 0), "offsets": (T_REAL8, 1)},
                   defined_in_module="ext_mod")
    b.global_grid("scale", T_REAL8, exists_in_module="ext_mod",
                  type_parent="cfg", type_name="config")
    b.global_grid("offsets", T_REAL8, dims=(6,), exists_in_module="ext_mod",
                  type_parent="cfg", type_name="config")
    b.global_grid("table", T_REAL8, dims=(6,), exists_in_module="ext_mod")
    b.global_grid("weights", T_REAL8, dims=(3,), common_block="wblk")
    b.global_grid("stage", T_REAL8, dims=(6,), module_scope=True)

    m = b.module("M")

    h = m.function("pick", return_type=T_INT,
                   comment="first index above threshold")
    h.param("n", T_INT, intent="in")
    h.param("v", T_REAL8, dims=(6,), intent="in")
    h.param("thr", T_REAL8, intent="in")
    s = h.step("scan")
    s.foreach(p=(1, "n"))
    s.if_(ref("v", I("p")).gt(ref("thr")), [SB.ret(I("p"))])
    h.returns(1)

    f = m.function("pipeline", return_type=T_VOID)
    f.param("n", T_INT, intent="in")
    f.param("out", T_REAL8, dims=(6,), intent="inout")
    f.local("tot", T_REAL8)
    f.local("idx", T_INT)
    f.local("buf", T_REAL8, dims=(6,), allocatable=True)

    s = f.step("stage_fill")
    s.foreach(i=(1, "n"))
    s.formula(ref("stage", I("i")),
              ref("table", I("i")) * ref("scale") + ref("offsets", I("i")))
    s = f.step("buffer")
    s.foreach(i=(1, "n"))
    s.formula(ref("buf", I("i")),
              lib("ABS", ref("stage", I("i"))) + ref("weights", 1))
    s = f.step("select")
    from repro.core.expr import FuncCall

    s.formula(ref("idx"), FuncCall("pick", (ref("n"), ref("buf"), ref("weights", 2))))
    s = f.step("emit")
    s.foreach(i=(1, "n"))
    s.condition(ref("idx").gt(0))
    s.if_(
        (I("i") % 2).eq(0),
        [SB.assign(ref("out", I("i")),
                   ref("buf", I("i")) * lib("EXP", -ref("stage", I("i")) * 0.1))],
        [SB.assign(ref("out", I("i")),
                   lib("ALOG", ref("buf", I("i")) + 1.0) + ref("buf", ref("idx")))],
    )
    s = f.step("total")
    s.foreach(i=(1, "n"))
    s.formula(ref("tot"), ref("tot") + ref("out", I("i")))
    s = f.step("normalize")
    s.foreach(i=(1, "n"))
    s.formula(ref("out", I("i")), ref("out", I("i")) / lib("MAX", ref("tot"), 1.0))
    return b.build()


@pytest.fixture(scope="module")
def inputs():
    rng = np.random.default_rng(11)
    return {
        "scale": 1.25,
        "offsets": rng.uniform(-1, 1, 6),
        "table": rng.uniform(0.5, 2.0, 6),
        "weights": rng.uniform(0.1, 1.0, 3),
    }


def _run_ir(inputs):
    p = _program()
    ctx = ExecutionContext(p, values=inputs)
    Interpreter(p, ctx).call("pipeline", [6, out := np.zeros(6)])
    return out, ctx.get("stage").copy()


def _run_py(inputs, variant="GLAF serial"):
    p = _program()
    ctx = ExecutionContext(p, values=inputs)
    mod = GeneratedModule(make_plan(p, variant), ctx)
    mod.call("pipeline", [6, out := np.zeros(6)])
    return out, ctx.get("stage").copy()


def _run_fortran(inputs, variant="GLAF serial"):
    p = _program()
    gen = FortranGenerator(make_plan(p, variant))
    src = gen.generate_module()
    rt = FortranRuntime()
    rt.load(EXT_MODULE_SRC)
    rt.load(src)
    ext = rt.modules["ext_mod"]
    ext.variables["cfg"].store.fields["scale"][()] = inputs["scale"]
    ext.variables["cfg"].store.fields["offsets"][...] = inputs["offsets"]
    ext.variables["table"].store[...] = inputs["table"]
    # Materialize the COMMON block through a tiny setter.
    rt.load("""
SUBROUTINE set_wblk(w)
  REAL(KIND=8), INTENT(IN) :: w(3)
  REAL(KIND=8) :: weights(3)
  COMMON /wblk/ weights
  INTEGER :: i
  DO i = 1, 3
    weights(i) = w(i)
  END DO
END SUBROUTINE set_wblk
""")
    rt.call("set_wblk", [inputs["weights"].copy()])
    out = np.zeros(6)
    rt.call("pipeline", [6, out])
    stage = rt.modules[gen.module_name].variables["stage"].store.copy()
    return out, stage


class TestCrossBackend:
    def test_three_backends_agree(self, inputs):
        ir_out, ir_stage = _run_ir(inputs)
        py_out, py_stage = _run_py(inputs)
        ft_out, ft_stage = _run_fortran(inputs)
        assert np.array_equal(ir_out, py_out)
        assert np.allclose(ir_out, ft_out, rtol=1e-14, atol=1e-300)
        assert np.allclose(ir_stage, ft_stage, rtol=1e-14)
        assert np.any(ir_out != 0)

    def test_parallel_variant_same_results(self, inputs):
        s_out, _ = _run_fortran(inputs, "GLAF serial")
        p_out, _ = _run_fortran(inputs, "GLAF-parallel v0")
        assert np.array_equal(s_out, p_out)

    def test_python_parallel_variant_same_results(self, inputs):
        s_out, _ = _run_py(inputs, "GLAF serial")
        p_out, _ = _run_py(inputs, "GLAF-parallel v0")
        assert np.array_equal(s_out, p_out)
