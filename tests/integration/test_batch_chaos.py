"""Chaos proof for the crash-isolated batch compiler (docs/BATCH.md).

One seeded corpus — dozens of healthy fuzz-drawn codebases with crash,
hang, and OOM poison items mixed in — is driven through the *real*
multiprocessing envelope with ``jobs=4``.  The acceptance bar:

* every healthy item compiles (status ``ok``),
* every poison item is quarantined with a digest-named bundle on disk,
* the parent never hangs (the whole module is wall-clock bounded by
  pytest's session, and hung workers are SIGKILLed at a 3 s deadline),
* a serial (``jobs=1``) run of the same corpus is digest-identical,
* a warm rerun over the healthy items serves >= 90% from the artifact
  cache and still digests identically.

The SIGKILL-the-driver-then-``--resume`` half of the chaos contract is
enforced against the real CLI by ``scripts/resume_smoke.py`` (the
parent process must actually die there, which pytest should not do).
"""

import json

import pytest

from repro.batch import BatchOptions, ingest_corpus, run_batch

FUZZ_COUNT = 50

INPUTS = [f"fuzz:7:{FUZZ_COUNT}", "poison:crash:3", "poison:hang:2",
          "poison:oom:2"]


def chaos_options(tmp_path, tag, **kw):
    base = dict(
        jobs=4, retries=1, retry_base_delay=0.01,
        # The deadline must dominate worker *startup* latency under
        # contention (jobs=4 on a 1-core CI box), or a slow-to-schedule
        # crash worker gets misclassified as a hang.
        timeout=10.0,
        max_wall_seconds=30.0,
        max_memory_mb=256,             # poison:oom trips quickly
        cache_dir=str(tmp_path / tag / "cache"),
        checkpoint_dir=str(tmp_path / tag / "ckpt"),
        quarantine_dir=str(tmp_path / tag / "quar"))
    base.update(kw)
    return BatchOptions(**base)


@pytest.fixture(scope="module")
def corpus():
    return ingest_corpus(INPUTS)


class TestBatchChaos:
    def test_chaos_campaign(self, tmp_path, corpus):
        options = chaos_options(tmp_path, "par")
        result = run_batch(corpus, options)

        # No silent skips: one terminal outcome per corpus item.
        assert len(result.outcomes) == len(corpus) == FUZZ_COUNT + 7

        healthy = [o for o in result.outcomes if o.kind != "poison"]
        poison = [o for o in result.outcomes if o.kind == "poison"]

        # Every healthy item compiled...
        assert [o.status for o in healthy] == ["ok"] * FUZZ_COUNT
        assert all(o.artifact_sha for o in healthy)
        # ...and every poison item is quarantined with a bundle on disk.
        assert len(poison) == 7
        for o in poison:
            assert o.status == "quarantined"
            assert o.attempts == 2 and len(o.deaths) == 2
            bundle = tmp_path / "par" / "quar" / o.bundle
            assert bundle.exists(), o.bundle
            doc = json.loads(bundle.read_text())
            assert doc["schema"] == "repro.batch.poison/v1"
            assert doc["item"]["id"] == o.id
            assert len(doc["deaths"]) == 2

        # The hang deaths really came from the parent-side deadline, and
        # the crash/OOM deaths from worker exits — not from each other.
        kinds = {o.id.split("-")[1]: {d["kind"] for d in o.deaths}
                 for o in poison}
        assert kinds["hang"] == {"hang"}
        assert kinds["crash"] == {"crash"}
        assert kinds["oom"] == {"crash"}     # hard allocator death

        # The envelope actually ran in parallel with worker processes.
        assert result.stats["mode"] == "parallel"
        assert result.stats["deaths"] == 14

        # Checkpoints are spent on clean completion.
        assert not (tmp_path / "par" / "ckpt").is_dir()

        # -- serial equivalence ---------------------------------------
        serial = run_batch(corpus, chaos_options(tmp_path, "ser", jobs=1))
        assert serial.stats["mode"] == "serial"
        assert serial.manifest["content_sha256"] == \
            result.manifest["content_sha256"]

        # -- warm-cache rerun over the healthy items ------------------
        fuzz_items = [i for i in corpus if i.kind != "poison"]
        warm = run_batch(fuzz_items, chaos_options(tmp_path, "par"))
        hit_rate = warm.stats["cache"]["hits"] / warm.stats["items"]
        assert hit_rate >= 0.9, warm.stats
        assert [o.status for o in warm.outcomes] == ["ok"] * FUZZ_COUNT
        assert all(o.cached for o in warm.outcomes)

        # Cached outcomes are observationally equivalent to compiles:
        # the healthy-only manifests of the cold and warm runs agree.
        cold_healthy = {o.id: o.core() for o in healthy}
        warm_healthy = {o.id: o.core() for o in warm.outcomes}
        assert warm_healthy == cold_healthy

        # -- sticky quarantine across campaigns -----------------------
        again = run_batch(corpus, chaos_options(tmp_path, "par"))
        assert again.stats["sticky"] == 7
        assert again.stats["deaths"] == 0    # no worker ever re-spawned
        assert again.manifest["content_sha256"] == \
            result.manifest["content_sha256"]
