"""Integration test: the full FUN3D methodology of paper §4.2.

Covers the RMS gate, the SAVE/no-reallocation adaptation, the atomic and
critical clause emission for the parallel options, and the full option
lattice's effect on generated code.
"""

import numpy as np
import pytest

from repro.codegen.fortran import FortranGenerator
from repro.fun3d import (
    FUN3D_FUNCTIONS,
    Fun3DOptions,
    build_fun3d_program,
    jac_rms,
    make_fun3d_plan,
    make_mesh,
    rms_check,
    run_generated_fortran,
    run_generated_python,
    run_ir_interpreter,
    run_legacy_fortran,
    run_reference,
    run_spliced,
)


@pytest.fixture(scope="module")
def mesh():
    return make_mesh(64)


@pytest.fixture(scope="module")
def reference(mesh):
    return run_reference(mesh)


class TestCorrectness:
    def test_ir_matches_reference(self, mesh, reference):
        jac = run_ir_interpreter(mesh)
        assert np.allclose(jac, reference, rtol=1e-10, atol=1e-13)
        assert rms_check(jac, reference)

    def test_generated_python_matches(self, mesh, reference):
        jac = run_generated_python(mesh)
        assert np.allclose(jac, reference, rtol=1e-10, atol=1e-13)

    def test_legacy_fortran_matches(self, mesh, reference):
        jac, _ = run_legacy_fortran(mesh)
        assert np.allclose(jac, reference, rtol=1e-10, atol=1e-13)

    def test_generated_fortran_matches_legacy(self, mesh):
        leg, _ = run_legacy_fortran(mesh)
        gen, _, _ = run_generated_fortran(mesh)
        assert np.allclose(gen, leg, rtol=1e-12, atol=1e-14)

    def test_rms_gate_at_1e7(self, mesh, reference):
        jac, _, _ = run_generated_fortran(mesh)
        assert abs(jac_rms(jac) - jac_rms(reference)) <= 1e-7


class TestNoReallocationAdaptation:
    def test_save_reduces_allocations_dramatically(self, mesh):
        _, rt_realloc, _ = run_generated_fortran(mesh)
        _, rt_saved, _ = run_generated_fortran(mesh, save_inner_arrays=True)
        # 50 temporaries re-allocated per edge_loop call vs once ever.
        assert rt_realloc.allocation_count > 20 * rt_saved.allocation_count

    def test_save_does_not_change_numbers(self, mesh):
        a, _, _ = run_generated_fortran(mesh)
        b, _, _ = run_generated_fortran(mesh, save_inner_arrays=True)
        assert np.array_equal(a, b)

    def test_ir_interpreter_save_option(self, mesh):
        a = run_ir_interpreter(mesh)
        b = run_ir_interpreter(mesh, save_inner_arrays=True)
        assert np.array_equal(a, b)


class TestSpliceAndRun:
    def test_spliced_driver_reports_same_rms(self, mesh, reference):
        jac, rt, output = run_spliced(mesh)
        assert np.allclose(jac, reference, rtol=1e-10, atol=1e-13)
        printed = dict(output)
        assert printed["jac_rms"] == pytest.approx(jac_rms(jac), rel=1e-12)

    def test_spliced_files_contain_decomposition(self, mesh):
        from repro.integration import splice_into_codebase
        from repro.fun3d.validation import build_legacy_codebase
        from repro.optimize import make_plan

        program = build_fun3d_program()
        legacy = build_legacy_codebase(mesh)
        result = splice_into_codebase(make_plan(program, "GLAF serial"),
                                      legacy, list(FUN3D_FUNCTIONS),
                                      add_missing=True)
        # edgejp replaced in place; the other four added as new units.
        assert result.replaced["edgejp"] == "fun3d_edgejp.f90"
        added = result.files["glaf_generated_units.f90"]
        for name in ("cell_loop", "edge_loop", "angle_check", "ioff_search"):
            assert name in added


class TestOptionLatticeCodegen:
    def _source(self, opts: Fun3DOptions) -> str:
        program = build_fun3d_program()
        plan = make_fun3d_plan(program, opts, threads=16)
        return FortranGenerator(plan).generate_module()

    def test_all_off_produces_no_directives(self):
        src = self._source(Fun3DOptions())
        assert "!$OMP PARALLEL DO" not in src

    def test_edgejp_option_annotates_cell_sweep_only(self):
        src = self._source(Fun3DOptions(parallel_edgejp=True))
        assert src.count("!$OMP PARALLEL DO") == 1
        sweep = src[src.index("loop over all cells"):]
        assert sweep.strip().splitlines()[1].startswith("!$OMP PARALLEL DO")

    def test_edge_loop_option_emits_atomic(self):
        src = self._source(Fun3DOptions(parallel_edge_loop=True))
        assert "!$OMP ATOMIC" in src

    def test_ioff_option_emits_critical(self):
        src = self._source(Fun3DOptions(parallel_ioff_search=True))
        assert "!$OMP CRITICAL" in src
        assert "!$OMP END CRITICAL" in src

    def test_cell_loop_option_reduction_clauses(self):
        src = self._source(Fun3DOptions(parallel_cell_loop=True))
        assert "REDUCTION(+:qa)" in src
        assert "REDUCTION(+:grad)" in src

    def test_save_option_changes_declarations(self):
        src = self._source(Fun3DOptions(no_reallocation=True))
        assert "ALLOCATABLE, SAVE :: tmp01(:)" in src
        assert "IF (.NOT. ALLOCATED(tmp01)) ALLOCATE(tmp01(5))" in src

    def test_parallel_options_preserve_results(self, mesh):
        """Generated code for any option combo must compute the same jac
        (directives are semantic no-ops in the sequential runtime)."""
        base, _, _ = run_generated_fortran(mesh)
        program = build_fun3d_program()
        from repro.fortranlib import FortranRuntime
        from repro.fun3d.legacy_src import full_legacy_source
        from repro.fun3d.validation import set_fun3d_inputs

        for opts in (Fun3DOptions(parallel_edgejp=True, no_reallocation=True),
                     Fun3DOptions(parallel_cell_loop=True),
                     Fun3DOptions(True, True, True, True, True)):
            plan = make_fun3d_plan(program, opts, threads=16)
            src = FortranGenerator(plan).generate_module()
            rt = FortranRuntime()
            rt.load(full_legacy_source(mesh)["fun3d_modules.f90"])
            rt.load(src)
            set_fun3d_inputs(rt, mesh)
            rt.call("edgejp", [mesh.ncell, mesh.nnz])
            jac = rt.modules["fun3d_jac_mod"].variables["jac"].store
            assert np.array_equal(jac, base), opts.label
