"""Every library function in the registry, evaluated through all three
executable back-ends (IR interpreter, generated Python, generated FORTRAN)
and compared against its NumPy implementation."""

import numpy as np
import pytest

from repro.codegen.fortran import FortranGenerator
from repro.core import GlafBuilder, T_REAL8, T_VOID, lib, ref
from repro.core.libfuncs import REGISTRY
from repro.fortranlib import FortranRuntime
from repro.glafexec import ExecutionContext, GeneratedModule, Interpreter
from repro.optimize import make_plan

# Scalar sample arguments per function (chosen inside every domain).
SCALAR_CASES = {
    "ABS": (-2.5,), "SQRT": (6.25,), "EXP": (0.7,), "LOG": (3.1,),
    "ALOG": (3.1,), "ALOG10": (100.0,), "LOG10": (1000.0,),
    "SIN": (0.6,), "COS": (0.6,), "TAN": (0.4,),
    "ASIN": (0.5,), "ACOS": (0.5,), "ATAN": (1.2,), "ATAN2": (1.0, 2.0),
    "SINH": (0.8,), "COSH": (0.8,), "TANH": (0.8,),
    "MOD": (7.5, 2.0), "SIGN": (3.0, -1.0),
    "MIN": (3.0, 1.0, 2.0), "MAX": (3.0, 5.0, 2.0),
    "FLOOR": (2.7,), "CEILING": (2.2,),
    "DBLE": (1.5,),
}


def _build_scalar_program(fname: str, nargs: int):
    b = GlafBuilder("libfn")
    m = b.module("M")
    f = m.function("evalit", return_type=T_VOID)
    for k in range(nargs):
        f.param(f"x{k}", T_REAL8, intent="in")
    f.param("out", T_REAL8, dims=(1,), intent="inout")
    s = f.step()
    s.formula(ref("out", 1), lib(fname, *[ref(f"x{k}") for k in range(nargs)]))
    return b.build()


@pytest.mark.parametrize("fname", sorted(SCALAR_CASES))
def test_scalar_libfunc_three_backends(fname):
    args = SCALAR_CASES[fname]
    expected = float(REGISTRY[fname].impl(*[np.float64(a) for a in args]))
    program = _build_scalar_program(fname, len(args))

    # IR interpreter.
    ctx = ExecutionContext(program)
    out = np.zeros(1)
    Interpreter(program, ctx).call("evalit", list(args) + [out])
    assert out[0] == pytest.approx(expected, rel=1e-12), "IR"

    # Generated Python.
    ctx2 = ExecutionContext(program)
    mod = GeneratedModule(make_plan(program, "GLAF serial"), ctx2)
    out2 = np.zeros(1)
    mod.call("evalit", list(args) + [out2])
    assert out2[0] == pytest.approx(expected, rel=1e-12), "generated Python"

    # Generated FORTRAN via the runtime.
    src = FortranGenerator(make_plan(program, "GLAF serial")).generate_module()
    rt = FortranRuntime()
    rt.load(src)
    out3 = np.zeros(1)
    rt.call("evalit", list(args) + [out3])
    assert out3[0] == pytest.approx(expected, rel=1e-12), "generated FORTRAN"


ARRAY_CASES = {
    "SUM": 10.0, "MINVAL": 1.0, "MAXVAL": 4.0, "PRODUCT": 24.0, "SIZE": 4.0,
}


@pytest.mark.parametrize("fname", sorted(ARRAY_CASES))
def test_whole_array_libfunc_three_backends(fname):
    data = np.array([1.0, 2.0, 3.0, 4.0])
    expected = ARRAY_CASES[fname]

    b = GlafBuilder("libarr")
    m = b.module("M")
    f = m.function("evalit", return_type=T_VOID)
    f.param("v", T_REAL8, dims=(4,), intent="in")
    f.param("out", T_REAL8, dims=(1,), intent="inout")
    s = f.step()
    s.formula(ref("out", 1), lib(fname, ref("v")) * 1.0)
    program = b.build()

    ctx = ExecutionContext(program)
    out = np.zeros(1)
    Interpreter(program, ctx).call("evalit", [data, out])
    assert out[0] == pytest.approx(expected), "IR"

    ctx2 = ExecutionContext(program)
    mod = GeneratedModule(make_plan(program, "GLAF serial"), ctx2)
    out2 = np.zeros(1)
    mod.call("evalit", [data, out2])
    assert out2[0] == pytest.approx(expected), "generated Python"

    src = FortranGenerator(make_plan(program, "GLAF serial")).generate_module()
    rt = FortranRuntime()
    rt.load(src)
    out3 = np.zeros(1)
    rt.call("evalit", [data, out3])
    assert out3[0] == pytest.approx(expected), "generated FORTRAN"
