"""The fuzz campaign end to end: determinism, crash-resume, known-bads.

Three acceptance properties of ``repro fuzz``:

* the same seed/count/profile produce **byte-identical** JSON reports —
  the summary is timing-free by design;
* a campaign SIGKILLed mid-run finishes under ``--resume`` with a
  report digest-equal to an uninterrupted run;
* a seeded known-bad injection (a mis-parallelization fault) is caught
  by the differential/lint oracles, bucketed, minimized to a
  reproducer of at most 20 SLOC, and quarantined — never crashed over.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import observe
from repro.fuzz import run_campaign
from repro.robust import FaultSpec

REPO = Path(__file__).resolve().parents[2]
ENV = {**os.environ, "PYTHONPATH": str(REPO / "src")}

SEED, COUNT = 7, 25


def _cli(args, cwd):
    return subprocess.run(
        [sys.executable, "-m", "repro", "fuzz", *args],
        cwd=cwd, env=ENV, capture_output=True, text=True)


def _campaign_args(out, count=COUNT):
    return ["--seed", str(SEED), "--count", str(count),
            "--profile", "small", "--json", out]


class TestDeterminism:
    def test_two_runs_are_byte_identical(self, tmp_path):
        for d in ("a", "b"):
            (tmp_path / d).mkdir()
            r = _cli(_campaign_args("report.json"), tmp_path / d)
            assert r.returncode == 0, r.stderr
        a = (tmp_path / "a" / "report.json").read_bytes()
        b = (tmp_path / "b" / "report.json").read_bytes()
        assert a == b
        assert json.loads(a)["stats"]["clean"] == COUNT

    def test_summary_carries_its_own_digest(self, tmp_path):
        summary = run_campaign(SEED, 4, "small",
                               checkpoint_dir=tmp_path / "ckpt",
                               quarantine_dir=tmp_path / "q")
        doc = summary.to_json()
        from repro.numeric import content_digest

        recorded = doc.pop("content_sha256")
        assert content_digest(doc) == recorded


class TestCrashResume:
    def test_sigkill_then_resume_matches_uninterrupted(self, tmp_path):
        # More items than the acceptance campaign so the kill lands
        # mid-run reliably; the report stays timing-free either way.
        count = 80
        base = tmp_path / "base"
        base.mkdir()
        r = _cli(_campaign_args("report.json", count), base)
        assert r.returncode == 0, r.stderr
        expected = (base / "report.json").read_bytes()

        work = tmp_path / "killed"
        work.mkdir()
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "fuzz",
             *_campaign_args("report.json", count)],
            cwd=work, env=ENV,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        ckpt = work / ".repro_fuzz.ckpt"
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            done = len(list(ckpt.glob("*.ckpt.json"))) if ckpt.exists() else 0
            if done >= 5:
                break
            if proc.poll() is not None:
                pytest.fail("campaign finished before it could be killed; "
                            "raise the item count")
            time.sleep(0.005)
        proc.send_signal(signal.SIGKILL)
        proc.wait()
        assert not (work / "report.json").exists()

        r = _cli([*_campaign_args("report.json", count), "--resume"], work)
        assert r.returncode == 0, r.stderr
        assert (work / "report.json").read_bytes() == expected
        # a finished campaign clears its checkpoints
        assert not list(ckpt.glob("*.ckpt.json"))


class TestKnownBadInjection:
    @pytest.fixture(scope="class")
    def campaign(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("knownbad")
        with observe.observed() as obs:
            summary = run_campaign(
                SEED, COUNT, "small",
                checkpoint_dir=tmp / "ckpt",
                quarantine_dir=tmp / "quarantine",
                faults=[FaultSpec.parse(
                    "analysis.parallelize.verdict:misparallelize")])
        return summary, obs, tmp

    def test_fault_is_caught_and_bucketed(self, campaign):
        summary, obs, _ = campaign
        assert summary.failed > 0
        assert "lint:LintFinding:race-shared-write" in summary.buckets
        # one bucket, many failing items: deduplication worked
        assert summary.buckets["lint:LintFinding:race-shared-write"] >= \
            summary.failed
        assert obs.decisions.for_stage("fuzz:quarantine")
        assert obs.metrics.counter("fuzz.items.failed").value == \
            summary.failed

    def test_reproducer_bundle_is_minimized(self, campaign):
        summary, _, tmp = campaign
        bundles = list((tmp / "quarantine").glob("fuzz-*.json"))
        assert len(bundles) == len(summary.buckets)
        doc = json.loads(bundles[0].read_text())
        assert doc["schema"] == "repro.fuzz.reproducer/v1"
        assert doc["faults"] == [
            "analysis.parallelize.verdict:misparallelize"]
        minimized = doc["minimized"]
        assert 0 < minimized["lines"] <= 20
        assert minimized["shrink_probes"] > 0
        assert "!$OMP" in minimized["source"]
        # the minimized spec is smaller than or equal to the original
        assert len(minimized["spec"]["units"]) <= len(doc["spec"]["units"])

    def test_cli_exits_one_and_reports_the_bucket(self, tmp_path):
        r = _cli([*_campaign_args("report.json", 6), "--fault",
                  "analysis.parallelize.verdict:misparallelize"], tmp_path)
        assert r.returncode == 1, r.stdout + r.stderr
        doc = json.loads((tmp_path / "report.json").read_text())
        assert doc["stats"]["failed"] > 0
        assert doc["quarantined"]
