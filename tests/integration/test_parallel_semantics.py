"""Integration: shuffled-order validation of the parallel annotations.

Mechanizes the paper's manual OpenMP-directive verification: every loop a
plan marks PARALLEL DO must be order-independent.  The SARB and FUN3D
kernel sets pass; a deliberately mis-annotated loop fails.
"""

import numpy as np
import pytest

from repro.core import GlafBuilder, I, T_INT, T_REAL8, T_VOID, ref
from repro.fun3d import Fun3DOptions, build_fun3d_program, make_fun3d_plan, make_mesh
from repro.fun3d.kernels import context_values
from repro.fun3d.validation import mesh_sizes
from repro.glafexec import validate_parallel_semantics
from repro.optimize import make_plan
from repro.sarb import build_sarb_program, make_inputs
from repro.sarb.validation import _context_values


class TestSarb:
    def test_v0_annotations_are_order_independent(self):
        inp = make_inputs()
        program = build_sarb_program(inp.dims)
        plan = make_plan(program, "GLAF-parallel v0", threads=4)
        v = validate_parallel_semantics(
            program, plan, "entropy_interface",
            lambda: [inp.dims.nv, inp.dims.nblw, inp.dims.nbsw],
            values=_context_values(inp),
            tolerance=1e-9,
        )
        assert v.ok, v.max_abs_error
        # The serial smoothing sweep of adjust2 must NOT have been shuffled.
        assert ("adjust2", 1) not in v.shuffled_steps
        # The big reduction loops were shuffled.
        assert ("longwave_entropy_model", 4) in v.shuffled_steps

    def test_v3_annotations_are_order_independent(self):
        inp = make_inputs()
        program = build_sarb_program(inp.dims)
        plan = make_plan(program, "GLAF-parallel v3", threads=4)
        v = validate_parallel_semantics(
            program, plan, "entropy_interface",
            lambda: [inp.dims.nv, inp.dims.nblw, inp.dims.nbsw],
            values=_context_values(inp),
            tolerance=1e-9,
        )
        assert v.ok
        assert set(v.shuffled_steps) == {
            ("longwave_entropy_model", 4), ("longwave_entropy_model", 5),
        }


class TestFun3D:
    def test_all_options_order_independent(self):
        mesh = make_mesh(27)
        program = build_fun3d_program()
        plan = make_fun3d_plan(
            program, Fun3DOptions(True, True, True, True, True), threads=16)
        v = validate_parallel_semantics(
            program, plan, "edgejp",
            lambda: [mesh.ncell, mesh.nnz],
            sizes=mesh_sizes(mesh),
            values=context_values(mesh),
            seeds=(1, 7),
            tolerance=1e-9,
            # grad is per-cell scratch: its post-run value depends on which
            # cell ran last, by design (the threadprivate story).
            compare=["jac"],
        )
        assert v.ok, v.max_abs_error
        # The indirect jac updates (atomic) were exercised under shuffle.
        assert ("edge_loop", 7) in v.shuffled_steps   # edge_assembly


class TestNegativeControl:
    def test_misannotated_carried_loop_is_caught(self):
        """Force a loop-carried prefix-sum parallel: shuffling must break it."""
        b = GlafBuilder("bad")
        m = b.module("M")
        f = m.function("prefix", return_type=T_VOID)
        f.param("n", T_INT, intent="in")
        f.param("a", T_REAL8, dims=("n",), intent="inout")
        s = f.step("carried")
        s.foreach(i=(2, "n"))
        s.formula(ref("a", I("i")), ref("a", I("i")) + ref("a", I("i") - 1))
        program = b.build()
        plan = make_plan(program, "GLAF-parallel v0", threads=4,
                         force_parallel=frozenset({("prefix", 0)}))
        # The analyzer correctly refuses (so force_parallel has no effect)...
        assert not plan.step_is_parallel("prefix", 0)
        # ...so to build the negative control we override the verdict.
        plan.parallel_plan.steps[("prefix", 0)].parallel = True
        rng = np.random.default_rng(5)
        data = rng.uniform(1.0, 2.0, 16)
        v = validate_parallel_semantics(
            program, plan, "prefix",
            lambda: [16, data.copy()],
            sizes={"n": 16},
            tolerance=1e-9,
        )
        # Globals are unchanged (a is an argument) — compare directly:
        a_seq = data.copy()
        from repro.glafexec import ExecutionContext, Interpreter
        from repro.glafexec.shuffle import ShuffledInterpreter

        ctx = ExecutionContext(program, sizes={"n": 16})
        Interpreter(program, ctx).call("prefix", [16, a_seq])
        a_shuf = data.copy()
        ctx2 = ExecutionContext(program, sizes={"n": 16})
        ShuffledInterpreter(program, ctx2, plan, seed=5).call("prefix", [16, a_shuf])
        assert not np.allclose(a_seq, a_shuf)
