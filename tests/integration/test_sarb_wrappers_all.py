"""Wrapper-based unit testing for every SARB subroutine with array
arguments — the paper's per-subroutine step of §4.1.1, parametrized."""

import numpy as np
import pytest

from repro.codegen.fortran import FortranGenerator
from repro.fortranlib import FortranRuntime
from repro.integration import generate_wrapper, parse_wrapper_output
from repro.optimize import make_plan
from repro.sarb import build_sarb_program, make_inputs
from repro.sarb.legacy_src import full_legacy_source
from repro.sarb.validation import set_sarb_inputs

# (subroutine, argument sample builder).  Subroutines whose outputs are
# module variables (longwave_entropy_model etc.) are covered by the
# side-by-side suite; wrappers shine for argument-returning units.
CASES = {
    "adjust2": lambda d: {"nv": d.nv, "flux": np.linspace(0.0, 10.0, d.nv)},
    "lw_spectral_integration": lambda d: {
        "nv": d.nv, "nb": d.nblw, "flux": np.zeros(d.nv)},
    "sw_spectral_integration": lambda d: {
        "nv": d.nv, "nbs": d.nbsw, "flux": np.zeros(d.nv)},
}


@pytest.fixture(scope="module")
def setup():
    inp = make_inputs()
    program = build_sarb_program(inp.dims)
    plan = make_plan(program, "GLAF serial")
    gen = FortranGenerator(plan)
    gen_src = gen.generate_module()
    sources = full_legacy_source(inp.dims)
    return inp, program, gen, gen_src, sources


@pytest.mark.parametrize("name", sorted(CASES))
def test_wrapper_matches_legacy(name, setup):
    inp, program, gen, gen_src, sources = setup
    samples = CASES[name](inp.dims)

    # GLAF path: wrapper drives the generated subroutine.
    wrapper = generate_wrapper(program, name, samples,
                               module_name=gen.module_name)
    rt = FortranRuntime()
    rt.load(sources["fuliou_modules.f90"])
    rt.load(sources["sarb_setup.f90"])
    rt.load(gen_src)
    rt.load(wrapper)
    set_sarb_inputs(rt, inp)
    rt.run_program(f"test_{name}")
    glaf_vals = parse_wrapper_output(rt.output)

    # Legacy path: call the original directly with the same samples.
    rt2 = FortranRuntime()
    for fname in sorted(sources):
        rt2.load(sources[fname])
    set_sarb_inputs(rt2, inp)
    args = []
    arrays: dict[str, np.ndarray] = {}
    fn = program.find_function(name)
    for p in fn.params:
        v = samples[p]
        if isinstance(v, np.ndarray):
            arrays[p] = v.copy()
            args.append(arrays[p])
        else:
            args.append(v)
    rt2.call(name, args)

    for pname, arr in arrays.items():
        for i in range(arr.shape[0]):
            key = f"{pname}({i + 1})"
            assert glaf_vals[key] == pytest.approx(arr[i], rel=1e-13), (name, key)


def test_wrapper_detects_seeded_defect(setup):
    """Sanity check of the methodology: a deliberately corrupted generated
    module must FAIL the wrapper comparison."""
    inp, program, gen, gen_src, sources = setup
    broken = gen_src.replace("flux(i) * 0.5D0", "flux(i) * 0.51D0")
    assert broken != gen_src
    wrapper = generate_wrapper(program, "lw_spectral_integration",
                               CASES["lw_spectral_integration"](inp.dims),
                               module_name=gen.module_name)
    rt = FortranRuntime()
    rt.load(sources["fuliou_modules.f90"])
    rt.load(sources["sarb_setup.f90"])
    rt.load(broken)
    rt.load(wrapper)
    set_sarb_inputs(rt, inp)
    rt.run_program("test_lw_spectral_integration")
    vals = parse_wrapper_output(rt.output)

    rt2 = FortranRuntime()
    for fname in sorted(sources):
        rt2.load(sources[fname])
    set_sarb_inputs(rt2, inp)
    flux = np.zeros(inp.dims.nv)
    rt2.call("lw_spectral_integration", [inp.dims.nv, inp.dims.nblw, flux])
    mismatches = sum(
        1 for i in range(inp.dims.nv)
        if abs(vals[f"flux({i + 1})"] - flux[i]) > 1e-9
    )
    assert mismatches > 0
