"""Cross-executor equivalence: every path must produce the same answer.

The contract of ``docs/EXECUTORS.md`` is that the executor choice is a
pure speed/assurance knob — never a semantics knob.  This suite pins that
down three ways:

* both case studies (SARB, FUN3D) under ``interpreter`` / ``vectorized`` /
  ``guarded`` agree with the legacy reference implementations;
* every example project's ``main()`` still passes its own internal
  assertions with the vectorized executor serving all interpreter runs;
* synthetic kernels exercising each *unliftable* construct fall back to
  the interpreter with the demotion logged — and still produce the
  interpreter's exact answer — while liftable shapes (strides, masks,
  MIN/MAX and multi-accumulator reductions) match bitwise or within the
  documented tolerance.

Sentinel trips must also be executor-independent: a NaN produced under a
lifted step raises the same :class:`NumericIntegrityError` the scalar
interpreter raises.
"""

import importlib.util
from pathlib import Path

import numpy as np
import pytest

from repro import observe
from repro.core import GlafBuilder, I, T_INT, T_REAL8, T_VOID, lib, ref
from repro.core.builder import StepBuilder as SB
from repro.errors import NumericIntegrityError
from repro.fun3d import make_mesh
from repro.fun3d import validation as f3v
from repro.glafexec import get_executor, using_executor
from repro.sarb import make_inputs
from repro.sarb import validation as sv
from repro.sarb.validation import SARB_COMPARE_TOLERANCE, compare_outputs

EXECUTORS = ["interpreter", "vectorized", "guarded"]
EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


# ----------------------------------------------------------------------
# case studies
# ----------------------------------------------------------------------
class TestSarbEquivalence:
    @pytest.fixture(scope="class")
    def inputs(self):
        return make_inputs()

    @pytest.fixture(scope="class")
    def reference(self, inputs):
        return sv.run_reference(inputs)

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_matches_reference(self, inputs, reference, executor):
        got = sv.run_ir_interpreter(inputs, executor=executor)
        cmp = compare_outputs(got, reference)
        assert cmp.ok, cmp.detail

    def test_vectorized_matches_interpreter_and_logs_fallback(self, inputs):
        ref = sv.run_ir_interpreter(inputs, executor="interpreter")
        with observe.observed() as obs:
            got = sv.run_ir_interpreter(inputs, executor="vectorized")
        cmp = compare_outputs(got, ref, tolerance=SARB_COMPARE_TOLERANCE)
        assert cmp.ok, cmp.detail
        # The one loop-carried SARB step (adjust2 / smooth) must be
        # demoted — visibly, through the decision log.
        fb = obs.decisions.for_stage("executor:fallback")
        assert {(d.function, d.step_name) for d in fb} == {
            ("adjust2", "smooth")}
        assert all(d.verdict == "interpreter" for d in fb)

    def test_mode_selection_equals_explicit_executor(self, inputs):
        explicit = sv.run_ir_interpreter(inputs, executor="vectorized")
        with using_executor("vectorized"):
            via_mode = sv.run_ir_interpreter(inputs)
        for name in explicit:
            assert np.array_equal(explicit[name], via_mode[name])


class TestFun3dEquivalence:
    @pytest.fixture(scope="class")
    def mesh(self):
        return make_mesh(27)

    @pytest.fixture(scope="class")
    def reference(self, mesh):
        return f3v.run_reference(mesh)

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_matches_reference(self, mesh, reference, executor):
        jac = f3v.run_ir_interpreter(mesh, executor=executor)
        assert f3v.rms_check(jac, reference)

    def test_vectorized_is_bitwise_equal(self, mesh):
        # Every lifted FUN3D step is pointwise, so the array programs
        # evaluate the same FP operations in the same order per element:
        # the results are bit-identical, not merely close.
        ref = f3v.run_ir_interpreter(mesh, executor="interpreter")
        vec = f3v.run_ir_interpreter(mesh, executor="vectorized")
        assert np.array_equal(ref, vec)


# ----------------------------------------------------------------------
# example projects
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", [
    "quickstart",
    "codegen_tour",
    "sarb_integration",
    "fun3d_jacobian",
    "graph_kernel",
])
def test_example_passes_under_vectorized_executor(name, capsys):
    # The examples assert their own numerics internally; running them with
    # the vectorized executor serving every interpreter-mode run proves
    # the executor swap is invisible to them.
    spec = importlib.util.spec_from_file_location(
        name, EXAMPLES / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    with using_executor("vectorized"):
        mod.main()
    assert len(capsys.readouterr().out) > 200


# ----------------------------------------------------------------------
# synthetic kernels: liftable shapes and every fallback construct
# ----------------------------------------------------------------------
def _run_both(program, entry, make_args, sizes):
    """Run under interpreter and vectorized; return (ref, vec, run)."""
    args_ref = make_args()
    get_executor("interpreter").run(program, entry, args_ref, sizes=sizes)
    args_vec = make_args()
    run = get_executor("vectorized").run(program, entry, args_vec,
                                         sizes=sizes)
    return args_ref, args_vec, run


def _kernel(build_steps, extra_params=()):
    b = GlafBuilder("k")
    m = b.module("M")
    f = m.function("f", return_type=T_VOID)
    f.param("n", T_INT, intent="in")
    f.param("x", T_REAL8, dims=("n",), intent="in")
    f.param("y", T_REAL8, dims=("n",), intent="inout")
    for name, typ, dims, intent in extra_params:
        f.param(name, typ, dims=dims, intent=intent)
    build_steps(f)
    return b.build()


N = 31


def _x():
    rng = np.random.default_rng(7)
    return rng.standard_normal(N)


def _liftable_cases():
    def strided(f):
        s = f.step("odd")
        s.foreach(i=(1, "n", 2))
        s.formula(ref("y", I("i")), ref("x", I("i")) * 3.0)

    def masked(f):
        s = f.step("clip")
        s.foreach(i=(1, "n"))
        s.if_(ref("x", I("i")).gt(0.0),
              [SB.assign(ref("y", I("i")), ref("x", I("i")))],
              [SB.assign(ref("y", I("i")), 0.0 - ref("x", I("i")))])

    def guard_cond(f):
        s = f.step("cond")
        s.foreach(i=(1, "n"))
        s.condition(ref("x", I("i")).gt(0.5))
        s.formula(ref("y", I("i")), ref("x", I("i")) + 1.0)

    def max_reduce(f):
        s = f.step("mx")
        s.foreach(i=(1, "n"))
        s.formula(ref("y", 1), lib("MAX", ref("y", 1), ref("x", I("i"))))

    def masked_sum(f):
        # Both branches accumulate the same cell with the same op — the
        # SARB thick_thin/cloud_adjust shape, lifted as two masked sums.
        s = f.step("split")
        s.foreach(i=(1, "n"))
        s.if_(ref("x", I("i")).gt(0.0),
              [SB.assign(ref("y", 1), ref("y", 1) + ref("x", I("i")))],
              [SB.assign(ref("y", 1), ref("y", 1) + 1.0)])

    return [
        pytest.param(strided, id="strided-loop"),
        pytest.param(masked, id="if-else-mask"),
        pytest.param(guard_cond, id="step-condition"),
        pytest.param(max_reduce, id="max-reduction"),
        pytest.param(masked_sum, id="masked-same-op-reduction"),
    ]


def _fallback_cases():
    def loop_carried(f):
        s = f.step("carry")
        s.foreach(i=(2, "n"))
        s.formula(ref("y", I("i")),
                  ref("y", I("i") - 1) + ref("x", I("i")))

    def early_exit(f):
        s = f.step("find")
        s.foreach(i=(1, "n"))
        s.if_(ref("x", I("i")).gt(1.0), [SB.exit_stmt()])
        s.formula(ref("y", I("i")), ref("x", I("i")))

    def early_return(f):
        s = f.step("bail")
        s.foreach(i=(1, "n"))
        s.if_(ref("x", I("i")).gt(1.0), [SB.ret()])
        s.formula(ref("y", I("i")), ref("x", I("i")))

    return [
        pytest.param(loop_carried, id="loop-carried"),
        pytest.param(early_exit, id="exit-loop"),
        pytest.param(early_return, id="early-return"),
    ]


class TestSyntheticKernels:
    @pytest.mark.parametrize("build", _liftable_cases())
    def test_liftable_bitwise_equal_no_fallback(self, build):
        p = _kernel(build)
        x = _x()
        (_, _, y_ref), (_, _, y_vec), run = [
            *_run_both(p, "f", lambda: [N, x.copy(), np.zeros(N)],
                       {"n": N})]
        assert np.array_equal(y_ref, y_vec)
        assert run.fallbacks == ()
        assert run.executor == "vectorized"

    @pytest.mark.parametrize("build", _fallback_cases())
    def test_fallback_equal_and_logged(self, build):
        p = _kernel(build)
        x = _x()
        with observe.observed() as obs:
            (_, _, y_ref), (_, _, y_vec), run = [
                *_run_both(p, "f", lambda: [N, x.copy(), np.zeros(N)],
                           {"n": N})]
        assert np.array_equal(y_ref, y_vec)
        assert len(run.fallbacks) == 1
        assert obs.decisions.for_stage("executor:fallback")
        assert obs.metrics.counter("exec.vectorized.fallbacks").value >= 1

    def test_indirect_write_falls_back_and_matches(self):
        # Scatter through an index grid — a lift refusal at compile time.
        b = GlafBuilder("k")
        m = b.module("M")
        f = m.function("f", return_type=T_VOID)
        f.param("n", T_INT, intent="in")
        f.param("idx", T_INT, dims=("n",), intent="in")
        f.param("x", T_REAL8, dims=("n",), intent="in")
        f.param("y", T_REAL8, dims=("n",), intent="inout")
        s = f.step("scatter")
        s.foreach(i=(1, "n"))
        s.formula(ref("y", ref("idx", I("i"))), ref("x", I("i")))
        p = b.build()

        rng = np.random.default_rng(3)
        idx = rng.permutation(N).astype(np.int64) + 1
        x = _x()
        (_, _, _, y_ref), (_, _, _, y_vec), run = [
            *_run_both(p, "f",
                       lambda: [N, idx.copy(), x.copy(), np.zeros(N)],
                       {"n": N})]
        assert np.array_equal(y_ref, y_vec)
        assert len(run.fallbacks) == 1

    def test_function_call_in_loop_falls_back_and_matches(self):
        b = GlafBuilder("k")
        m = b.module("M")
        g = m.function("twice", return_type=T_REAL8)
        g.param("v", T_REAL8, intent="in")
        g.returns(ref("v") * 2.0)
        f = m.function("f", return_type=T_VOID)
        f.param("n", T_INT, intent="in")
        f.param("x", T_REAL8, dims=("n",), intent="in")
        f.param("y", T_REAL8, dims=("n",), intent="inout")
        from repro.core.expr import FuncCall
        s = f.step("apply")
        s.foreach(i=(1, "n"))
        s.formula(ref("y", I("i")), FuncCall("twice", (ref("x", I("i")),)))
        p = b.build()

        x = _x()
        (_, _, y_ref), (_, _, y_vec), run = [
            *_run_both(p, "f", lambda: [N, x.copy(), np.zeros(N)],
                       {"n": N})]
        assert np.array_equal(y_ref, y_vec)
        assert len(run.fallbacks) == 1
        assert "call" in run.fallbacks[0].reason.lower()


# ----------------------------------------------------------------------
# resource exhaustion mid-lift
# ----------------------------------------------------------------------
class TestResourceExhaustion:
    """A budget trip inside a lifted step must not corrupt state.

    ``ResourceLimitError`` is terminal for the run, but the arrays the
    caller handed in are authoritative storage: the tripping step's
    partial writes are rolled back, the step is sticky-demoted, and a
    guarded probe's writes never reach the caller's arrays at all.
    """

    def _two_step(self):
        def body(f):
            s = f.step("double")
            s.foreach(i=(1, "n"))
            s.formula(ref("y", I("i")), ref("x", I("i")) * 2.0)
            s = f.step("shift")
            s.foreach(i=(1, "n"))
            s.formula(ref("y", I("i")), ref("y", I("i")) + 1.0)
        return _kernel(body)

    def test_vectorized_trip_keeps_completed_steps_only(self):
        # Budget covers step 1 exactly; step 2's up-front charge trips.
        # y must hold step 1's result — no torn step-2 writes — and the
        # demotion must be visible in the decision log.
        from repro.errors import ResourceLimitError
        from repro.robust import ResourceLimits

        p = self._two_step()
        x = _x()
        y = np.zeros(N)
        ex = get_executor("vectorized",
                          limits=ResourceLimits(max_loop_iterations=N))
        with observe.observed() as obs:
            with pytest.raises(ResourceLimitError):
                ex.run(p, "f", [N, x, y], sizes={"n": N})
        assert np.array_equal(y, x * 2.0)
        fb = obs.decisions.for_stage("executor:fallback")
        assert [(d.step_name, d.reasons) for d in fb] == [
            ("shift", ("resource budget exhausted mid-lift",))]

    def test_guarded_probe_trip_leaves_callers_arrays_untouched(self):
        # The probe runs on copies: even though its first step completed
        # before the budget tripped, none of its writes may leak into the
        # arrays the caller (and the authoritative interpreter run)
        # owns.
        from repro.errors import ResourceLimitError
        from repro.robust import ResourceLimits

        p = self._two_step()
        x = _x()
        y = np.zeros(N)
        ex = get_executor("guarded",
                          limits=ResourceLimits(max_loop_iterations=N))
        with pytest.raises(ResourceLimitError):
            ex.run(p, "f", [N, x, y], sizes={"n": N})
        assert np.array_equal(y, np.zeros(N))

    def test_mid_write_trip_rolls_back_and_sticky_demotes(self, monkeypatch):
        # Simulate the wall-clock case: the budget trips after the lift
        # has already written part of the grid.  The grid is *live* on
        # step entry (read-modify-write), so its pre-step storage must be
        # restored, and a later call on the same interpreter (fresh
        # budget) must serve the step through the scalar interpreter.
        from repro.errors import ResourceLimitError
        from repro.glafexec.context import ExecutionContext
        from repro.glafexec.vectorize import VectorizedInterpreter

        def body(f):
            s = f.step("double")
            s.foreach(i=(1, "n"))
            s.formula(ref("y", I("i")),
                      ref("y", I("i")) + ref("x", I("i")) * 2.0)
        p = _kernel(body)

        def torn(self, frame, idx, step, plan):
            self._storage(frame, "y")[...] = 123.0  # partial garbage
            raise ResourceLimitError("simulated mid-write budget trip")

        monkeypatch.setattr(VectorizedInterpreter, "_exec_lifted", torn)
        ctx = ExecutionContext(p, sizes={"n": N})
        vec = VectorizedInterpreter(p, ctx)
        x = _x()
        y = np.zeros(N)
        with pytest.raises(ResourceLimitError, match="mid-write"):
            vec.call("f", [N, x, y])
        assert np.array_equal(y, np.zeros(N))  # rolled back, not torn
        assert ("f", 0) in vec._demoted
        assert [e.reason for e in vec.fallbacks] == [
            "resource budget exhausted mid-lift"]

        # Demotion is sticky: the re-run never touches the (still
        # patched, still poisonous) lift path and produces the
        # interpreter's answer.
        vec.call("f", [N, x, y])
        assert np.array_equal(y, x * 2.0)

    def test_mid_write_trip_on_dead_grid_skips_rollback(self, monkeypatch):
        # A grid the liveness proof marks dead on step entry
        # (unconditional pointwise overwrite, never read in the step)
        # carries no rollback snapshot, so a terminal mid-write trip may
        # leave it torn — same contract as a sentinel trip — and the
        # sticky-demoted re-run fully overwrites it before any read, so
        # the next call is still exactly right (docs/EXECUTORS.md).
        from repro.errors import ResourceLimitError
        from repro.glafexec.context import ExecutionContext
        from repro.glafexec.vectorize import VectorizedInterpreter, compile_step

        def body(f):
            s = f.step("double")
            s.foreach(i=(1, "n"))
            s.formula(ref("y", I("i")), ref("x", I("i")) * 2.0)
        p = _kernel(body)
        assert compile_step(
            p.find_function("f").steps[0]).snapshot_free == ("y",)

        def torn(self, frame, idx, step, plan):
            self._storage(frame, "y")[...] = 123.0  # partial garbage
            raise ResourceLimitError("simulated mid-write budget trip")

        monkeypatch.setattr(VectorizedInterpreter, "_exec_lifted", torn)
        ctx = ExecutionContext(p, sizes={"n": N})
        vec = VectorizedInterpreter(p, ctx)
        x = _x()
        y = np.zeros(N)
        with pytest.raises(ResourceLimitError, match="mid-write"):
            vec.call("f", [N, x, y])
        # No snapshot was taken — the torn values survive the raise (the
        # runtime proof that the copy was actually elided) ...
        assert np.array_equal(y, np.full(N, 123.0))
        assert ("f", 0) in vec._demoted
        # ... and the demoted re-run overwrites every element before any
        # read, so no later computation can observe them.
        vec.call("f", [N, x, y])
        assert np.array_equal(y, x * 2.0)

    def test_guarded_probe_writes_never_pollute_reference_inputs(self):
        # Accumulating kernel: if the probe shared the caller's arrays,
        # the authoritative interpreter run would start from the probe's
        # result and double-count.
        def body(f):
            s = f.step("acc")
            s.foreach(i=(1, "n"))
            s.formula(ref("y", 1), ref("y", 1) + ref("x", I("i")))
        p = _kernel(body)
        x = _x()
        y = np.zeros(N)
        get_executor("guarded").run(p, "f", [N, x, y], sizes={"n": N})
        assert np.isclose(y[0], x.sum())


# ----------------------------------------------------------------------
# sentinel parity
# ----------------------------------------------------------------------
class TestSentinelParity:
    def _program(self):
        def body(f):
            s = f.step("pw")
            s.foreach(i=(1, "n"))
            s.formula(ref("y", I("i")), ref("x", I("i")) * 2.0)
        b = GlafBuilder("s")
        m = b.module("M")
        f = m.function("f", return_type=T_VOID)
        f.param("n", T_INT, intent="in")
        f.param("x", T_REAL8, dims=("n",), intent="in")
        f.param("y", T_REAL8, dims=("n",), intent="inout")
        body(f)
        return b.build()

    @pytest.mark.parametrize("executor", ["interpreter", "vectorized"])
    def test_nan_trips_identically(self, executor):
        from repro.numeric import sentinels

        p = self._program()
        x = np.ones(5)
        x[3] = np.nan
        with sentinels():
            with pytest.raises(NumericIntegrityError) as exc:
                get_executor(executor).run(p, "f", [5, x, np.zeros(5)],
                                           sizes={"n": 5})
        assert exc.value.kind == "nan"
