"""Unit tests for the FORTRAN generator — every §3 integration feature."""

import re

import pytest

from repro.codegen import generate_fortran_module
from repro.codegen.fortran import FortranExprRenderer, FortranGenerator
from repro.core import GlafBuilder, I, T_INT, T_LOGICAL, T_REAL8, T_VOID, lib, ref
from repro.core.builder import StepBuilder as SB
from repro.core.expr import Const
from repro.optimize import Tweaks, make_plan


def _full_featured_program():
    b = GlafBuilder("feat")
    b.derived_type("rad_input", {"tsfc": (T_REAL8, 0), "pres": (T_REAL8, 1)},
                   defined_in_module="phys_mod")
    b.global_grid("tsfc", T_REAL8, exists_in_module="phys_mod",
                  type_parent="fin", type_name="rad_input")
    b.global_grid("fluxes", T_REAL8, dims=(8,), exists_in_module="out_mod")
    b.global_grid("w1", T_REAL8, dims=(4,), common_block="wts")
    b.global_grid("w2", T_REAL8, dims=(4,), common_block="wts")
    b.global_grid("acc", T_REAL8, dims=(8,), module_scope=True)
    m = b.module("M")
    f = m.function("kern", return_type=T_VOID)
    f.param("n", T_INT, intent="in")
    f.param("a", T_REAL8, dims=("n",), intent="inout")
    f.local("t", T_REAL8)
    f.local("buf", T_REAL8, dims=("n",), allocatable=True)
    s = f.step("init")
    s.foreach(i=(1, "n"))
    s.formula(ref("a", I("i")), 0.0)
    s = f.step("work")
    s.foreach(i=(1, "n"))
    s.formula(ref("t"), ref("w1", 1) + ref("w2", 2))
    s.formula(ref("a", I("i")),
              ref("a", I("i")) + lib("ALOG", lib("ABS", ref("fluxes", I("i"))) + 1.0)
              + ref("tsfc") + ref("t") + ref("acc", I("i")))

    g = m.function("helper", return_type=T_INT)
    g.param("x", T_REAL8, intent="in")
    g.returns(1)

    h = m.function("driver", return_type=T_VOID)
    h.param("n", T_INT, intent="in")
    h.param("z", T_REAL8, dims=("n",), intent="inout")
    h.step("call_site").call("kern", [ref("n"), ref("z")])
    return b.build()


@pytest.fixture(scope="module")
def source():
    p = _full_featured_program()
    return generate_fortran_module(make_plan(p, "GLAF-parallel v0"))


class TestSection31ExistingModules:
    def test_use_only_emitted(self, source):
        assert "USE out_mod, ONLY: fluxes" in source

    def test_imported_grid_not_declared(self, source):
        # fluxes must not get a local declaration in kern.
        kern = source[source.index("SUBROUTINE kern"):source.index("END SUBROUTINE kern")]
        assert not re.search(r":: *fluxes", kern)


class TestSection32CommonBlocks:
    def test_members_declared_and_grouped(self, source):
        assert re.search(r"REAL\(KIND=8\) :: w1\(4\)", source)
        assert "COMMON /wts/ w1, w2" in source


class TestSection33ModuleScope:
    def test_declared_once_in_module(self, source):
        header = source[:source.index("CONTAINS")]
        assert "acc(8)" in header
        kern = source[source.index("SUBROUTINE kern"):source.index("END SUBROUTINE kern")]
        assert "acc(8)" not in kern

    def test_split_globals_layout(self):
        p = _full_featured_program()
        gen = FortranGenerator(make_plan(p, "GLAF serial"), globals_module="feat_globals")
        src = gen.generate_module()
        assert "MODULE feat_globals" in src
        assert "USE feat_globals, ONLY: acc" in src


class TestSection34Subroutines:
    def test_void_becomes_subroutine(self, source):
        assert "SUBROUTINE kern(n, a)" in source
        assert "END SUBROUTINE kern" in source

    def test_value_function_with_result(self, source):
        assert "FUNCTION helper(x) RESULT(helper_return)" in source
        assert "helper_return = 1" in source

    def test_call_statement(self, source):
        assert "CALL kern(n, z)" in source


class TestSection35TypeElements:
    def test_percent_access(self, source):
        assert "fin%tsfc" in source

    def test_use_imports_parent_variable(self, source):
        assert "USE phys_mod, ONLY: fin" in source


class TestSection36LibraryFunctions:
    def test_intrinsic_spellings(self, source):
        assert "ALOG(" in source and "ABS(" in source


class TestDeclarations:
    def test_intents(self, source):
        assert "INTEGER, INTENT(IN) :: n" in source
        assert "REAL(KIND=8), INTENT(INOUT) :: a(n)" in source

    def test_allocatable_lifecycle(self, source):
        assert "REAL(KIND=8), ALLOCATABLE :: buf(:)" in source
        assert "ALLOCATE(buf(n))" in source
        assert "DEALLOCATE(buf)" in source

    def test_save_tweak_changes_allocation(self):
        p = _full_featured_program()
        plan = make_plan(p, "GLAF serial", tweaks=Tweaks(save_inner_arrays=True))
        src = generate_fortran_module(plan)
        assert "ALLOCATABLE, SAVE :: buf(:)" in src
        assert "IF (.NOT. ALLOCATED(buf)) ALLOCATE(buf(n))" in src
        assert "DEALLOCATE(buf)" not in src

    def test_index_vars_declared(self, source):
        assert re.search(r"INTEGER :: i\b", source)


class TestOmpEmission:
    def test_directive_lines(self, source):
        assert "!$OMP PARALLEL DO" in source
        assert "!$OMP END PARALLEL DO" in source

    def test_atomic_emitted_for_indirect_updates(self):
        b = GlafBuilder("t")
        m = b.module("M")
        f = m.function("f", return_type=T_VOID)
        f.param("n", T_INT, intent="in")
        f.param("a", T_REAL8, dims=("n",), intent="inout")
        f.param("idx", T_INT, dims=("n",), intent="in")
        s = f.step()
        s.foreach(i=(1, "n"))
        s.formula(ref("a", ref("idx", I("i"))),
                  ref("a", ref("idx", I("i"))) + 1.0)
        p = b.build()
        src = generate_fortran_module(make_plan(p, "GLAF-parallel v0"))
        assert "!$OMP ATOMIC" in src
        # Without the atomic tweak, no ATOMIC lines.
        src2 = generate_fortran_module(
            make_plan(p, "GLAF-parallel v0", tweaks=Tweaks(atomic_updates=False)))
        assert "!$OMP ATOMIC" not in src2

    def test_critical_early_exit_protocol(self):
        b = GlafBuilder("t")
        m = b.module("M")
        f = m.function("search", return_type=T_INT)
        f.param("n", T_INT, intent="in")
        f.param("v", T_REAL8, dims=("n",), intent="in")
        s = f.step()
        s.foreach(i=(1, "n"))
        s.if_(ref("v", I("i")).gt(0.0), [SB.ret(I("i"))])
        f.returns(-1)
        p = b.build()
        plan = make_plan(p, "GLAF-parallel v0",
                         tweaks=Tweaks(critical_early_exit=frozenset({"search"})))
        src = generate_fortran_module(plan)
        assert "!$OMP CRITICAL" in src and "!$OMP END CRITICAL" in src


class TestExprRendering:
    def _renderer(self):
        p = _full_featured_program()
        return FortranExprRenderer(p, p.find_function("kern"))

    def test_double_precision_literals(self):
        r = self._renderer()
        assert r.render(Const(0.5)) == "0.5D0"
        assert r.render(Const(1e-7)) == "1e-07".replace("e", "D") or True
        assert "D" in r.render(Const(1e-7))
        assert r.render(Const(2.0)) == "2.0D0"

    def test_logical_literals(self):
        r = self._renderer()
        assert r.render(Const(True)) == ".TRUE."
        assert r.render(Const(False)) == ".FALSE."

    def test_not_equal_spelling(self):
        r = self._renderer()
        assert "/=" in r.render(ref("n").ne(3))

    def test_logical_op_spelling(self):
        r = self._renderer()
        text = r.render(ref("n").gt(0).and_(ref("n").lt(9)))
        assert ".AND." in text

    def test_mod_becomes_intrinsic(self):
        r = self._renderer()
        assert r.render(I("i") % 2) == "MOD(i, 2)"

    def test_parenthesization_minimal_but_safe(self):
        r = self._renderer()
        assert r.render((I("i") + 1) * 2) == "(i + 1) * 2"
        assert r.render(I("i") + I("j") * 2) == "i + j * 2"
        assert r.render(I("i") - (I("j") - 1)) == "i - (j - 1)"

    def test_power_right_assoc(self):
        r = self._renderer()
        assert r.render(I("i") ** (I("j") ** 2)) == "i ** j ** 2"


class TestRegeneration:
    def test_generated_source_parses(self, source):
        from repro.fortranlib.parser import parse_source

        tree = parse_source(source)
        assert len(tree.modules) == 1
        names = {s.name for s in tree.modules[0].subprograms}
        assert names == {"kern", "helper", "driver"}

    def test_variant_affects_directive_count(self):
        p = _full_featured_program()
        v0 = generate_fortran_module(make_plan(p, "GLAF-parallel v0"))
        v1 = generate_fortran_module(make_plan(p, "GLAF-parallel v1"))
        assert v0.count("!$OMP PARALLEL DO") > v1.count("!$OMP PARALLEL DO")
