"""Unit tests for the performance-model substrate."""

import pytest

from repro.core import GlafBuilder, I, T_INT, T_REAL8, T_VOID, lib, ref
from repro.errors import PerfModelError
from repro.optimize import Tweaks, make_plan
from repro.perf import (
    CompilerModel,
    Cost,
    OmpCostModel,
    SimOptions,
    Simulator,
    Workload,
    amdahl_speedup,
    expr_cost,
    i5_2400,
    max_speedup,
    parallel_fraction_from_speedup,
    simulate,
    stmt_cost,
    xeon_e5_2637v4_node,
)
from repro.core.step import Assign


class TestMachine:
    def test_seconds_conversion(self):
        assert i5_2400.seconds(3.1e9) == pytest.approx(1.0)

    def test_known_specs(self):
        assert i5_2400.physical_cores == 4
        assert xeon_e5_2637v4_node.physical_cores == 8
        assert xeon_e5_2637v4_node.logical_cores == 16


class TestAmdahl:
    def test_basic(self):
        assert amdahl_speedup(0.5, 2) == pytest.approx(1 / 0.75)
        assert amdahl_speedup(1.0, 4) == pytest.approx(4.0)

    def test_overhead_lowers(self):
        assert amdahl_speedup(0.5, 4, overhead_fraction=0.1) < amdahl_speedup(0.5, 4)

    def test_inverse(self):
        s = amdahl_speedup(0.6, 4)
        assert parallel_fraction_from_speedup(s, 4) == pytest.approx(0.6)

    def test_max_speedup(self):
        assert max_speedup(0.75) == pytest.approx(4.0)
        assert max_speedup(1.0) == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            amdahl_speedup(1.5, 2)
        with pytest.raises(ValueError):
            amdahl_speedup(0.5, 0)
        with pytest.raises(ValueError):
            parallel_fraction_from_speedup(2.0, 1)


class TestOmpCostModel:
    def test_region_overhead_grows_with_team(self):
        m = OmpCostModel()
        assert m.region_overhead(8) > m.region_overhead(2)

    def test_nested_regions_cost_more(self):
        m = OmpCostModel()
        assert m.region_overhead(4, nested=True) > m.region_overhead(4)

    def test_reductions_add_cost(self):
        m = OmpCostModel()
        assert m.region_overhead(4, n_reductions=2) > m.region_overhead(4)

    def test_effective_speedup_trip_limited(self):
        m = OmpCostModel()
        useful, _ = m.effective_speedup(i5_2400, 8, trip_count=3)
        assert useful == 3

    def test_contended_oversubscription_penalized(self):
        m = OmpCostModel()
        useful_c, pen_c = m.effective_speedup(i5_2400, 8, 1000, contended=True)
        useful_s, pen_s = m.effective_speedup(i5_2400, 8, 1000, contended=False)
        assert pen_c > 1.0 and pen_s == 1.0
        assert useful_c <= i5_2400.physical_cores
        assert useful_s > useful_c

    def test_within_physical_no_penalty(self):
        m = OmpCostModel()
        useful, pen = m.effective_speedup(i5_2400, 4, 1000, contended=True)
        assert useful == 4 and pen == 1.0


class TestCostModel:
    def test_expr_cost_counts_flops_and_loads(self):
        e = ref("a", I("i")) * 2.0 + 1.0
        c = expr_cost(e)
        assert c.flops >= 2.0 and c.accesses >= 1.0

    def test_transcendental_cost_dominates(self):
        cheap = expr_cost(ref("a", I("i")) + 1.0)
        pricey = expr_cost(lib("EXP", ref("a", I("i"))))
        assert pricey.flops > 10 * cheap.flops

    def test_stmt_cost_includes_store(self):
        s = Assign(ref("a", I("i")), ref("b", I("i")))
        assert stmt_cost(s).accesses >= 2.0

    def test_cost_algebra(self):
        c = Cost(2.0, 1.0) + Cost(1.0, 1.0)
        assert c.flops == 3.0 and c.accesses == 2.0
        assert c.scaled(2.0).flops == 6.0


def _loop_program():
    b = GlafBuilder("t")
    m = b.module("M")
    f = m.function("f", return_type=T_VOID)
    f.param("n", T_INT, intent="in")
    f.param("a", T_REAL8, dims=("n",), intent="inout")
    s = f.step("init")
    s.foreach(i=(1, "n"))
    s.formula(ref("a", I("i")), 0.0)
    s = f.step("work")
    s.foreach(i=(1, "n"))
    s.formula(ref("a", I("i")), ref("a", I("i")) * 1.5 + 2.0)
    return b.build()


class TestCompilerModel:
    def test_memset_for_zero_init(self):
        p = _loop_program()
        cm = CompilerModel(i5_2400)
        step = p.find_function("f").steps[0]
        opt = cm.loop_optimization(step, 1000, under_omp=False)
        assert opt.kind == "memset" and opt.speedup > 4

    def test_simd_for_simple_loop(self):
        p = _loop_program()
        cm = CompilerModel(i5_2400)
        step = p.find_function("f").steps[1]
        opt = cm.loop_optimization(step, 1000, under_omp=False)
        assert opt.kind == "simd"

    def test_unroll_for_tiny_trip_counts(self):
        p = _loop_program()
        cm = CompilerModel(i5_2400)
        step = p.find_function("f").steps[1]
        opt = cm.loop_optimization(step, 4, under_omp=False)
        assert opt.kind == "unroll"

    def test_omp_body_not_vectorized(self):
        p = _loop_program()
        cm = CompilerModel(i5_2400)
        step = p.find_function("f").steps[1]
        opt = cm.loop_optimization(step, 1000, under_omp=True)
        assert opt.kind == "scalar" and opt.speedup == 1.0

    def test_functions_with_loops_not_inlined(self):
        p = _loop_program()
        cm = CompilerModel(i5_2400)
        assert not cm.should_inline(p.find_function("f"))


class TestSimulator:
    def test_workload_sizes_drive_trips(self):
        p = _loop_program()
        plan = make_plan(p, "GLAF serial")
        small = simulate(plan, i5_2400,
                         Workload(name="s", entry="f", sizes={"n": 100}),
                         SimOptions(threads=1))
        big = simulate(plan, i5_2400,
                       Workload(name="b", entry="f", sizes={"n": 10000}),
                       SimOptions(threads=1))
        assert big.total_cycles > 10 * small.total_cycles

    def test_missing_size_raises(self):
        p = _loop_program()
        plan = make_plan(p, "GLAF serial")
        with pytest.raises(PerfModelError, match="size"):
            simulate(plan, i5_2400, Workload(name="s", entry="f"),
                     SimOptions(threads=1))

    def test_trip_override(self):
        p = _loop_program()
        plan = make_plan(p, "GLAF serial")
        wl = Workload(name="s", entry="f", sizes={"n": 100},
                      trip_overrides={("f", 1): 5.0})
        r = simulate(plan, i5_2400, wl, SimOptions(threads=1))
        work = next(s for s in r.steps if s.step_name == "work")
        assert work.trips == 5.0

    def test_parallel_overhead_visible_on_small_loops(self):
        p = _loop_program()
        wl = Workload(name="s", entry="f", sizes={"n": 60})
        serial = simulate(make_plan(p, "GLAF serial"), i5_2400, wl,
                          SimOptions(threads=1))
        par = simulate(make_plan(p, "GLAF-parallel v0", threads=4), i5_2400, wl,
                       SimOptions(threads=4))
        assert par.total_cycles > serial.total_cycles  # OMP loses on 60 trips

    def test_parallel_wins_on_large_complex_loops(self):
        b = GlafBuilder("t")
        m = b.module("M")
        f = m.function("f", return_type=T_VOID)
        f.param("n", T_INT, intent="in")
        f.param("a", T_REAL8, dims=("n",), intent="inout")
        s = f.step("big")
        s.foreach(i=(1, "n"))
        from repro.core.builder import StepBuilder as SB

        s.if_(ref("a", I("i")).gt(0.0),
              [SB.assign(ref("a", I("i")), lib("EXP", ref("a", I("i"))))],
              [SB.assign(ref("a", I("i")), lib("ALOG", 1.0 - ref("a", I("i"))))])
        p = b.build()
        wl = Workload(name="s", entry="f", sizes={"n": 200000})
        serial = simulate(make_plan(p, "GLAF serial"), i5_2400, wl,
                          SimOptions(threads=1))
        par = simulate(make_plan(p, "GLAF-parallel v0", threads=4), i5_2400, wl,
                       SimOptions(threads=4))
        assert serial.total_cycles / par.total_cycles > 2.5

    def test_entry_calls_scale_linearly(self):
        p = _loop_program()
        plan = make_plan(p, "GLAF serial")
        one = simulate(plan, i5_2400,
                       Workload(name="s", entry="f", sizes={"n": 100}),
                       SimOptions(threads=1))
        ten = simulate(plan, i5_2400,
                       Workload(name="s", entry="f", sizes={"n": 100},
                                entry_calls=10),
                       SimOptions(threads=1))
        assert ten.total_cycles == pytest.approx(10 * one.total_cycles)

    def test_alloc_accounting(self):
        b = GlafBuilder("t")
        m = b.module("M")
        f = m.function("f", return_type=T_VOID)
        f.param("n", T_INT, intent="in")
        f.local("buf", T_REAL8, dims=(16,), allocatable=True)
        s = f.step()
        s.foreach(i=(1, "n"))
        s.formula(ref("buf", 1), 1.0)
        p = b.build()
        plan = make_plan(p, "GLAF serial")
        wl = Workload(name="s", entry="f", sizes={"n": 10})
        realloc = simulate(plan, i5_2400, wl, SimOptions(threads=1))
        saved = simulate(plan, i5_2400, wl, SimOptions(threads=1, save_arrays=True))
        assert realloc.alloc_cycles > 0
        assert saved.alloc_cycles == 0
        assert realloc.total_cycles > saved.total_cycles

    def test_throughput_cap(self):
        p = _loop_program()
        wl_uncapped = Workload(name="u", entry="f", sizes={"n": 1000000})
        wl_capped = Workload(name="c", entry="f", sizes={"n": 1000000},
                             parallel_throughput_cap=2.0)
        plan = make_plan(p, "GLAF-parallel v0", threads=4)
        r_u = simulate(plan, i5_2400, wl_uncapped, SimOptions(threads=4))
        r_c = simulate(plan, i5_2400, wl_capped, SimOptions(threads=4))
        assert r_c.total_cycles > r_u.total_cycles
