"""Unit tests for the C, OpenCL and executable-Python generators."""

import numpy as np
import pytest

from repro.codegen import (
    generate_c_source,
    generate_opencl,
    generate_python_source,
)
from repro.core import GlafBuilder, I, T_INT, T_REAL8, T_VOID, lib, ref
from repro.core.builder import StepBuilder as SB
from repro.glafexec import ExecutionContext, GeneratedModule
from repro.optimize import Tweaks, make_plan


def _program():
    b = GlafBuilder("cdemo")
    b.derived_type("rt", {"tsfc": (T_REAL8, 0)}, defined_in_module="phys_mod")
    b.global_grid("tsfc", T_REAL8, exists_in_module="phys_mod",
                  type_parent="fin", type_name="rt")
    b.global_grid("w", T_REAL8, dims=(4,), common_block="wts")
    b.global_grid("acc", T_REAL8, dims=(8,), module_scope=True)
    m = b.module("M")
    f = m.function("kern", return_type=T_VOID)
    f.param("n", T_INT, intent="in")
    f.param("a", T_REAL8, dims=("n",), intent="inout")
    f.param("m2", T_REAL8, dims=("n", 4), intent="in")
    s = f.step("init")
    s.foreach(i=(1, "n"))
    s.formula(ref("a", I("i")), 0.0)
    s = f.step("work")
    s.foreach(i=(1, "n"), j=(1, 4))
    s.formula(ref("a", I("i")),
              ref("a", I("i")) + ref("m2", I("i"), I("j")) * ref("w", I("j"))
              + lib("EXP", -ref("m2", I("i"), I("j"))) * 0.0 + ref("tsfc"))
    g = m.function("fval", return_type=T_INT)
    g.param("x", T_REAL8, intent="in")
    g.returns(2)
    return b.build()


class TestCGenerator:
    @pytest.fixture(scope="class")
    def csrc(self):
        return generate_c_source(make_plan(_program(), "GLAF-parallel v0"))

    def test_linearized_indexing(self, csrc):
        # 2-D m2(i, j) -> row-major flattened with -1 shifts.
        assert "m2[(i - 1) * (4) + (j - 1)]" in csrc

    def test_pragma_omp(self, csrc):
        assert "#pragma omp parallel for" in csrc

    def test_common_becomes_extern(self, csrc):
        assert "/* COMMON /wts/ (paper 3.2) */" in csrc
        assert "extern double w[(4)];" in csrc

    def test_module_include(self, csrc):
        assert '#include "phys_mod.h"' in csrc

    def test_type_element_dot_access(self, csrc):
        assert "fin.tsfc" in csrc

    def test_void_function_and_prototype(self, csrc):
        assert "void kern(long n, double *a, const double *m2);" in csrc

    def test_value_function_returns(self, csrc):
        assert "long fval(double x)" in csrc
        assert "return" in csrc

    def test_intrinsics_mapped(self, csrc):
        assert "exp(" in csrc

    def test_reduction_clause_lowercase(self, csrc):
        assert "reduction(+:a)" in csrc


class TestOpenCLGenerator:
    @pytest.fixture(scope="class")
    def ocl(self):
        return generate_opencl(make_plan(_program(), "GLAF-parallel v0"))

    def test_kernel_per_parallel_step(self, ocl):
        kernel_launches = [l for l in ocl.launch_plan if l.kind == "kernel"]
        assert {l.name for l in kernel_launches} == {"kern_step0", "kern_step1"}

    def test_global_id_mapping_and_guard(self, ocl):
        assert "get_global_id(0)" in ocl.kernels_source
        assert "if (!(" in ocl.kernels_source

    def test_2d_kernel_uses_two_ids(self, ocl):
        assert "get_global_id(1)" in ocl.kernels_source

    def test_buffers_recorded(self, ocl):
        k = next(l for l in ocl.launch_plan if l.name == "kern_step1")
        assert "m2" in k.buffers and "w" in k.buffers

    def test_serial_steps_stay_host_side(self):
        b = GlafBuilder("t")
        m = b.module("M")
        f = m.function("f", return_type=T_VOID)
        f.param("n", T_INT, intent="in")
        f.param("a", T_REAL8, dims=("n",), intent="inout")
        s = f.step()
        s.foreach(i=(2, "n"))
        s.formula(ref("a", I("i")), ref("a", I("i") - 1))  # carried: serial
        p = b.build()
        out = generate_opencl(make_plan(p, "GLAF-parallel v0"))
        assert all(l.kind == "host" for l in out.launch_plan)


class TestPythonGenerator:
    def test_source_compiles_and_runs(self):
        p = _program()
        ctx = ExecutionContext(
            p, sizes={},
            values={"tsfc": 1.5, "w": np.arange(1.0, 5.0),
                    "acc": np.zeros(8)})
        mod = GeneratedModule(make_plan(p, "GLAF serial"), ctx)
        a = np.zeros(3)
        m2 = np.arange(12.0).reshape(3, 4)
        mod.call("kern", [3, a, m2])
        expected = (m2 * np.arange(1.0, 5.0)).sum(axis=1) + 4 * 1.5
        assert np.allclose(a, expected)

    def test_integer_division_truncates(self):
        b = GlafBuilder("t")
        m = b.module("M")
        f = m.function("f", return_type=T_INT)
        f.param("x", T_INT, intent="in")
        f.param("y", T_INT, intent="in")
        f.returns(ref("x") / ref("y"))
        p = b.build()
        ctx = ExecutionContext(p)
        mod = GeneratedModule(make_plan(p, "GLAF serial"), ctx)
        assert mod.call("f", [7, 2]) == 3
        assert mod.call("f", [-7, 2]) == -3  # trunc toward zero, not floor

    def test_save_store_persists(self):
        b = GlafBuilder("t")
        m = b.module("M")
        f = m.function("bump", return_type=T_VOID)
        f.param("out", T_REAL8, dims=(1,), intent="inout")
        f.local("state", T_REAL8, dims=(1,), save=True)
        s = f.step()
        s.foreach(i=(1, 1))
        s.formula(ref("state", 1), ref("state", 1) + 1.0)
        s.formula(ref("out", 1), ref("state", 1))
        p = b.build()
        ctx = ExecutionContext(p)
        mod = GeneratedModule(make_plan(p, "GLAF serial"), ctx)
        out = np.zeros(1)
        mod.call("bump", [out])
        mod.call("bump", [out])
        assert out[0] == 2.0
        mod.reset_save_store()
        mod.call("bump", [out])
        assert out[0] == 1.0

    def test_scalar_out_param_by_reference(self):
        b = GlafBuilder("t")
        m = b.module("M")
        f = m.function("setx", return_type=T_VOID)
        f.param("x", T_REAL8, intent="out")
        f.step().formula(ref("x"), 42.0)
        p = b.build()
        ctx = ExecutionContext(p)
        mod = GeneratedModule(make_plan(p, "GLAF serial"), ctx)
        cell = np.zeros(())
        mod.call("setx", [cell])
        assert cell[()] == 42.0

    def test_exit_breaks_innermost(self):
        b = GlafBuilder("t")
        m = b.module("M")
        f = m.function("f", return_type=T_VOID)
        f.param("cnt", T_REAL8, dims=(1,), intent="inout")
        s = f.step()
        s.foreach(i=(1, 3), j=(1, 10))
        s.if_(ref("cnt", 1).ge(0.0), [SB.exit_stmt()])  # exit j-loop at once
        s.formula(ref("cnt", 1), ref("cnt", 1) + 1.0)
        p = b.build()
        ctx = ExecutionContext(p)
        mod = GeneratedModule(make_plan(p, "GLAF serial"), ctx)
        cnt = np.zeros(1)
        mod.call("f", [cnt])
        assert cnt[0] == 0.0  # j-loop exits immediately every i iteration

    def test_mod_semantics(self):
        b = GlafBuilder("t")
        m = b.module("M")
        f = m.function("f", return_type=T_INT)
        f.param("x", T_INT, intent="in")
        f.returns(ref("x") % 3)
        p = b.build()
        mod = GeneratedModule(make_plan(p, "GLAF serial"), ExecutionContext(p))
        assert mod.call("f", [7]) == 1
        assert mod.call("f", [-7]) == -1  # FORTRAN MOD follows dividend sign
