"""Structural tests for the case-study GLAF programs: the loop censuses the
performance study depends on must not drift."""

import pytest

from repro.analysis import analyze_program, classify_step
from repro.analysis.classify import LoopClass
from repro.fun3d import N_EDGE_TEMPS, build_fun3d_program
from repro.fun3d.kernels import fun3d_workload
from repro.sarb import SARB_SUBROUTINES, build_sarb_program, sarb_workload


class TestSarbStructure:
    @pytest.fixture(scope="class")
    def program(self):
        return build_sarb_program()

    def test_exact_table1_function_set(self, program):
        assert {fn.name for fn in program.functions()} == set(SARB_SUBROUTINES)

    def test_all_are_subroutines(self, program):
        # Paper §3.4: the case-study kernels are FORTRAN subroutines.
        assert all(fn.is_subroutine for fn in program.functions())

    def test_loop_class_census(self, program):
        census: dict[LoopClass, int] = {}
        for fn in program.functions():
            for step in fn.steps:
                cls = classify_step(step)
                census[cls] = census.get(cls, 0) + 1
        assert census[LoopClass.ZERO_INIT] == 6
        assert census[LoopClass.BROADCAST_INIT] == 2
        assert census[LoopClass.SIMPLE_DOUBLE] == 3
        assert census[LoopClass.COMPLEX] == 2      # the two large loops
        assert census[LoopClass.SIMPLE_SINGLE] >= 6

    def test_one_serial_loop(self, program):
        plan = analyze_program(program)
        serial_loops = [
            sp for sp in plan.steps.values()
            if not sp.parallel and sp.depth > 0
        ]
        assert len(serial_loops) == 1
        assert serial_loops[0].function == "adjust2"

    def test_both_complex_loops_collapse2(self, program):
        plan = analyze_program(program)
        for idx in (4, 5):
            sp = plan.get("longwave_entropy_model", idx)
            assert sp.parallel and sp.collapse == 2

    def test_workload_sizes_cover_bounds(self, program):
        wl = sarb_workload()
        assert wl.sizes == {"nv": 60, "nb": 12, "nbs": 6}
        assert wl.entry == "entropy_interface"

    def test_integration_grid_census(self, program):
        commons = program.common_blocks()
        assert set(commons) == {"entwts"}
        assert [g.name for g in commons["entwts"]] == ["wlw", "wsw", "wwin"]
        mods = program.imported_modules()
        assert set(mods) == {"fuliou_mod", "rad_output_mod"}
        type_elems = [g.name for g in program.global_grids.values()
                      if g.is_type_element]
        assert set(type_elems) == {"tsfc", "pres", "temp", "cld"}


class TestFun3DStructure:
    @pytest.fixture(scope="class")
    def program(self):
        return build_fun3d_program()

    def test_five_function_decomposition(self, program):
        assert {fn.name for fn in program.functions()} == {
            "edgejp", "cell_loop", "edge_loop", "angle_check", "ioff_search",
        }

    def test_angle_check_and_ioff_are_value_functions(self, program):
        assert not program.find_function("angle_check").is_subroutine
        assert not program.find_function("ioff_search").is_subroutine
        assert program.find_function("edgejp").is_subroutine

    def test_fifty_temporaries(self, program):
        fn = program.find_function("edge_loop")
        temps = [g for g in fn.local_grids().values()
                 if g.name.startswith("tmp") and g.allocatable]
        assert len(temps) == N_EDGE_TEMPS == 50

    def test_early_exit_functions_not_parallel_by_default(self, program):
        plan = analyze_program(program)
        assert not plan.get("angle_check", 0).parallel
        assert not plan.get("ioff_search", 0).parallel

    def test_ioff_parallel_with_critical_tweak(self, program):
        plan = analyze_program(
            program, critical_early_exit_functions={"ioff_search"})
        sp = plan.get("ioff_search", 0)
        assert sp.parallel and sp.critical_early_exit

    def test_edge_assembly_is_atomic_update(self, program):
        plan = analyze_program(program)
        sp = next(s for s in plan.for_function("edge_loop")
                  if s.step_name == "edge_assembly")
        assert sp.parallel and sp.atomic == ["jac"]

    def test_cell_sweep_sees_callee_shared_writes(self, program):
        plan = analyze_program(program)
        sp = next(s for s in plan.for_function("edgejp")
                  if s.step_name == "cell_sweep")
        assert "grad" in sp.callee_shared_writes
        assert "jac" in sp.callee_shared_writes

    def test_workload_matches_paper_scale(self, program):
        wl = fun3d_workload()
        assert wl.sizes["ncells"] == 1_000_000
        # ~10 edge-loop visits per cell (paper §4.2.2).
        from repro.fun3d.kernels import N_STAGED

        assert wl.trip_overrides[("edge_loop", N_STAGED)] == 10.0
        assert wl.parallel_throughput_cap is not None
