"""Tests for the SIMD-directive extension across back-ends."""

import pytest

from repro.codegen import generate_c_source, generate_fortran_module
from repro.core import GlafBuilder, I, T_INT, T_REAL8, T_VOID, ref
from repro.fortranlib.parser import parse_source
from repro.optimize import make_plan
from repro.perf import SimOptions, Workload, i5_2400, simulate


def _program():
    b = GlafBuilder("simd")
    m = b.module("M")
    f = m.function("f", return_type=T_VOID)
    f.param("n", T_INT, intent="in")
    f.param("a", T_REAL8, dims=("n",), intent="inout")
    f.local("s", T_REAL8)
    st = f.step("work")
    st.foreach(i=(1, "n"))
    st.formula(ref("s"), ref("s") + ref("a", I("i")) * 2.0)
    return b.build()


def _simd_plan(program):
    return make_plan(program, "GLAF serial", force_simd=frozenset({("f", 0)}))


class TestEmission:
    def test_fortran_simd_with_reduction(self):
        src = generate_fortran_module(_simd_plan(_program()))
        assert "!$OMP SIMD REDUCTION(+:s)" in src
        assert "!$OMP END SIMD" in src
        assert "!$OMP PARALLEL DO" not in src

    def test_c_simd_with_reduction(self):
        src = generate_c_source(_simd_plan(_program()))
        assert "#pragma omp simd reduction(+:s)" in src
        assert "#pragma omp parallel for" not in src

    def test_simd_suppressed_when_parallel(self):
        program = _program()
        plan = make_plan(program, "GLAF-parallel v0",
                         force_simd=frozenset({("f", 0)}))
        assert plan.step_is_parallel("f", 0)
        assert not plan.step_is_simd("f", 0)
        src = generate_fortran_module(plan)
        assert "!$OMP PARALLEL DO" in src and "!$OMP SIMD" not in src

    def test_generated_simd_fortran_reparses(self):
        src = generate_fortran_module(_simd_plan(_program()))
        tree = parse_source(src)
        assert tree.modules[0].subprograms[0].name == "f"


class TestModel:
    def test_simd_between_none_and_parallel_on_big_branchy_loop(self):
        from repro.core.builder import StepBuilder as SB
        from repro.core import lib

        b = GlafBuilder("m")
        m = b.module("M")
        f = m.function("f", return_type=T_VOID)
        f.param("n", T_INT, intent="in")
        f.param("a", T_REAL8, dims=("n",), intent="inout")
        st = f.step("branchy")
        st.foreach(i=(1, "n"))
        st.if_(ref("a", I("i")).gt(0.0),
               [SB.assign(ref("a", I("i")), lib("EXP", ref("a", I("i"))))],
               [SB.assign(ref("a", I("i")), ref("a", I("i")) * 0.5)])
        program = b.build()
        wl = Workload(name="w", entry="f", sizes={"n": 100000})

        def cycles(**kw):
            plan = make_plan(program, kw.pop("variant"), threads=4, **kw)
            return simulate(plan, i5_2400, wl, SimOptions(threads=4)).total_cycles

        none = cycles(variant="GLAF serial")
        simd = cycles(variant="GLAF serial", force_simd=frozenset({("f", 0)}))
        omp = cycles(variant="GLAF-parallel v0")
        # Masked SIMD beats scalar on a branchy loop the auto-vectorizer
        # skipped; threads beat both at this trip count.
        assert omp < simd < none

    def test_simd_never_slower_than_scalar(self):
        program = _program()
        wl = Workload(name="w", entry="f", sizes={"n": 500})
        none = simulate(make_plan(program, "GLAF serial"), i5_2400, wl,
                        SimOptions(threads=1)).total_cycles
        simd = simulate(_simd_plan(program), i5_2400, wl,
                        SimOptions(threads=1)).total_cycles
        assert simd <= none * 1.0001
