"""Unit tests for steps, statements and the programmatic GPI builder."""

import pytest

from repro.core import GlafBuilder, I, T_INT, T_REAL8, T_VOID, lib, ref
from repro.core.builder import StepBuilder
from repro.core.step import Assign, CallStmt, ExitLoop, IfStmt, Range, Return, Step
from repro.errors import BuilderError, ValidationError


class TestStepStructure:
    def test_range_validation(self):
        with pytest.raises(ValidationError):
            Range(var="not an id", start=ref("a"), end=ref("b"))

    def test_duplicate_index_vars_rejected(self):
        with pytest.raises(ValidationError):
            Step(name="s", ranges=[Range("i", 1, 3), Range("i", 1, 2)])

    def test_depth_and_index_names(self):
        s = Step(name="s", ranges=[Range("i", 1, 3), Range("j", 1, 2)])
        assert s.depth == 2
        assert s.index_names() == ("i", "j")
        assert s.is_loop

    def test_control_flow_detection(self):
        s = Step(name="s", ranges=[Range("i", 1, 3)],
                 stmts=[IfStmt(ref("x").gt(0), (Return(None),))])
        assert s.has_control_flow()
        s2 = Step(name="s", ranges=[Range("i", 1, 3)],
                  stmts=[Assign(ref("a", I("i")), 1.0)])
        assert not s2.has_control_flow()

    def test_free_index_vars(self):
        s = Step(name="s", ranges=[Range("i", 1, 3)],
                 stmts=[Assign(ref("a", I("i"), I("j")), 1.0)])
        assert s.free_index_vars() == {"j"}

    def test_called_functions_includes_expr_calls(self):
        from repro.core.expr import FuncCall

        s = Step(name="s", stmts=[
            CallStmt("sub1", (ref("x"),)),
            Assign(ref("y"), FuncCall("fn2", ())),
        ])
        assert s.called_functions() == {"sub1", "fn2"}

    def test_grids_referenced_includes_targets(self):
        s = Step(name="s", ranges=[Range("i", 1, ref("n"))],
                 stmts=[Assign(ref("out", I("i")), ref("inp", I("i")))])
        assert s.grids_referenced() == {"out", "inp", "n"}


class TestBuilder:
    def _simple(self):
        b = GlafBuilder("p")
        m = b.module("M")
        f = m.function("f", return_type=T_VOID)
        f.param("n", T_INT, intent="in")
        f.param("a", T_REAL8, dims=("n",), intent="inout")
        return b, f

    def test_build_validates(self):
        b, f = self._simple()
        s = f.step()
        s.foreach(i=(1, "n"))
        s.formula(ref("a", I("i")), 0.0)
        program = b.build()
        assert program.has_function("f")

    def test_foreach_only_once(self):
        b, f = self._simple()
        s = f.step()
        s.foreach(i=(1, "n"))
        with pytest.raises(BuilderError):
            s.foreach(j=(1, 2))

    def test_condition_only_once(self):
        b, f = self._simple()
        s = f.step()
        s.condition(ref("n").gt(0))
        with pytest.raises(BuilderError):
            s.condition(ref("n").gt(1))

    def test_if_rejects_non_statements(self):
        b, f = self._simple()
        s = f.step()
        with pytest.raises(BuilderError):
            s.if_(ref("n").gt(0), [s])  # a StepBuilder is not a Stmt

    def test_static_statement_constructors(self):
        assert isinstance(StepBuilder.ret(1), Return)
        assert isinstance(StepBuilder.exit_stmt(), ExitLoop)
        assert isinstance(StepBuilder.assign(ref("x"), 1), Assign)
        assert isinstance(StepBuilder.call_stmt("f", ()), CallStmt)
        stmt = StepBuilder.if_stmt(ref("x").gt(0), [StepBuilder.ret(1)])
        assert isinstance(stmt, IfStmt)

    def test_returns_rejected_on_subroutine(self):
        b, f = self._simple()
        with pytest.raises(BuilderError):
            f.returns(1)

    def test_duplicate_module_names(self):
        b = GlafBuilder("p")
        b.module("M")
        with pytest.raises(ValidationError):
            b.module("M")

    def test_global_scope_module_reserved(self):
        b = GlafBuilder("p")
        with pytest.raises(BuilderError):
            b.module("Global Scope")

    def test_type_element_needs_registered_type(self):
        b = GlafBuilder("p")
        with pytest.raises(BuilderError):
            b.global_grid("tsfc", T_REAL8, exists_in_module="m",
                          type_parent="fin", type_name="nope")

    def test_type_element_needs_matching_field(self):
        b = GlafBuilder("p")
        b.derived_type("rad", {"tsfc": (T_REAL8, 0)})
        with pytest.raises(BuilderError):
            b.global_grid("pres", T_REAL8, exists_in_module="m",
                          type_parent="fin", type_name="rad")

    def test_type_element_needs_type_name(self):
        b = GlafBuilder("p")
        with pytest.raises(BuilderError):
            b.global_grid("tsfc", T_REAL8, exists_in_module="m",
                          type_parent="fin")

    def test_range_triplet_form(self):
        b, f = self._simple()
        s = f.step()
        s.foreach(i=(1, "n", 2))
        assert f.fn.steps[0].ranges[0].step == ref("n").__class__("n") or True
        from repro.core.expr import Const

        assert f.fn.steps[0].ranges[0].step == Const(2)

    def test_bad_range_shape(self):
        b, f = self._simple()
        s = f.step()
        with pytest.raises(BuilderError):
            s.foreach(i=(1,))
