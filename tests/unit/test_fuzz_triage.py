"""Triage and shrinking: bucketing, bundle determinism, delta debugging.

These run entirely on synthetic specs and predicates — no pipeline
underneath — so the triage contract (one bucket per signature key,
digest-stable bundle names, schema'd atomic bundles) and the shrink
contract (same-signature-only acceptance, fixpoint minimization) are
pinned independently of what the fuzz campaign happens to find."""

import json

import pytest

from repro import observe
from repro.fuzz import (
    BUNDLE_SCHEMA,
    CodebaseSpec,
    FailureSignature,
    ItemFailure,
    StepSpec,
    Triage,
    UnitSpec,
    get_profile,
    shrink_spec,
)


def _spec():
    return CodebaseSpec(
        seed=7, index=0, profile="small", extent=12,
        units=(
            UnitSpec("k1", (StepSpec("pointwise"),
                            StepSpec("indirect-write")),
                     ("common-block",)),
            UnitSpec("k2", (StepSpec("masked"),), ()),
        ))


SIG = FailureSignature("lint", "LintFinding", "race-shared-write")


class TestSignatures:
    def test_key_includes_rule_only_when_present(self):
        assert SIG.key == "lint:LintFinding:race-shared-write"
        assert FailureSignature("parse", "DiagnosticBundle").key == \
            "parse:DiagnosticBundle"

    def test_json_round_trip(self):
        assert FailureSignature.from_json(SIG.to_json()) == SIG


class TestBuckets:
    def test_first_occurrence_is_new_then_duplicates_count(self, tmp_path):
        tri = Triage(tmp_path)
        with observe.observed() as obs:
            assert tri.bucket(SIG) is True
            assert tri.bucket(SIG) is False
            assert tri.bucket(FailureSignature("oracle",
                                               "OracleDivergence")) is True
        assert tri.buckets[SIG.key] == 2
        verdicts = [d.verdict for d in
                    obs.decisions.for_stage("fuzz:signature")]
        assert verdicts == ["new", "duplicate", "new"]


class TestQuarantine:
    def test_bundle_name_is_digest_stable_and_ignores_shrinking(
            self, tmp_path):
        tri = Triage(tmp_path)
        name = tri.bundle_name(SIG, _spec())
        assert name == tri.bundle_name(SIG, _spec())
        assert name.startswith("fuzz-") and name.endswith(".json")
        # a different fault plan identifies a different reproduction
        assert name != tri.bundle_name(
            SIG, _spec(), faults=("analysis.parallelize.verdict:misparallelize",))

    def test_bundle_document_shape(self, tmp_path):
        tri = Triage(tmp_path)
        failure = ItemFailure(SIG, "shared write y", unit="k1")
        src = "SUBROUTINE k1(n)\n! comment\n\nEND SUBROUTINE k1\n"
        path = tri.quarantine(SIG, failure, _spec(), get_profile("small"),
                              src, minimized_source=src, shrink_probes=3)
        doc = json.loads(path.read_text())
        assert doc["schema"] == BUNDLE_SCHEMA
        assert doc["signature"] == SIG.to_json()
        assert doc["failure"]["detail"] == "shared write y"
        # SLOC excludes the blank and the comment (Table-1 convention)
        assert doc["minimized"]["lines"] == 2
        assert doc["minimized"]["total_lines"] == 4
        assert doc["minimized"]["shrink_probes"] == 3
        assert tri.bundles[SIG.key] == path.name


class TestShrink:
    def test_minimizes_to_the_reproducing_kernel(self):
        probed = []

        def reproduces(spec):
            probed.append(spec)
            return any(s.kind == "indirect-write"
                       for u in spec.units for s in u.steps)

        res = shrink_spec(_spec(), reproduces)
        spec = res.spec
        assert len(spec.units) == 1
        assert [s.kind for s in spec.units[0].steps] == ["indirect-write"]
        assert spec.units[0].structures == ()
        assert spec.extent == 2            # bound-shrink floor
        assert res.probes == len(probed) > 0

    def test_raising_predicate_rejects_the_candidate(self):
        def reproduces(spec):
            if len(spec.units) < 2:
                raise RuntimeError("different failure")
            return True

        res = shrink_spec(_spec(), reproduces)
        assert len(res.spec.units) == 2    # every drop was rejected

    def test_probe_budget_is_respected(self):
        calls = []

        def reproduces(spec):
            calls.append(1)
            return True

        shrink_spec(_spec(), reproduces, max_probes=2)
        assert len(calls) == 2

    def test_never_shrinks_below_one_unit(self):
        res = shrink_spec(_spec(), lambda spec: True)
        assert len(res.spec.units) == 1
