"""Unit tests for the library-function registry (paper §3.6)."""

import numpy as np
import pytest

from repro.core import libfuncs
from repro.errors import CodegenError


class TestRegistry:
    def test_paper_named_functions_present(self):
        # §3.6 names ABS(), ALOG(), SUM() explicitly.
        for name in ("ABS", "ALOG", "SUM"):
            assert name in libfuncs.REGISTRY

    def test_get_is_case_insensitive(self):
        assert libfuncs.get("abs") is libfuncs.REGISTRY["ABS"]

    def test_unknown_function(self):
        with pytest.raises(CodegenError):
            libfuncs.get("FROBNICATE")

    def test_registry_is_extensible(self):
        f = libfuncs.LibFunc("MYFN", 1, np.abs, "MYFN", "myfn", "myfn")
        libfuncs.register(f)
        try:
            assert libfuncs.get("myfn") is f
        finally:
            del libfuncs.REGISTRY["MYFN"]

    def test_arity_checks(self):
        libfuncs.get("ABS").check_arity(1)
        with pytest.raises(CodegenError):
            libfuncs.get("ABS").check_arity(2)
        libfuncs.get("MIN").check_arity(2)
        libfuncs.get("MIN").check_arity(5)
        with pytest.raises(CodegenError):
            libfuncs.get("MIN").check_arity(1)

    def test_reduction_flags(self):
        assert libfuncs.is_reduction_func("SUM")
        assert libfuncs.is_reduction_func("minval")
        assert not libfuncs.is_reduction_func("ABS")
        assert not libfuncs.is_reduction_func("NOT_A_FUNC")


class TestSemantics:
    def test_alog_is_natural_log(self):
        assert np.isclose(libfuncs.get("ALOG").impl(np.e), 1.0)

    def test_sign_follows_fortran(self):
        sign = libfuncs.get("SIGN").impl
        assert sign(3.0, -1.0) == -3.0
        assert sign(-3.0, 2.0) == 3.0
        assert sign(3.0, 0.0) == 3.0  # FORTRAN SIGN(a, 0) = |a|

    def test_variadic_min_max(self):
        assert libfuncs.get("MIN").impl(3, 1, 2) == 1
        assert libfuncs.get("MAX").impl(3.0, 1.0, 5.0) == 5.0

    def test_int_truncates_toward_zero(self):
        f = libfuncs.get("INT").impl
        assert f(2.7) == 2
        assert f(-2.7) == -2

    def test_whole_array_reductions(self):
        a = np.array([1.0, 2.0, 3.0])
        assert libfuncs.get("SUM").impl(a) == 6.0
        assert libfuncs.get("MINVAL").impl(a) == 1.0
        assert libfuncs.get("MAXVAL").impl(a) == 3.0
        assert libfuncs.get("PRODUCT").impl(a) == 6.0
        assert libfuncs.get("SIZE").impl(a) == 3

    def test_dble_and_real_kinds(self):
        assert libfuncs.get("DBLE").impl(1).dtype == np.float64
        assert libfuncs.get("REAL").impl(1).dtype == np.float32

    def test_transcendental_costs_reflect_hardware(self):
        # EXP/LOG dominate simple arithmetic in the performance model.
        assert libfuncs.get("EXP").flop_cost > 10 * libfuncs.get("ABS").flop_cost
