"""The seeded corpus generator: deterministic, well-typed, exhaustive.

The generator is the foundation the whole ``repro fuzz`` campaign
stands on, so its contract is pinned hard: the same (seed, profile,
index) always draws the same spec, specs round-trip through JSON,
``build_program`` is a pure function of the spec, and a modest run of
the small profile exercises every step kind and every §3 integration
structure."""

import pytest

from repro.core.validate import validate_program
from repro.errors import ValidationError
from repro.fuzz import (
    PROFILES,
    STEP_KINDS,
    STRUCTURE_KINDS,
    CodebaseSpec,
    FuzzProfile,
    build_program,
    generate_codebase,
    generate_spec,
    get_profile,
)
from repro.optimize import make_plan
from repro.codegen import generate_fortran_module


class TestProfiles:
    def test_registry_has_small_and_full(self):
        assert set(PROFILES) == {"small", "full"}

    def test_get_profile_rejects_unknown_name(self):
        with pytest.raises(ValidationError, match="unknown fuzz profile"):
            get_profile("huge")

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ValidationError):
            FuzzProfile(name="bad", units=(3, 1))
        with pytest.raises(ValidationError):
            FuzzProfile(name="bad", extent=(0, 4))

    def test_small_is_bounded(self):
        small = get_profile("small")
        assert small.max_wall_seconds is not None


class TestSpecDrawing:
    def test_same_inputs_same_spec(self):
        a = generate_spec(7, "small", index=3)
        b = generate_spec(7, "small", index=3)
        assert a == b

    def test_index_and_seed_vary_the_draw(self):
        base = generate_spec(7, "small", index=0)
        assert base != generate_spec(7, "small", index=1)
        assert base != generate_spec(8, "small", index=0)

    def test_spec_respects_profile_bounds(self):
        prof = get_profile("small")
        for i in range(10):
            sp = generate_spec(11, "small", index=i)
            assert prof.extent[0] <= sp.extent <= prof.extent[1]
            assert prof.units[0] <= len(sp.units) <= prof.units[1]
            for u in sp.units:
                assert prof.steps[0] <= len(u.steps) <= prof.steps[1]
                assert all(s.kind in STEP_KINDS for s in u.steps)
                assert all(s in STRUCTURE_KINDS for s in u.structures)

    def test_json_round_trip(self):
        sp = generate_spec(7, "small", index=5)
        assert CodebaseSpec.from_json(sp.to_json()) == sp

    def test_small_profile_covers_every_kind_within_20_items(self):
        kinds, structs = set(), set()
        for i in range(20):
            sp = generate_spec(7, "small", index=i)
            for u in sp.units:
                kinds.update(s.kind for s in u.steps)
                structs.update(u.structures)
        assert kinds == set(STEP_KINDS)
        assert structs == set(STRUCTURE_KINDS)


class TestProgramRendering:
    def test_build_program_is_pure(self):
        sp = generate_spec(7, "small", index=2)
        text_a = generate_fortran_module(make_plan(build_program(sp)))
        text_b = generate_fortran_module(make_plan(build_program(sp)))
        assert text_a == text_b

    @pytest.mark.parametrize("index", range(6))
    def test_generated_programs_validate(self, index):
        cb = generate_codebase(7, "small", index=index)
        validate_program(cb.program)
        assert cb.sizes == {"n": cb.spec.extent}


class TestCrosscheck:
    """The fuzzer as a soundness oracle for the static bounds checker."""

    def test_static_claims_classify_a_literal_kernel(self):
        from repro.fuzz.runner import _static_bounds_claims

        src = """\
subroutine k1(a)
  real(kind=8), intent(inout) :: a(10)
  integer :: i
  do i = 1, 10
    a(i) = a(i) + 1.0
  end do
end subroutine k1
"""
        claim = _static_bounds_claims(src)["k1"]
        assert claim.possible == 0 and claim.unknown == 0
        assert claim.proven > 0

    def test_run_item_crosscheck_refutes_nothing_on_clean_corpus(self):
        from repro.fuzz.runner import run_item

        sp = generate_spec(7, "small", index=0)
        res = run_item(sp, "small", crosscheck=True)
        assert res.claims_refuted == 0
        assert not any(f.signature.stage == "crosscheck"
                       for f in res.failures)
        doc = res.to_json()
        assert doc["claims_proven"] == res.claims_proven
        assert doc["claims_refuted"] == 0

    def test_item_result_claims_round_trip(self):
        from repro.fuzz.runner import ItemResult

        sp = generate_spec(7, "small", index=1)
        res = ItemResult(index=1, spec=sp, claims_proven=3,
                         claims_refuted=1)
        back = ItemResult.from_json(res.to_json())
        assert back.claims_proven == 3 and back.claims_refuted == 1
