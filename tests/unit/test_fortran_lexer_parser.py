"""Unit tests for the FORTRAN lexer and parser."""

import pytest

from repro.errors import FortranSyntaxError
from repro.fortranlib.ast import (
    FAssign,
    FBin,
    FCall,
    FDecl,
    FDo,
    FDoWhile,
    FIf,
    FIndexed,
    FNum,
    FOmpDirective,
    FPrint,
    FTypeDef,
    FUn,
    FVar,
)
from repro.fortranlib.lexer import tokenize
from repro.fortranlib.parser import parse_source


class TestLexer:
    def test_basic_tokens(self):
        toks = tokenize("x = a(1) + 2.5")
        kinds = [t.kind for t in toks]
        assert kinds[:8] == ["name", "op", "name", "op", "int", "op", "op", "real"]

    def test_case_preserved_but_matchers_fold(self):
        toks = tokenize("Integer :: N")
        assert toks[0].text == "Integer"
        assert toks[0].lower() == "integer"

    def test_d_exponent_is_real(self):
        toks = tokenize("x = 1.5D-3")
        real = [t for t in toks if t.kind == "real"]
        assert real and real[0].text == "1.5D-3"

    def test_dotted_operators(self):
        toks = tokenize("a .AND. .NOT. b .OR. .TRUE.")
        texts = [(t.kind, t.text) for t in toks if t.kind in ("op", "logical")]
        assert ("op", "and") in texts and ("op", "not") in texts
        assert ("logical", "true") in texts

    def test_dotted_relational_aliases(self):
        toks = tokenize("IF (a .GT. b .and. c .le. d) x = 1")
        ops = [t.text for t in toks if t.kind == "op"]
        assert ">" in ops and "<=" in ops

    def test_string_with_doubled_quote(self):
        toks = tokenize("s = 'it''s'")
        assert any(t.kind == "string" and t.text == "it's" for t in toks)

    def test_continuation(self):
        toks = tokenize("x = 1 + &\n    2")
        newlines_before_end = [t for t in toks if t.kind == "newline"]
        # The continuation swallows the first newline.
        assert len(newlines_before_end) == 1

    def test_comment_ignored_but_omp_kept(self):
        toks = tokenize("! plain comment\n!$OMP PARALLEL DO PRIVATE(i)\n")
        omp = [t for t in toks if t.kind == "omp"]
        assert len(omp) == 1 and "PRIVATE" in omp[0].text

    def test_unterminated_string(self):
        with pytest.raises(FortranSyntaxError):
            tokenize("s = 'oops")

    def test_semicolon_separates_statements(self):
        toks = tokenize("x = 1; y = 2")
        assert sum(1 for t in toks if t.kind == "newline") >= 2


def _sub_body(src: str):
    full = f"SUBROUTINE t()\n{src}\nEND SUBROUTINE t\n"
    tree = parse_source(full)
    return tree.subprograms[0]


class TestParserDeclarations:
    def test_modern_and_legacy_styles(self):
        sub = _sub_body(
            "REAL(KIND=8), INTENT(INOUT) :: a(10)\n"
            "REAL*8 b(5, 5)\n"
            "DOUBLE PRECISION c\n"
            "INTEGER, PARAMETER :: n = 4\n"
            "LOGICAL :: flag\n"
        )
        decls = [d for d in sub.decls if isinstance(d, FDecl)]
        by_name = {e.name: (d.spec, e) for d in decls for e in d.entities}
        assert by_name["a"][0].kind == 8
        assert by_name["b"][0].kind == 8 and len(by_name["b"][1].dims) == 2
        assert by_name["c"][0].base == "real" and by_name["c"][0].kind == 8
        assert by_name["n"][1].init == FNum(4)
        assert by_name["flag"][0].base == "logical"

    def test_dimension_attribute(self):
        sub = _sub_body("REAL(KIND=8), DIMENSION(3, 3) :: m\n")
        d = next(d for d in sub.decls if isinstance(d, FDecl))
        assert len(d.entities[0].dims) == 2

    def test_deferred_shape_allocatable(self):
        sub = _sub_body("REAL(KIND=8), ALLOCATABLE, SAVE :: t(:)\n")
        d = next(d for d in sub.decls if isinstance(d, FDecl))
        assert "allocatable" in d.attrs and "save" in d.attrs
        assert d.entities[0].deferred_rank == 1

    def test_common_block(self):
        sub = _sub_body("REAL(KIND=8) :: w(4)\nCOMMON /wts/ w\n")
        from repro.fortranlib.ast import FCommon

        c = next(d for d in sub.decls if isinstance(d, FCommon))
        assert c.block == "wts" and c.names == ["w"]

    def test_type_definition_in_module(self):
        tree = parse_source(
            "MODULE m\nTYPE pt\nREAL(KIND=8) :: x\nREAL(KIND=8) :: y(3)\n"
            "END TYPE pt\nTYPE(pt) :: p\nEND MODULE m\n"
        )
        td = next(d for d in tree.modules[0].decls if isinstance(d, FTypeDef))
        assert td.name == "pt" and len(td.decls) == 2


class TestParserStatements:
    def test_do_with_step(self):
        sub = _sub_body("INTEGER :: i\nDO i = 10, 1, -1\nEND DO\n")
        do = next(s for s in sub.body if isinstance(s, FDo))
        assert isinstance(do.step, FUn)

    def test_do_while(self):
        sub = _sub_body("INTEGER :: i\ni = 0\nDO WHILE (i < 3)\ni = i + 1\nEND DO\n")
        assert any(isinstance(s, FDoWhile) for s in sub.body)

    def test_if_elseif_else(self):
        sub = _sub_body(
            "INTEGER :: x\nIF (x > 0) THEN\nx = 1\nELSE IF (x < 0) THEN\n"
            "x = 2\nELSE\nx = 3\nEND IF\n"
        )
        fi = next(s for s in sub.body if isinstance(s, FIf))
        assert len(fi.branches) == 3
        assert fi.branches[2][0] is None

    def test_one_line_if(self):
        sub = _sub_body("INTEGER :: x\nIF (x > 0) x = 0\n")
        fi = next(s for s in sub.body if isinstance(s, FIf))
        assert len(fi.branches) == 1 and len(fi.branches[0][1]) == 1

    def test_omp_sentinel_statements(self):
        sub = _sub_body(
            "INTEGER :: i\nREAL(KIND=8) :: s\n"
            "!$OMP PARALLEL DO PRIVATE(i) REDUCTION(+:s) COLLAPSE(2)\n"
            "DO i = 1, 4\ns = s + 1.0D0\nEND DO\n"
            "!$OMP END PARALLEL DO\n"
        )
        omp = next(s for s in sub.body if isinstance(s, FOmpDirective))
        assert omp.kind == "parallel_do"
        assert omp.private == ("i",)
        assert omp.reductions == (("+", "s"),)
        assert omp.collapse == 2

    def test_print_and_write(self):
        sub = _sub_body("PRINT *, 'x', 1 + 2\nWRITE(*,*) 'y'\n")
        prints = [s for s in sub.body if isinstance(s, FPrint)]
        assert len(prints) == 2

    def test_allocate_deallocate(self):
        from repro.fortranlib.ast import FAllocate, FDeallocate

        sub = _sub_body(
            "REAL(KIND=8), ALLOCATABLE :: t(:)\nALLOCATE(t(10))\nDEALLOCATE(t)\n"
        )
        assert any(isinstance(s, FAllocate) for s in sub.body)
        assert any(isinstance(s, FDeallocate) for s in sub.body)

    def test_designator_chain(self):
        sub = _sub_body("REAL(KIND=8) :: x\nx = fin%pres(3) + obj%a%b\n")
        a = next(s for s in sub.body if isinstance(s, FAssign))
        assert isinstance(a.value, FBin)

    def test_call_without_parens(self):
        sub = _sub_body("CALL doit\n")
        c = next(s for s in sub.body if isinstance(s, FCall))
        assert c.name == "doit" and c.args == ()


class TestParserExpressions:
    def _expr(self, text):
        sub = _sub_body(f"REAL(KIND=8) :: x\nx = {text}\n")
        return next(s for s in sub.body if isinstance(s, FAssign)).value

    def test_precedence(self):
        e = self._expr("1 + 2 * 3")
        assert isinstance(e, FBin) and e.op == "+"
        assert isinstance(e.right, FBin) and e.right.op == "*"

    def test_power_right_assoc(self):
        e = self._expr("2 ** 3 ** 2")
        assert e.op == "**"
        assert isinstance(e.right, FBin) and e.right.op == "**"

    def test_unary_minus(self):
        e = self._expr("-x + 1")
        assert e.op == "+" and isinstance(e.left, FUn)

    def test_comparison_and_logic(self):
        e = self._expr("x > 1 .AND. .NOT. (x < 5)")
        assert e.op == "and"

    def test_double_literal_flag(self):
        e = self._expr("1.5D0")
        assert isinstance(e, FNum) and e.is_double

    def test_function_prefix_form(self):
        tree = parse_source(
            "REAL(KIND=8) FUNCTION f(x)\nREAL(KIND=8) :: x\nf = x\nEND FUNCTION f\n"
        )
        sub = tree.subprograms[0]
        assert sub.kind == "function" and sub.result == "f"
        # prefix declaration recorded
        assert any(isinstance(d, FDecl) and d.entities[0].name == "f"
                   for d in sub.decls)

    def test_result_clause(self):
        tree = parse_source(
            "FUNCTION f(x) RESULT(r)\nREAL(KIND=8) :: x\nREAL(KIND=8) :: r\n"
            "r = x\nEND FUNCTION f\n"
        )
        assert tree.subprograms[0].result == "r"


class TestParserErrors:
    def test_garbage_top_level(self):
        with pytest.raises(FortranSyntaxError):
            parse_source("WHAT IS THIS\n")

    def test_missing_end(self):
        with pytest.raises(FortranSyntaxError):
            parse_source("SUBROUTINE t()\nx = 1\n")

    def test_implicit_other_than_none(self):
        with pytest.raises(FortranSyntaxError):
            parse_source("SUBROUTINE t()\nIMPLICIT REAL\nEND SUBROUTINE\n")
