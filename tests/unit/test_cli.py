"""Unit tests for the command-line interface."""

import json

import pytest

from repro import observe
from repro.cli import main
from repro.core.project import save_project
from repro.observe import TRACE_SCHEMA
from repro.sarb import build_sarb_program


@pytest.fixture(scope="module")
def project_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "sarb.json"
    save_project(build_sarb_program(), path)
    return str(path)


class TestCli:
    def test_variants(self, capsys):
        assert main(["variants"]) == 0
        out = capsys.readouterr().out
        assert "GLAF-parallel v3" in out
        assert "simple double loops" in out

    def test_experiments_subset(self, capsys):
        assert main(["experiments", "T2"]) == 0
        out = capsys.readouterr().out
        assert "Synoptic SARB implementations" in out

    def test_experiments_unknown_id(self, capsys):
        assert main(["experiments", "ZZ"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_experiments_sentinels_flag(self, capsys):
        from repro.numeric import sentinel_config

        assert main(["experiments", "T2", "--sentinels"]) == 0
        assert sentinel_config() is None     # restored after the run
        capsys.readouterr()

    def test_experiments_resume_from_checkpoint(self, tmp_path, capsys):
        ck = tmp_path / "ck"
        # Seed the store as a crashed sweep would have left it.
        from repro.bench import EXPERIMENTS, run_and_format
        from repro.numeric import CheckpointStore

        result, _ = run_and_format(EXPERIMENTS["T2"])
        CheckpointStore(ck).save("exp-T2", {"result": result.to_json()})
        assert main(["experiments", "T2", "--resume",
                     "--checkpoint", str(ck)]) == 0
        captured = capsys.readouterr()
        assert "resumed 1 experiment(s) from checkpoint" in captured.err
        assert "Synoptic SARB implementations" in captured.out
        assert not ck.exists()               # spent checkpoints cleared

    def test_experiments_fresh_run_clears_stale_checkpoints(self, tmp_path,
                                                            capsys):
        ck = tmp_path / "ck"
        from repro.numeric import CheckpointStore

        CheckpointStore(ck).save("exp-T2", {"result": {
            "experiment_id": "T2", "title": "stale", "headers": [],
            "rows": [], "notes": ""}})
        assert main(["experiments", "T2", "--checkpoint", str(ck)]) == 0
        captured = capsys.readouterr()
        assert "resumed" not in captured.err
        assert "stale" not in captured.out

    def test_generate_fortran(self, project_file, capsys):
        assert main(["generate", project_file]) == 0
        out = capsys.readouterr().out
        assert "MODULE glaf_sarb_mod" in out
        assert "!$OMP PARALLEL DO" in out

    def test_generate_variant_flag(self, project_file, capsys):
        assert main(["generate", project_file, "--variant", "GLAF serial"]) == 0
        assert "!$OMP" not in capsys.readouterr().out

    def test_generate_c(self, project_file, capsys):
        assert main(["generate", project_file, "--target", "c"]) == 0
        assert "#pragma omp" in capsys.readouterr().out

    def test_generate_python(self, project_file, capsys):
        assert main(["generate", project_file, "--target", "python"]) == 0
        assert "def entropy_interface(" in capsys.readouterr().out

    def test_generate_opencl(self, project_file, capsys):
        assert main(["generate", project_file, "--target", "opencl"]) == 0
        out = capsys.readouterr().out
        assert "__kernel" in out and "launch plan" in out

    def test_analyze(self, project_file, capsys):
        assert main(["analyze", project_file]) == 0
        out = capsys.readouterr().out
        assert "class=zero-init" in out
        assert "parallel=yes" in out
        assert "reason:" in out          # adjust2's carried loop

    def test_analyze_liftability(self, project_file, capsys):
        assert main(["analyze", project_file, "--liftability"]) == 0
        out = capsys.readouterr().out
        # SARB has both lifted steps and the loop-carried smooth step
        assert "lift: vectorized" in out
        assert "lift: interpreter fallback" in out

    def test_analyze_ranges(self, project_file, capsys):
        assert main(["analyze", project_file, "--ranges"]) == 0
        out = capsys.readouterr().out
        assert "ranges (generated FORTRAN, interval analysis):" in out
        assert "possible-oob=0" in out
        assert "proven=" in out

    def test_fuzz_clean_campaign_human_summary(self, tmp_path, capsys,
                                               monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["fuzz", "--seed", "7", "--count", "3",
                     "--profile", "small"]) == 0
        out = capsys.readouterr().out
        assert "fuzz campaign: seed 7, 3 codebase(s), profile small" in out
        assert "clean 3  failed 0" in out

    def test_sloc(self, project_file, capsys):
        assert main(["sloc", project_file]) == 0
        out = capsys.readouterr().out
        assert "longwave_entropy_model" in out


class TestProfileCommand:
    def test_profile_prints_tree_and_decisions(self, project_file, capsys):
        assert main(["profile", project_file]) == 0
        out = capsys.readouterr().out
        assert "-- span tree --" in out
        assert "optimize.plan" in out
        assert "analysis.parallelize" in out
        assert "codegen.fortran" in out
        # Generated FORTRAN is round-tripped through the front end, so the
        # lexer/parser stages appear in the same tree.
        assert "fortran.parse" in out
        assert "-- per-stage summary --" in out
        assert "-- parallelization decisions --" in out
        assert "[parallelize:parallel]" in out
        assert "[pruning:" in out

    def test_profile_variant_shows_pruning_reasons(self, project_file, capsys):
        assert main(["profile", project_file,
                     "--variant", "GLAF-parallel v2"]) == 0
        out = capsys.readouterr().out
        assert "prunes class simple-single" in out

    def test_profile_all_targets(self, project_file, capsys):
        assert main(["profile", project_file, "--target", "all"]) == 0
        out = capsys.readouterr().out
        for span in ("codegen.fortran", "codegen.c", "codegen.opencl",
                     "codegen.python"):
            assert span in out

    def test_profile_json_export(self, project_file, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        assert main(["profile", project_file, "--json", str(trace)]) == 0
        doc = json.loads(trace.read_text())
        assert doc["schema"] == TRACE_SCHEMA
        assert doc["meta"]["project"] == project_file
        assert doc["spans"][0]["name"] == "pipeline"
        assert doc["metrics"]["counters"]["analysis.steps"] == 26
        assert any(d["stage"] == "parallelize" for d in doc["decisions"])

    def test_profile_leaves_noop_installed(self, project_file, capsys):
        assert main(["profile", project_file]) == 0
        assert not observe.is_observing()
        capsys.readouterr()

    def test_missing_project_is_a_friendly_error(self, capsys):
        assert main(["profile", "/nonexistent/project.json"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_unknown_variant_is_a_friendly_error(self, project_file, capsys):
        assert main(["profile", project_file, "--variant", "bogus"]) == 2
        assert "unknown variant" in capsys.readouterr().err


class TestRobustnessCli:
    def test_faultcheck_sweeps_all_sites_and_exits_zero(self, capsys):
        from repro.robust import SITES

        assert main(["faultcheck"]) == 0
        out = capsys.readouterr().out
        for site in SITES:
            assert site in out
        assert "result: OK" in out

    def test_faultcheck_json_export(self, capsys, tmp_path):
        report = tmp_path / "faults.json"
        assert main(["faultcheck", "--json", str(report)]) == 0
        doc = json.loads(report.read_text())
        assert doc["schema"] == "repro.robust.faultcheck/v1"
        assert doc["ok"] is True
        capsys.readouterr()

    def test_profile_guarded_fault_shows_injection_and_fallback(
            self, project_file, capsys):
        assert main([
            "profile", project_file, "--guarded",
            "--fault", "analysis.parallelize.verdict:misparallelize:adjust2",
        ]) == 0
        out = capsys.readouterr().out
        assert "[fault:injected]" in out
        assert "[guard:serial-fallback]" in out
        assert "guard.serial_fallbacks" in out

    def test_bad_fault_spec_is_a_friendly_error(self, project_file, capsys):
        assert main(["profile", project_file, "--fault", "bogus"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "bad fault spec" in err

    def test_unknown_fault_site_is_a_friendly_error(self, project_file, capsys):
        assert main(["profile", project_file,
                     "--fault", "no.such.site:raise"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "unknown injection site" in err

    def test_glaf_error_exits_2_without_traceback(self, tmp_path, capsys):
        # A structurally invalid project surfaces as a one-line error.
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["generate", str(bad)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_guard_mode_resets_after_experiments(self, capsys):
        from repro.glafexec import guard_mode

        assert main(["experiments", "C1", "--guarded"]) == 0
        assert not guard_mode()
        capsys.readouterr()


class TestProfileFlag:
    def test_generate_profile_reports_to_stderr(self, project_file, capsys):
        assert main(["generate", project_file, "--profile"]) == 0
        captured = capsys.readouterr()
        assert "MODULE glaf_sarb_mod" in captured.out       # normal output intact
        assert "-- span tree --" in captured.err
        assert "codegen.fortran" in captured.err

    def test_generate_profile_json(self, project_file, capsys, tmp_path):
        trace = tmp_path / "gen.json"
        assert main(["generate", project_file, "--profile", str(trace)]) == 0
        doc = json.loads(trace.read_text())
        assert doc["schema"] == TRACE_SCHEMA
        assert doc["meta"] == {"command": "generate"}
        names = {s["name"] for s in doc["spans"]}
        assert "codegen.fortran" in names and "optimize.plan" in names

    def test_experiments_profile_json(self, capsys, tmp_path):
        trace = tmp_path / "exp.json"
        assert main(["experiments", "T2", "--profile", str(trace)]) == 0
        doc = json.loads(trace.read_text())
        assert doc["schema"] == TRACE_SCHEMA
        names = {s["name"] for s in doc["spans"]}
        assert "bench.experiment" in names

    def test_no_profile_records_nothing(self, project_file, capsys):
        assert main(["generate", project_file]) == 0
        assert not observe.is_observing()
        assert observe.get_metrics().snapshot()["counters"] == {}
        capsys.readouterr()


class TestBenchCli:
    @pytest.fixture(scope="class")
    def artifact(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("bench") / "BENCH_1.json"
        assert main(["bench", "record", "T2", "--repeats", "2",
                     "--out", str(path)]) == 0
        return path

    def test_record_writes_schema_versioned_artifact(self, artifact, capsys):
        doc = json.loads(artifact.read_text())
        assert doc["schema"] == "repro.bench/v1"
        assert doc["meta"]["repeats"] == 2
        assert "T2" in doc["experiments"]
        assert doc["experiments"]["T2"]["wall_s"]["n"] == 2
        assert "python" in doc["environment"]
        capsys.readouterr()

    def test_record_defaults_to_next_bench_path(self, tmp_path, capsys,
                                                monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "record", "T2", "--repeats", "1"]) == 0
        assert (tmp_path / "BENCH_1.json").exists()
        assert main(["bench", "record", "T2", "--repeats", "1"]) == 0
        assert (tmp_path / "BENCH_2.json").exists()
        capsys.readouterr()

    def test_record_unknown_id_is_a_friendly_error(self, capsys):
        assert main(["bench", "record", "ZZ"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_record_with_retries_and_checkpoint(self, tmp_path, capsys):
        out = tmp_path / "BENCH_r.json"
        ck = tmp_path / "ck"
        assert main(["bench", "record", "T2", "--repeats", "2",
                     "--out", str(out), "--checkpoint", str(ck),
                     "--retries", "1"]) == 0
        assert out.exists()
        assert not ck.exists()               # spent checkpoints cleared
        doc = json.loads(out.read_text())
        assert doc["meta"]["resumed"] == 0
        capsys.readouterr()

    def test_compare_identical_exits_zero(self, artifact, capsys):
        assert main(["bench", "compare", str(artifact), str(artifact),
                     "--fail-on-regress", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "bench compare" in out
        assert "gate: fail-on-regress 0.5% -> OK" in out

    def test_compare_regression_exits_nonzero(self, artifact, tmp_path,
                                              capsys):
        from repro.bench import stamp_digest

        doc = json.loads(artifact.read_text())
        doc["experiments"]["T2"]["wall_s"]["median"] *= 10.0
        slower = tmp_path / "BENCH_2.json"
        slower.write_text(json.dumps(stamp_digest(doc)))
        assert main(["bench", "compare", str(artifact), str(slower),
                     "--fail-on-regress", "50"]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_compare_without_threshold_reports_only(self, artifact, tmp_path,
                                                    capsys):
        from repro.bench import stamp_digest

        doc = json.loads(artifact.read_text())
        doc["experiments"]["T2"]["wall_s"]["median"] *= 10.0
        slower = tmp_path / "BENCH_3.json"
        slower.write_text(json.dumps(stamp_digest(doc)))
        assert main(["bench", "compare", str(artifact), str(slower)]) == 0
        capsys.readouterr()

    def test_compare_tampered_artifact_is_rejected(self, artifact, tmp_path,
                                                   capsys):
        # Edit a stat WITHOUT re-stamping: the digest check must catch it.
        doc = json.loads(artifact.read_text())
        doc["experiments"]["T2"]["wall_s"]["median"] *= 10.0
        tampered = tmp_path / "BENCH_9.json"
        tampered.write_text(json.dumps(doc))
        assert main(["bench", "compare", str(artifact), str(tampered)]) == 2
        err = capsys.readouterr().err
        assert "digest mismatch" in err

    def test_compare_bad_artifact_is_a_friendly_error(self, artifact,
                                                      tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "wrong/v9"}')
        assert main(["bench", "compare", str(artifact), str(bad)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "wrong/v9" in err

    def test_trend_renders_trajectory(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "record", "T2", "--repeats", "1"]) == 0
        assert main(["bench", "record", "T2", "--repeats", "1"]) == 0
        capsys.readouterr()
        assert main(["bench", "trend", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "bench trend" in out
        assert "BENCH_1.json" in out and "BENCH_2.json" in out

    def test_trend_empty_dir(self, tmp_path, capsys):
        assert main(["bench", "trend", "--dir", str(tmp_path)]) == 0
        assert "no BENCH_" in capsys.readouterr().out

    def test_experiments_json_export(self, capsys, tmp_path):
        out_file = tmp_path / "tables.json"
        assert main(["experiments", "T1", "T2", "--json", str(out_file)]) == 0
        doc = json.loads(out_file.read_text())
        assert doc["schema"] == "repro.bench.experiments/v1"
        assert [e["experiment_id"] for e in doc["experiments"]] == ["T1", "T2"]
        assert doc["experiments"][0]["headers"][0] == "subroutine"
        capsys.readouterr()

    def test_profile_chrome_export(self, project_file, capsys, tmp_path):
        chrome = tmp_path / "chrome.json"
        assert main(["profile", project_file, "--chrome", str(chrome)]) == 0
        doc = json.loads(chrome.read_text())
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert "pipeline" in names and "codegen.fortran" in names
        assert doc["otherData"]["project"] == project_file
        capsys.readouterr()


class TestLintCommand:
    def test_lint_single_level_clean(self, capsys):
        assert main(["lint", "--level", "v3", "--case", "sarb"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out
        assert "sarb @ v3" in out

    def test_lint_json_stdout(self, capsys):
        assert main(["lint", "--level", "v3", "--case", "fun3d", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.lint/v1"
        assert doc["ok"] and doc["findings"] == []

    def test_lint_json_file(self, tmp_path, capsys):
        out_file = tmp_path / "lint.json"
        assert main(["lint", "--level", "v3", "--case", "sarb",
                     "--json", str(out_file)]) == 0
        doc = json.loads(out_file.read_text())
        assert doc["ok"]
        assert "report written to" in capsys.readouterr().err

    def test_lint_selftest(self, capsys):
        assert main(["lint", "--selftest"]) == 0
        out = capsys.readouterr().out
        assert "mutant(s) caught" in out
        assert "MISSED" not in out

    def test_lint_dataflow_clean(self, capsys):
        assert main(["lint", "--level", "v0", "--case", "sarb",
                     "--dataflow"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_fuzz_crosscheck_flag(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["fuzz", "--seed", "7", "--count", "2",
                     "--profile", "small", "--crosscheck"]) == 0
        out = capsys.readouterr().out
        assert "crosscheck:" in out
        assert "refuted by the runtime" in out


class TestBatchCli:
    def _run(self, tmp_path, monkeypatch, *extra):
        monkeypatch.chdir(tmp_path)
        return main(["batch", *extra, "--retries", "0", "--no-ledger"])

    def test_healthy_corpus_exits_zero(self, tmp_path, monkeypatch, capsys):
        rc = self._run(tmp_path, monkeypatch, "fuzz:3:2",
                       "--manifest", "m.json")
        assert rc == 0
        out = capsys.readouterr().out
        assert "ok 2  failed 0  quarantined 0" in out
        assert "manifest sha256" in out
        doc = json.loads((tmp_path / "m.json").read_text())
        assert doc["schema"] == "repro.batch.manifest/v1"
        assert len(doc["items"]) == 2

    def test_poison_quarantine_exits_one(self, tmp_path, monkeypatch,
                                         capsys):
        rc = self._run(tmp_path, monkeypatch, "fuzz:3:1", "poison:crash")
        assert rc == 1
        out = capsys.readouterr().out
        assert "quarantined 1" in out
        assert "batch_quarantine/batch-" in out
        assert list((tmp_path / "batch_quarantine").glob("batch-*.json"))

    def test_json_summary(self, tmp_path, monkeypatch, capsys):
        rc = self._run(tmp_path, monkeypatch, "fuzz:3:1", "--json")
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["stats"]["ok"] == 1
        assert doc["items"][0]["status"] == "ok"
        assert doc["manifest_sha256"]

    def test_warm_cache_via_cli(self, tmp_path, monkeypatch, capsys):
        assert self._run(tmp_path, monkeypatch, "fuzz:3:2") == 0
        assert self._run(tmp_path, monkeypatch, "fuzz:3:2") == 0
        out = capsys.readouterr().out
        assert "cache: 2 hit(s), 0 miss(es)" in out

    def test_bad_input_is_usage_error(self, tmp_path, monkeypatch, capsys):
        rc = self._run(tmp_path, monkeypatch, "fuzz:banana")
        assert rc == 2
        assert "bad fuzz corpus spec" in capsys.readouterr().err

    def test_ledgered_by_default(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["batch", "fuzz:3:1", "--retries", "0",
                     "--ledger", str(tmp_path / "runs")]) == 0
        capsys.readouterr()
        record = observe.RunLedger(tmp_path / "runs").resolve("latest")
        assert record["command"] == "batch"
        assert record["checkpoint"] == {"dir": None, "resume": False}


class TestRunLedgerCli:
    """Every pipeline entry point appends a repro.run/v1 record, and the
    `repro runs` family reads it back (docs/RUN_LEDGER.md)."""

    def _entries(self, ledger_dir):
        return observe.RunLedger(ledger_dir).entries()

    @pytest.mark.parametrize("argv, command", [
        (["experiments", "T2"], "experiments"),
        (["faultcheck"], "faultcheck"),
        (["lint", "--level", "v3", "--case", "sarb"], "lint"),
    ])
    def test_entry_points_append_a_record(self, tmp_path, capsys,
                                          argv, command):
        ledger = tmp_path / "runs"
        assert main(argv + ["--ledger", str(ledger)]) == 0
        err = capsys.readouterr().err
        assert "run ledger: appended run-000001" in err
        entries = self._entries(ledger)
        assert [e["command"] for e in entries] == [command]
        record = observe.RunLedger(ledger).load("run-000001")
        assert record["schema"] == "repro.run/v1"
        assert record["outcome"] == {"status": "ok", "exit_code": 0}
        assert record["wall_s"] > 0
        assert record["stages"], "entry point recorded no stage timings"
        assert "python" in record["environment"]

    def test_generate_and_profile_append_records(self, project_file,
                                                 tmp_path, capsys):
        ledger = tmp_path / "runs"
        assert main(["generate", project_file,
                     "--ledger", str(ledger)]) == 0
        assert main(["profile", project_file,
                     "--ledger", str(ledger)]) == 0
        capsys.readouterr()
        assert [e["command"] for e in self._entries(ledger)] == [
            "generate", "profile"]
        # profile joins the ledger's observation instead of nesting its
        # own, so its pipeline spans land in the persisted record.
        record = observe.RunLedger(ledger).load("run-000002")
        assert any(s["stage"] == "pipeline" for s in record["stages"])

    def test_fuzz_and_bench_record_append_records(self, tmp_path, capsys,
                                                  monkeypatch):
        monkeypatch.chdir(tmp_path)
        ledger = tmp_path / "runs"
        assert main(["fuzz", "--count", "2",
                     "--ledger", str(ledger)]) == 0
        assert main(["bench", "record", "X1", "--repeats", "1",
                     "--out", str(tmp_path / "BENCH_1.json"),
                     "--ledger", str(ledger)]) == 0
        capsys.readouterr()
        entries = self._entries(ledger)
        assert [e["command"] for e in entries] == ["fuzz", "bench record"]
        fuzz_rec = observe.RunLedger(ledger).load("run-000001")
        assert any(s["stage"] == "fuzz" for s in fuzz_rec["stages"])
        assert fuzz_rec["checkpoint"] == {"dir": None, "resume": False}

    def test_failed_run_is_recorded_as_failed(self, tmp_path, capsys):
        ledger = tmp_path / "runs"
        assert main(["generate", str(tmp_path / "missing.json"),
                     "--ledger", str(ledger)]) == 2
        capsys.readouterr()
        record = observe.RunLedger(ledger).resolve("latest")
        assert record["outcome"] == {"status": "failed", "exit_code": 2}

    def test_no_ledger_flag_and_env_kill_switch(self, tmp_path, capsys,
                                                monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["experiments", "T2", "--no-ledger"]) == 0
        monkeypatch.setenv(observe.LEDGER_ENV, "0")
        assert main(["experiments", "T2"]) == 0
        capsys.readouterr()
        assert not (tmp_path / ".repro").exists()

    def test_env_var_redirects_the_ledger(self, tmp_path, capsys,
                                          monkeypatch):
        target = tmp_path / "envledger"
        monkeypatch.setenv(observe.LEDGER_ENV, str(target))
        assert main(["experiments", "T2"]) == 0
        capsys.readouterr()
        assert len(self._entries(target)) == 1

    def test_sample_flag_records_a_resource_series(self, tmp_path, capsys):
        ledger = tmp_path / "runs"
        assert main(["experiments", "T2", "--ledger", str(ledger),
                     "--sample", "0.01"]) == 0
        capsys.readouterr()
        record = observe.RunLedger(ledger).resolve("latest")
        assert len(record["samples"]) >= 1
        assert record["samples"][-1]["rss_mb"] > 0
        stages = [d["stage"] for d in record["decisions"]]
        assert "sample:resource" in stages

    def test_runs_list_show_diff_trend(self, tmp_path, capsys):
        ledger = tmp_path / "runs"
        for _ in range(2):
            assert main(["experiments", "T2",
                         "--ledger", str(ledger)]) == 0
        capsys.readouterr()
        assert main(["runs", "list", "--dir", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert "run-000001" in out and "run-000002" in out
        assert main(["runs", "show", "--dir", str(ledger)]) == 0
        assert "run-000002" in capsys.readouterr().out   # latest
        assert main(["runs", "diff", "run-000001", "latest",
                     "--dir", str(ledger)]) == 0
        assert "wall:" in capsys.readouterr().out
        assert main(["runs", "trend", "--dir", str(ledger)]) == 0
        assert "experiments" in capsys.readouterr().out

    def test_runs_gc(self, tmp_path, capsys):
        ledger = tmp_path / "runs"
        for _ in range(3):
            assert main(["experiments", "T2",
                         "--ledger", str(ledger)]) == 0
        assert main(["runs", "gc", "--keep", "1",
                     "--dir", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert "removed 2 run record(s)" in out
        assert [e["id"] for e in self._entries(ledger)] == ["run-000003"]

    def test_runs_export_prometheus_parses(self, tmp_path, capsys):
        ledger = tmp_path / "runs"
        assert main(["experiments", "T2", "--ledger", str(ledger)]) == 0
        capsys.readouterr()
        assert main(["runs", "export", "--prometheus",
                     "--dir", str(ledger)]) == 0
        page = capsys.readouterr().out
        families = observe.parse_prometheus(page)
        assert any(name.startswith("repro_") for name in families)

    def test_runs_export_chrome_file(self, tmp_path, capsys):
        ledger = tmp_path / "runs"
        assert main(["experiments", "T2", "--ledger", str(ledger)]) == 0
        out_file = tmp_path / "trace.json"
        assert main(["runs", "export", "--chrome", "--out", str(out_file),
                     "--dir", str(ledger)]) == 0
        capsys.readouterr()
        doc = json.loads(out_file.read_text())
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"X", "C"} <= phases

    def test_runs_html_renders_three_run_trajectory(self, tmp_path, capsys):
        ledger = tmp_path / "runs"
        for _ in range(3):
            assert main(["experiments", "T2",
                         "--ledger", str(ledger)]) == 0
        out_file = tmp_path / "dash.html"
        assert main(["runs", "html", "--out", str(out_file),
                     "--dir", str(ledger)]) == 0
        capsys.readouterr()
        html = out_file.read_text()
        assert "<svg" in html and "polyline" in html
        for rid in ("run-000001", "run-000002", "run-000003"):
            assert rid in html

    def test_runs_on_empty_ledger(self, tmp_path, capsys):
        assert main(["runs", "list", "--dir", str(tmp_path / "none")]) == 0
        assert "empty" in capsys.readouterr().out
        assert main(["runs", "show", "--dir", str(tmp_path / "none")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_runs_selftest(self, capsys):
        assert main(["runs", "selftest"]) == 0
        out = capsys.readouterr().out
        assert "runs selftest: ok" in out
        assert "FAIL" not in out
