"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.core.project import save_project
from repro.sarb import build_sarb_program


@pytest.fixture(scope="module")
def project_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "sarb.json"
    save_project(build_sarb_program(), path)
    return str(path)


class TestCli:
    def test_variants(self, capsys):
        assert main(["variants"]) == 0
        out = capsys.readouterr().out
        assert "GLAF-parallel v3" in out
        assert "simple double loops" in out

    def test_experiments_subset(self, capsys):
        assert main(["experiments", "T2"]) == 0
        out = capsys.readouterr().out
        assert "Synoptic SARB implementations" in out

    def test_experiments_unknown_id(self, capsys):
        assert main(["experiments", "ZZ"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_generate_fortran(self, project_file, capsys):
        assert main(["generate", project_file]) == 0
        out = capsys.readouterr().out
        assert "MODULE glaf_sarb_mod" in out
        assert "!$OMP PARALLEL DO" in out

    def test_generate_variant_flag(self, project_file, capsys):
        assert main(["generate", project_file, "--variant", "GLAF serial"]) == 0
        assert "!$OMP" not in capsys.readouterr().out

    def test_generate_c(self, project_file, capsys):
        assert main(["generate", project_file, "--target", "c"]) == 0
        assert "#pragma omp" in capsys.readouterr().out

    def test_generate_python(self, project_file, capsys):
        assert main(["generate", project_file, "--target", "python"]) == 0
        assert "def entropy_interface(" in capsys.readouterr().out

    def test_generate_opencl(self, project_file, capsys):
        assert main(["generate", project_file, "--target", "opencl"]) == 0
        out = capsys.readouterr().out
        assert "__kernel" in out and "launch plan" in out

    def test_analyze(self, project_file, capsys):
        assert main(["analyze", project_file]) == 0
        out = capsys.readouterr().out
        assert "class=zero-init" in out
        assert "parallel=yes" in out
        assert "reason:" in out          # adjust2's carried loop

    def test_sloc(self, project_file, capsys):
        assert main(["sloc", project_file]) == 0
        out = capsys.readouterr().out
        assert "longwave_entropy_model" in out
