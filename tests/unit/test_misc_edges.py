"""Edge-case tests across smaller surfaces: runners, splicing regexes,
figure harness sanity, and emitter guards."""

import numpy as np
import pytest

from repro.codegen.base import Emitter
from repro.core import GlafBuilder, I, T_INT, T_REAL8, T_VOID, ref
from repro.errors import CodegenError, ExecutionError, IntegrationError
from repro.glafexec import ExecutionContext, GeneratedModule
from repro.integration import LegacyCodebase, extract_unit, splice_units
from repro.optimize import make_plan


def _tiny_program():
    b = GlafBuilder("tiny")
    m = b.module("M")
    f = m.function("touch", return_type=T_VOID)
    f.param("a", T_REAL8, dims=(2,), intent="inout")
    s = f.step()
    s.foreach(i=(1, 2))
    s.formula(ref("a", I("i")), 1.0)
    return b.build()


class TestGeneratedModuleRunner:
    def test_unknown_entry(self):
        program = _tiny_program()
        mod = GeneratedModule(make_plan(program, "GLAF serial"),
                              ExecutionContext(program))
        with pytest.raises(ExecutionError, match="no function"):
            mod.call("ghost", [])

    def test_source_attached(self):
        program = _tiny_program()
        mod = GeneratedModule(make_plan(program, "GLAF serial"),
                              ExecutionContext(program))
        assert "def touch(" in mod.source


class TestEmitter:
    def test_unbalanced_dedent_guard(self):
        em = Emitter()
        with pytest.raises(CodegenError):
            em.dedent()

    def test_blank_collapses(self):
        em = Emitter()
        em.emit("x")
        em.blank()
        em.blank()
        assert em.text() == "x\n\n"


class TestSpliceEdges:
    LEGACY = """
SUBROUTINE touch(a)
  REAL(KIND=8), INTENT(INOUT) :: a(2)
  a(1) = -1.0D0
END SUBROUTINE touch

FUNCTION touchy(x) RESULT(r)
  REAL(KIND=8), INTENT(IN) :: x
  REAL(KIND=8) :: r
  r = x
END FUNCTION touchy
"""

    def test_prefix_names_not_confused(self):
        """Replacing 'touch' must not clobber 'touchy'."""
        from repro.codegen.fortran import FortranGenerator

        lc = LegacyCodebase("edge")
        lc.add_file("k.f90", self.LEGACY)
        program = _tiny_program()
        src = FortranGenerator(make_plan(program, "GLAF serial")).generate_module()
        result = splice_units(lc, src, ["touch"])
        assert "FUNCTION touchy" in result.files["k.f90"]
        assert "GLAF-generated replacement for touch" in result.files["k.f90"]

    def test_extract_is_case_insensitive(self):
        from repro.codegen.fortran import FortranGenerator

        program = _tiny_program()
        src = FortranGenerator(make_plan(program, "GLAF serial")).generate_module()
        unit = extract_unit(src, "TOUCH")
        assert "SUBROUTINE touch" in unit

    def test_splice_unknown_without_flag(self):
        lc = LegacyCodebase("edge")
        lc.add_file("k.f90", self.LEGACY)
        with pytest.raises(IntegrationError):
            splice_units(lc, "SUBROUTINE nope()\nEND SUBROUTINE nope", ["nope"])


class TestFigureHarnessSanity:
    def test_figure5_is_deterministic(self):
        from repro.sarb.perffig import figure5_rows

        assert figure5_rows() == figure5_rows()

    def test_figure7_small_scale_keeps_ordering(self):
        """The option-lattice ordering is scale-invariant down to 100k cells
        (everything is per-cell dominated)."""
        from repro.fun3d.perffig import figure7_rows

        big = {r.label: r.speedup for r in figure7_rows(1_000_000)}
        small = {r.label: r.speedup for r in figure7_rows(100_000)}
        assert (big["EdgeJP | no-realloc"] > big["serial | no-realloc"])
        assert (small["EdgeJP | no-realloc"] > small["serial | no-realloc"])
        top_big = max(
            (k for k in big if "manual" not in k), key=big.get)
        top_small = max(
            (k for k in small if "manual" not in k), key=small.get)
        assert top_big == top_small == "EdgeJP | no-realloc"

    def test_zone_model_composes_with_fig6(self):
        from repro.sarb.perffig import figure6_rows
        from repro.sarb.zones import MpiZoneModel, mpi_omp_speedup

        v3_4t = dict(figure6_rows())[4]
        model = MpiZoneModel(n_zones=18, n_ranks=4)
        combined = mpi_omp_speedup(model, v3_4t)
        assert combined > model.mpi_speedup() > 1.0
