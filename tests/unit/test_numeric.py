"""Unit tests for repro.numeric: sentinels, tolerance policies, atomic
writes, content digests, checkpoints, retry, and crash-resume."""

import json
import math

import numpy as np
import pytest

from repro.errors import (
    BenchArtifactError,
    ExecutionError,
    NumericIntegrityError,
    ResourceLimitError,
)
from repro.numeric import (
    CHECKPOINT_SCHEMA,
    POLICIES,
    AbsolutePolicy,
    CheckpointStore,
    RelativePolicy,
    RetryPolicy,
    RmsPolicy,
    SentinelConfig,
    UlpPolicy,
    atomic_write_json,
    atomic_write_text,
    canonical_json,
    check_value,
    content_digest,
    get_policy,
    max_abs_error,
    retry_call,
    sentinel_config,
    sentinels,
    set_sentinel_config,
    snapshot_max_abs_error,
    ulp_distance,
)

NAN = float("nan")
INF = float("inf")


# ----------------------------------------------------------------------
# sentinels
# ----------------------------------------------------------------------
class TestSentinelConfig:
    def test_classify_each_kind(self):
        cfg = SentinelConfig(denormal=True)
        assert cfg.classify(NAN) == "nan"
        assert cfg.classify(-INF) == "inf"
        assert cfg.classify(1e301) == "overflow"
        assert cfg.classify(1e-320) == "denormal"
        assert cfg.classify(1.5) is None
        assert cfg.classify(0.0) is None

    def test_denormal_off_by_default(self):
        assert SentinelConfig().classify(1e-320) is None

    def test_kinds_disable_individually(self):
        assert SentinelConfig(nan=False).classify(NAN) is None
        assert SentinelConfig(inf=False).classify(INF) is None
        assert SentinelConfig(overflow_threshold=None).classify(1e305) is None

    def test_overflow_threshold_is_exclusive(self):
        cfg = SentinelConfig(overflow_threshold=100.0)
        assert cfg.classify(100.0) is None
        assert cfg.classify(-100.1) == "overflow"


class TestCheckValue:
    def test_noop_without_active_config(self):
        assert sentinel_config() is None
        check_value(NAN)                     # no raise: sentinels are off

    def test_scalar_trip_carries_location(self):
        with pytest.raises(NumericIntegrityError) as ei:
            check_value(NAN, function="f", step_index=2, step_name="s2",
                        grid="g", cell=(4,), config=SentinelConfig())
        e = ei.value
        assert e.kind == "nan" and e.function == "f"
        assert e.step_index == 2 and e.grid == "g" and e.cell == (4,)
        assert "step 2 (s2)" in str(e) and "cell (4,)" in str(e)

    def test_array_trip_reports_one_based_cell(self):
        arr = np.zeros((2, 3))
        arr[1, 2] = INF
        with pytest.raises(NumericIntegrityError) as ei:
            check_value(arr, grid="g", config=SentinelConfig())
        assert ei.value.kind == "inf"
        assert ei.value.cell == (2, 3)       # FORTRAN-style 1-based

    def test_priority_nan_before_inf(self):
        arr = np.array([INF, NAN])
        with pytest.raises(NumericIntegrityError) as ei:
            check_value(arr, config=SentinelConfig())
        assert ei.value.kind == "nan"

    def test_non_floating_values_pass(self):
        check_value(np.array([1, 2, 3]), config=SentinelConfig())
        check_value("text", config=SentinelConfig())

    def test_clean_array_passes(self):
        check_value(np.linspace(0.0, 1.0, 7), config=SentinelConfig())

    def test_overflow_kind(self):
        with pytest.raises(NumericIntegrityError) as ei:
            check_value(1e305, config=SentinelConfig())
        assert ei.value.kind == "overflow"


class TestSentinelsContext:
    def test_install_and_restore(self):
        assert sentinel_config() is None
        with sentinels() as cfg:
            assert sentinel_config() is cfg
            with pytest.raises(NumericIntegrityError):
                check_value(NAN)
        assert sentinel_config() is None

    def test_nesting_inner_wins(self):
        outer = SentinelConfig(nan=False)
        inner = SentinelConfig()
        with sentinels(outer):
            check_value(NAN)                 # outer config ignores NaN
            with sentinels(inner):
                with pytest.raises(NumericIntegrityError):
                    check_value(NAN)
            assert sentinel_config() is outer

    def test_set_returns_previous(self):
        cfg = SentinelConfig()
        assert set_sentinel_config(cfg) is None
        assert set_sentinel_config(None) is cfg

    def test_trip_records_decision_and_metric(self):
        from repro.observe import observed

        with observed() as obs, sentinels():
            with pytest.raises(NumericIntegrityError):
                check_value(NAN, function="f", step_index=1, grid="g")
        events = obs.decisions.for_stage("numeric:nan")
        assert len(events) == 1
        assert events[0].verdict == "detected"
        counters = obs.metrics.snapshot()["counters"]
        assert counters["numeric.sentinel.nan"] == 1


class TestInterpreterSentinels:
    """The hooks inside both interpreters actually fire."""

    @staticmethod
    def _program():
        from repro import GlafBuilder, I, T_INT, T_REAL8, T_VOID, ref

        b = GlafBuilder("sent")
        m = b.module("Module1")
        f = m.function("scale", return_type=T_VOID)
        f.param("n", T_INT, intent="in")
        f.param("a", T_REAL8, dims=("n",), intent="inout")
        s = f.step()
        s.foreach(i=(1, "n"))
        s.formula(ref("a", I("i")), ref("a", I("i")) * 2.0)
        return b.build()

    def test_glafexec_assignment_trips(self):
        from repro.glafexec import run_interpreted

        a = np.ones(5)
        a[3] = NAN
        with sentinels():
            with pytest.raises(NumericIntegrityError) as ei:
                run_interpreted(self._program(), "scale", [5, a])
        e = ei.value
        assert e.kind == "nan" and e.function == "scale"
        assert e.grid == "a" and e.cell == (4,)   # 1-based

    def test_glafexec_clean_run_unaffected(self):
        from repro.glafexec import run_interpreted

        a = np.ones(5)
        with sentinels():
            run_interpreted(self._program(), "scale", [5, a])
        assert np.all(a == 2.0)

    def test_fortranlib_assignment_trips(self):
        from repro.fortranlib import FortranRuntime

        src = (
            "SUBROUTINE copyvec(n, a, b)\n"
            "INTEGER :: n, i\n"
            "REAL(KIND=8) :: a(n), b(n)\n"
            "DO i = 1, n\n"
            "  b(i) = a(i)\n"
            "END DO\n"
            "END SUBROUTINE copyvec\n"
        )
        rt = FortranRuntime()
        rt.load(src)
        a = np.ones(4)
        a[2] = NAN
        b = np.zeros(4)
        with sentinels():
            with pytest.raises(NumericIntegrityError) as ei:
                rt.call("copyvec", [4, a, b])
        e = ei.value
        assert e.kind == "nan"
        assert e.function.startswith("copyvec")   # unit[:line]
        assert e.grid == "b" and e.cell == (3,)


# ----------------------------------------------------------------------
# tolerance policies
# ----------------------------------------------------------------------
class TestPolicyRegistry:
    def test_registry_names(self):
        assert set(POLICIES) == {"abs", "rel", "ulp", "rms"}
        for name, cls in POLICIES.items():
            assert cls.name == name

    def test_get_policy(self):
        p = get_policy("rel", 1e-6)
        assert isinstance(p, RelativePolicy) and p.tolerance == 1e-6

    def test_unknown_policy_raises(self):
        with pytest.raises(NumericIntegrityError, match="unknown tolerance"):
            get_policy("approx", 1.0)


class TestAbsolutePolicy:
    def test_boundary_exact_tolerance_passes(self):
        # 0.0 vs 1e-9 differs by exactly the tolerance (<= passes); one
        # representable float further fails.
        p = AbsolutePolicy(1e-9)
        assert p.compare([0.0], [1e-9])
        res = p.compare([0.0], [math.nextafter(1e-9, 1.0)])
        assert not res and res.max_error > 1e-9
        assert res.first_bad == (0,)

    def test_result_is_truthy_on_agreement(self):
        res = AbsolutePolicy(0.1).compare([1.0, 2.0], [1.05, 2.0])
        assert bool(res) and res.policy == "abs"
        assert res.max_error == pytest.approx(0.05)

    def test_signed_zeros_agree(self):
        assert AbsolutePolicy(0.0).compare([-0.0], [0.0])


class TestRelativePolicy:
    def test_scale_free(self):
        p = RelativePolicy(1e-6)
        assert p.compare([1e12], [1e12 * (1 + 5e-7)])
        assert not p.compare([1e12], [1e12 * (1 + 5e-6)])

    def test_both_zero_agree(self):
        assert RelativePolicy(0.0).compare([0.0, -0.0], [-0.0, 0.0])

    def test_zero_vs_nonzero_is_full_error(self):
        res = RelativePolicy(0.5).compare([0.0], [1.0])
        assert not res and res.max_error == pytest.approx(1.0)


class TestUlpPolicy:
    def test_adjacent_floats_are_one_ulp(self):
        x = 1.0
        y = math.nextafter(x, 2.0)
        assert ulp_distance([x], [y])[0] == 1.0
        assert UlpPolicy(1).compare([x], [y])
        assert not UlpPolicy(0).compare([x], [y])

    def test_signed_zeros_are_zero_ulps(self):
        assert ulp_distance([0.0], [-0.0])[0] == 0.0

    def test_sign_crossing_does_not_overflow(self):
        d = ulp_distance([-1.0], [1.0])[0]
        assert d > 2 ** 52 and math.isfinite(d) or d == 2 ** 63

    def test_identical_is_zero(self):
        assert UlpPolicy(0).compare([3.14, -2.5], [3.14, -2.5])


class TestRmsPolicy:
    def test_paper_gate_semantics(self):
        ref = np.linspace(1.0, 2.0, 50)
        assert RmsPolicy(1e-7).compare(ref, ref.copy())
        res = RmsPolicy(1e-7).compare(ref * (1 + 1e-3), ref)
        assert not res and "rms" in res.detail

    def test_inf_poisons_the_rms_even_when_matching(self):
        a = np.array([1.0, INF])
        res = RmsPolicy(1.0).compare(a, a.copy())
        assert not res and res.max_error == INF
        assert "undefined" in res.detail


class TestSpecialValueMatrix:
    """NaN/Inf semantics shared by every policy."""

    @pytest.mark.parametrize("policy", [
        AbsolutePolicy(1e30), RelativePolicy(0.9), UlpPolicy(2 ** 60),
        RmsPolicy(1e30),
    ])
    def test_nan_fails_even_against_nan(self, policy):
        res = policy.compare([1.0, NAN], [1.0, NAN])
        assert not res
        assert res.max_error == INF
        assert "NaN" in res.detail

    def test_matching_infinities_agree_elementwise(self):
        a = [1.0, INF, -INF]
        assert AbsolutePolicy(0.0).compare(a, list(a))

    @pytest.mark.parametrize("got,ref", [
        ([INF], [1.0]), ([1.0], [INF]), ([INF], [-INF]),
    ])
    def test_infinity_mismatch_fails(self, got, ref):
        res = AbsolutePolicy(1e300).compare(got, ref)
        assert not res and res.max_error == INF
        assert "infinity mismatch" in res.detail

    @pytest.mark.parametrize("policy", list(POLICIES.values()))
    def test_empty_arrays_raise(self, policy):
        with pytest.raises(NumericIntegrityError, match="empty"):
            policy(1.0).compare([], [])

    def test_shape_mismatch_raises(self):
        with pytest.raises(NumericIntegrityError, match="shapes"):
            AbsolutePolicy(1.0).compare([1.0, 2.0], [1.0])


class TestMaxAbsError:
    def test_plain_worst_error(self):
        assert max_abs_error([1.0, 2.0], [1.0, 2.5]) == pytest.approx(0.5)

    def test_special_mismatch_is_inf_not_nan(self):
        # The silent-pass bug this exists to fix: naive max(|a-b|) is NaN
        # here, and `nan > tol` is False.
        assert max_abs_error([NAN], [NAN]) == INF
        assert max_abs_error([INF], [1.0]) == INF

    def test_all_matching_infinities_is_zero(self):
        assert max_abs_error([INF, -INF], [INF, -INF]) == 0.0

    def test_empty_raises(self):
        with pytest.raises(NumericIntegrityError):
            max_abs_error([], [])


class TestSnapshotMaxAbsError:
    def test_worst_across_grids(self):
        got = {"a": np.array([1.0]), "b": np.array([2.0])}
        ref = {"a": np.array([1.1]), "b": np.array([2.0])}
        assert snapshot_max_abs_error(got, ref) == pytest.approx(0.1)

    def test_missing_grid_is_infinite(self):
        assert snapshot_max_abs_error({}, {"a": np.ones(2)}) == INF

    def test_zero_size_grids_skipped(self):
        ref = {"empty": np.zeros(0), "a": np.ones(1)}
        got = {"a": np.ones(1)}
        assert snapshot_max_abs_error(got, ref) == 0.0

    def test_nan_in_snapshot_is_infinite(self):
        got = {"a": np.array([NAN])}
        ref = {"a": np.array([NAN])}
        assert snapshot_max_abs_error(got, ref) == INF


# ----------------------------------------------------------------------
# atomic writes + digests
# ----------------------------------------------------------------------
class TestIntegrityPrimitives:
    def test_canonical_json_is_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json(
            dict([("a", 2), ("b", 1)]))
        assert content_digest({"x": 1}) != content_digest({"x": 2})

    def test_atomic_write_text_replaces(self, tmp_path):
        p = tmp_path / "f.txt"
        p.write_text("old")
        atomic_write_text(p, "new")
        assert p.read_text() == "new"
        assert not list(tmp_path.glob(".*.tmp.*"))

    def test_atomic_write_json_roundtrip(self, tmp_path):
        doc = {"k": [1, 2, {"n": None}]}
        path = atomic_write_json(tmp_path / "d.json", doc)
        assert json.loads(path.read_text()) == doc


class TestCheckpointStore:
    def test_save_load_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        store.save("T1-rep0", {"wall": 1.5})
        assert store.load("T1-rep0") == {"wall": 1.5}
        assert store.keys() == ["T1-rep0"]

    def test_absent_key_is_none(self, tmp_path):
        assert CheckpointStore(tmp_path).load("nope") is None

    def test_unsafe_key_rejected(self, tmp_path):
        with pytest.raises(BenchArtifactError, match="filename-safe"):
            CheckpointStore(tmp_path).save("../evil", {})

    def test_truncated_checkpoint_raises(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("k", {"v": 1})
        store.path_for("k").write_text('{"schema": "repro.checkpoint/v1"')
        with pytest.raises(BenchArtifactError, match="corrupt/truncated"):
            store.load("k")

    def test_digest_tamper_detected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("k", {"v": 1})
        doc = json.loads(store.path_for("k").read_text())
        doc["payload"]["v"] = 999
        store.path_for("k").write_text(json.dumps(doc))
        with pytest.raises(BenchArtifactError, match="digest mismatch"):
            store.load("k")

    def test_discard_corrupt_deletes_and_counts(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("k", {"v": 1})
        store.path_for("k").write_text("garbage")
        assert store.load("k", discard_corrupt=True) is None
        assert store.corrupt_discarded == 1
        assert not store.path_for("k").exists()

    def test_schema_constant_matches(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("k", {})
        assert json.loads(
            store.path_for("k").read_text())["schema"] == CHECKPOINT_SCHEMA

    def test_clear_empties_the_store(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        store.save("a", {})
        store.save("b", {})
        store.clear()
        assert store.keys() == []
        assert not (tmp_path / "ck").exists()


# ----------------------------------------------------------------------
# retry
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_delays_are_deterministic(self):
        p = RetryPolicy(retries=3, seed=7)
        assert p.delays() == p.delays()
        assert p.delays() != RetryPolicy(retries=3, seed=8).delays()

    def test_exponential_envelope(self):
        p = RetryPolicy(retries=3, base_delay=1.0, multiplier=2.0,
                        jitter=0.25, seed=0)
        for k, d in enumerate(p.delays()):
            assert 0.75 * 2 ** k <= d <= 1.25 * 2 ** k

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


class TestRetryCall:
    def _flaky(self, fail_times, exc=ExecutionError):
        calls = []

        def fn():
            calls.append(1)
            if len(calls) <= fail_times:
                raise exc("transient")
            return "ok"

        return fn, calls

    def test_succeeds_after_transient_failures(self):
        fn, calls = self._flaky(2)
        slept = []
        assert retry_call(fn, policy=RetryPolicy(retries=2),
                          sleep=slept.append) == "ok"
        assert len(calls) == 3 and len(slept) == 2

    def test_gives_up_after_budgeted_retries(self):
        fn, calls = self._flaky(10)
        with pytest.raises(ExecutionError):
            retry_call(fn, policy=RetryPolicy(retries=2),
                       sleep=lambda s: None)
        assert len(calls) == 3

    @pytest.mark.parametrize("exc", [ResourceLimitError,
                                     NumericIntegrityError])
    def test_never_retries_deterministic_failures(self, exc):
        fn, calls = self._flaky(10, exc=exc)
        with pytest.raises(exc):
            retry_call(fn, policy=RetryPolicy(retries=5),
                       sleep=lambda s: None)
        assert len(calls) == 1

    def test_non_retryable_exception_propagates(self):
        def fn():
            raise KeyError("boom")

        with pytest.raises(KeyError):
            retry_call(fn, policy=RetryPolicy(retries=3),
                       sleep=lambda s: None)

    def test_wall_clock_budget_stops_backoff(self):
        from repro.robust import ResourceLimits

        fn, calls = self._flaky(10)
        now = [0.0]
        with pytest.raises(ExecutionError):
            retry_call(fn, policy=RetryPolicy(retries=5, base_delay=10.0),
                       limits=ResourceLimits(max_wall_seconds=5.0),
                       sleep=lambda s: None, clock=lambda: now[0])
        assert len(calls) == 1        # first backoff would blow the budget

    def test_retry_decisions_recorded(self):
        from repro.observe import observed

        fn, _ = self._flaky(1)
        with observed() as obs:
            retry_call(fn, policy=RetryPolicy(retries=1),
                       sleep=lambda s: None, what="bench:T1-rep0")
        events = obs.decisions.for_stage("retry")
        assert len(events) == 1 and events[0].verdict == "retried"


# ----------------------------------------------------------------------
# crash + resume through the bench recorder
# ----------------------------------------------------------------------
class TestResumeAfterCrash:
    @staticmethod
    def _clock():
        # Integer steps are binary-exact, so elapsed differences are
        # identical no matter where the clock starts — which is what lets
        # the resumed run reproduce the fresh run digest-for-digest.
        state = [0.0]

        def clock():
            state[0] += 1.0
            return state[0]

        return clock

    @staticmethod
    def _crashing_registry(crash_on_call):
        from repro.bench import Experiment, ExperimentResult

        calls = []

        def run():
            calls.append(1)
            if len(calls) == crash_on_call:
                raise ExecutionError("simulated mid-sweep crash")
            return ExperimentResult("SYN", "synthetic", ["k"], [["v"]])

        return {"SYN": Experiment("SYN", "synthetic", "-", run)}, calls

    def test_resume_skips_completed_and_matches_fresh(self, tmp_path):
        from repro.bench import record_benchmark

        registry, _ = self._crashing_registry(crash_on_call=3)
        store = CheckpointStore(tmp_path / "ck")
        with pytest.raises(ExecutionError, match="mid-sweep"):
            record_benchmark(ids=["SYN"], repeats=4, clock=self._clock(),
                             experiments=registry, checkpoints=store)
        assert store.keys() == ["SYN-rep0", "SYN-rep1"]

        registry2, calls2 = self._crashing_registry(crash_on_call=0)
        resumed = record_benchmark(ids=["SYN"], repeats=4,
                                   clock=self._clock(),
                                   experiments=registry2, checkpoints=store)
        assert resumed["meta"]["resumed"] == 2
        assert len(calls2) == 2              # only the missing repeats ran

        registry3, _ = self._crashing_registry(crash_on_call=0)
        fresh = record_benchmark(ids=["SYN"], repeats=4, clock=self._clock(),
                                 experiments=registry3)
        assert fresh["meta"]["resumed"] == 0
        assert content_digest(resumed["experiments"]) == \
            content_digest(fresh["experiments"])

    def test_corrupt_checkpoint_is_rerun(self, tmp_path):
        from repro.bench import record_benchmark

        registry, calls = self._crashing_registry(crash_on_call=0)
        store = CheckpointStore(tmp_path / "ck")
        record_benchmark(ids=["SYN"], repeats=2, clock=self._clock(),
                         experiments=registry, checkpoints=store)
        store.path_for("SYN-rep1").write_text("garbage")

        registry2, calls2 = self._crashing_registry(crash_on_call=0)
        doc = record_benchmark(ids=["SYN"], repeats=2, clock=self._clock(),
                               experiments=registry2, checkpoints=store)
        assert store.corrupt_discarded == 1
        assert doc["meta"]["resumed"] == 1   # rep0 restored, rep1 re-run
        assert len(calls2) == 1
