"""Unit tests for reduction recognition and privatization."""

import pytest

from repro.analysis.privatization import classify_privates
from repro.analysis.reductions import find_reductions
from repro.core import GlafBuilder, I, T_INT, T_REAL8, T_VOID, lib, ref
from repro.core.builder import StepBuilder as SB
from repro.core.expr import Const
from repro.core.step import Assign, IfStmt, Range, Step


def _step(stmts, loop_vars=("i",), bounds=10, condition=None):
    return Step(name="s", ranges=[Range(v, 1, bounds) for v in loop_vars],
                condition=condition, stmts=stmts)


class TestReductionPatterns:
    def test_plus_reduction(self):
        s = _step([Assign(ref("acc"), ref("acc") + ref("a", I("i")))])
        red = find_reductions(s)
        assert red["acc"].op == "+"

    def test_chained_plus_reduction(self):
        # t = t + a + b (associative flattening)
        s = _step([Assign(ref("acc"), ref("acc") + ref("a", I("i")) + 1.0)])
        assert "acc" in find_reductions(s)

    def test_minus_is_plus_reduction(self):
        s = _step([Assign(ref("acc"), ref("acc") - ref("a", I("i")))])
        assert find_reductions(s)["acc"].op == "+"

    def test_reversed_minus_not_reduction(self):
        s = _step([Assign(ref("acc"), ref("a", I("i")) - ref("acc"))])
        assert "acc" not in find_reductions(s)

    def test_times_reduction(self):
        s = _step([Assign(ref("p"), ref("p") * ref("a", I("i")))])
        assert find_reductions(s)["p"].op == "*"

    def test_min_max_reductions(self):
        s = _step([Assign(ref("lo"), lib("MIN", ref("lo"), ref("a", I("i"))))])
        assert find_reductions(s)["lo"].op == "MIN"
        s = _step([Assign(ref("hi"), lib("MAX", ref("a", I("i")), ref("hi")))])
        assert find_reductions(s)["hi"].op == "MAX"

    def test_array_element_reduction(self):
        s = _step([Assign(ref("out", I("i")),
                          ref("out", I("i")) + ref("w", I("j")))],
                  loop_vars=("i", "j"))
        red = find_reductions(s)
        assert "out" in red

    def test_multiple_reduction_variables(self):
        # The paper's multi-output loops (§4.2.1).
        s = _step([
            Assign(ref("s1"), ref("s1") + ref("a", I("i"))),
            Assign(ref("s2"), ref("s2") + ref("b", I("i"))),
        ])
        red = find_reductions(s)
        assert set(red) == {"s1", "s2"}

    def test_reductions_inside_if_branches(self):
        s = _step([IfStmt(ref("c", I("i")).gt(0),
                          (Assign(ref("acc"), ref("acc") + 1.0),),
                          (Assign(ref("acc"), ref("acc") + 2.0),))])
        assert "acc" in find_reductions(s)


class TestReductionDisqualifiers:
    def test_extra_read_disqualifies(self):
        s = _step([
            Assign(ref("acc"), ref("acc") + ref("a", I("i"))),
            Assign(ref("b", I("i")), ref("acc") * 2.0),
        ])
        assert "acc" not in find_reductions(s)

    def test_extra_write_disqualifies(self):
        s = _step([
            Assign(ref("acc"), ref("acc") + ref("a", I("i"))),
            Assign(ref("acc"), Const(0.0)),
        ])
        assert "acc" not in find_reductions(s)

    def test_mixed_operators_disqualify(self):
        s = _step([
            Assign(ref("acc"), ref("acc") + ref("a", I("i"))),
            Assign(ref("acc"), ref("acc") * 2.0),
        ])
        assert "acc" not in find_reductions(s)

    def test_self_in_rest_disqualifies(self):
        s = _step([Assign(ref("acc"), ref("acc") + ref("acc") * 0.5)])
        assert "acc" not in find_reductions(s)

    def test_read_in_condition_disqualifies(self):
        s = _step([Assign(ref("acc"), ref("acc") + 1.0)],
                  condition=ref("acc").lt(100.0))
        assert "acc" not in find_reductions(s)

    def test_differing_indices_disqualify(self):
        s = _step([
            Assign(ref("o", I("i")), ref("o", I("i")) + 1.0),
            Assign(ref("o", I("i") + 1), ref("o", I("i") + 1) + 2.0),
        ])
        assert "o" not in find_reductions(s)


def _fn_with_step(step, locals_=(), params=()):
    b = GlafBuilder("t")
    m = b.module("M")
    f = m.function("f", return_type=T_VOID)
    f.param("n", T_INT, intent="in")
    for name, dims in params:
        f.param(name, T_REAL8, dims=dims, intent="inout")
    for name, dims in locals_:
        f.local(name, T_REAL8, dims=dims)
    f.fn.steps.append(step)
    return b.program, f.fn


class TestPrivatization:
    def test_scalar_temp_private(self):
        s = _step([
            Assign(ref("t"), ref("a", I("i")) * 2.0),
            Assign(ref("a", I("i")), ref("t") + 1.0),
        ], bounds=ref("n"))
        program, fn = _fn_with_step(s, locals_=[("t", ())], params=[("a", ("n",))])
        res = classify_privates(program, fn, s)
        assert "t" in res.private
        assert "a" in res.shared

    def test_read_before_write_firstprivate(self):
        s = _step([
            Assign(ref("b", I("i")), ref("t") * 1.0),
            Assign(ref("t"), ref("b", I("i"))),
        ], bounds=ref("n"))
        program, fn = _fn_with_step(s, locals_=[("t", ())], params=[("b", ("n",))])
        res = classify_privates(program, fn, s)
        assert "t" in res.firstprivate

    def test_conditional_first_write_firstprivate(self):
        s = _step([
            IfStmt(ref("b", I("i")).gt(0), (Assign(ref("t"), 1.0),)),
            Assign(ref("b", I("i")), ref("t")),
        ], bounds=ref("n"))
        program, fn = _fn_with_step(s, locals_=[("t", ())], params=[("b", ("n",))])
        res = classify_privates(program, fn, s)
        assert "t" in res.firstprivate

    def test_iteration_local_array_private(self):
        # A scratch array indexed only by constants is per-iteration local.
        s = _step([
            Assign(ref("w", 1), ref("a", I("i"))),
            Assign(ref("a", I("i")), ref("w", 1) * 2.0),
        ], bounds=ref("n"))
        program, fn = _fn_with_step(s, locals_=[("w", (4,))], params=[("a", ("n",))])
        res = classify_privates(program, fn, s)
        assert "w" in res.private

    def test_read_only_shared(self):
        s = _step([Assign(ref("a", I("i")), ref("b", I("i")))], bounds=ref("n"))
        program, fn = _fn_with_step(
            s, params=[("a", ("n",)), ("b", ("n",))])
        res = classify_privates(program, fn, s)
        assert "b" in res.shared
