"""Unit tests for the interprocedural dataflow & value-range engine.

Covers the CFG builders, the interval lattice, and the four analyses
(may-uninitialized, liveness, ranges, bounds) through both the direct
API and the ``lint --dataflow`` rules — including the edge cases the
interval analysis must get right: negative DO strides, zero-trip loops,
symbolic bounds from COMMON, 1-based off-by-one at array edges, and
EXIT inside nested loops.
"""

import math

from repro.analysis.dataflow import (
    Interval,
    TOP,
    build_unit_cfg,
)
from repro.fortranlib.parser import parse_source
from repro.lint import LintReport, lint_text
from repro.lint.dataflow import analyze_batch_ranges


def _lint(source: str) -> LintReport:
    return lint_text(source, dataflow=True)


def _rules(report: LintReport) -> set[str]:
    return {f.rule for f in report.findings}


def _ranges(source: str):
    parsed = {"t.f90": parse_source(source)}
    return {r.unit.lower(): r.summary for r in analyze_batch_ranges(parsed)}


# ---------------------------------------------------------------------------
# the interval lattice
# ---------------------------------------------------------------------------

class TestInterval:
    def test_hull(self):
        assert Interval(1, 3).hull(Interval(5, 9)) == Interval(1, 9)
        assert Interval(2, 4).hull(Interval(1, 3)) == Interval(1, 4)

    def test_top_absorbs(self):
        assert Interval(1, 2).hull(TOP) == TOP
        assert TOP.lo == -math.inf and TOP.hi == math.inf

    def test_widen_blows_changed_bounds(self):
        w = Interval(1, 5).widen(Interval(1, 9))
        assert w.lo == 1 and w.hi == math.inf
        w = Interval(0, 5).widen(Interval(-2, 5))
        assert w.lo == -math.inf and w.hi == 5

    def test_empty_is_bottom(self):
        assert Interval(3, 1).is_empty
        assert not Interval(3, 3).is_empty


# ---------------------------------------------------------------------------
# CFG shape
# ---------------------------------------------------------------------------

class TestCfg:
    def test_do_loop_blocks_and_reachability(self):
        src = """\
subroutine s(a)
  real(kind=8), intent(inout) :: a(10)
  integer :: i
  do i = 1, 10
    a(i) = 0.0
  end do
end subroutine s
"""
        cfg = build_unit_cfg(parse_source(src).subprograms[0])
        kinds = {a.kind for b in cfg.blocks for a in b.atoms}
        assert {"do", "do-bind", "do-post", "stmt"} <= kinds
        assert cfg.exit in cfg.reachable()

    def test_code_after_return_is_unreachable(self):
        src = """\
subroutine s(a)
  real(kind=8), intent(inout) :: a(10)
  return
  a(99) = 0.0
end subroutine s
"""
        # The a(99) store is statically dead: no possible-oob finding.
        assert _lint(src).ok


# ---------------------------------------------------------------------------
# use-before-def and INTENT contracts
# ---------------------------------------------------------------------------

class TestUninit:
    def test_read_before_assign_on_some_path(self):
        src = """\
subroutine u(a, n)
  integer, intent(in) :: n
  real(kind=8), intent(inout) :: a(n)
  real(kind=8) :: t
  if (n > 3) then
    t = 1.0
  end if
  a(1) = t
end subroutine u
"""
        report = _lint(src)
        assert _rules(report) == {"use-before-def"}
        [f] = report.findings
        assert f.variable == "t"

    def test_assigned_on_all_paths_is_clean(self):
        src = """\
subroutine u(a, n)
  integer, intent(in) :: n
  real(kind=8), intent(inout) :: a(n)
  real(kind=8) :: t
  if (n > 3) then
    t = 1.0
  else
    t = 2.0
  end if
  a(1) = t
end subroutine u
"""
        assert _lint(src).ok

    def test_zero_trip_loop_does_not_initialize(self):
        src = """\
subroutine z(a)
  real(kind=8), intent(inout) :: a(10)
  real(kind=8) :: t
  integer :: i
  do i = 1, 0
    t = 1.0
  end do
  a(1) = t
end subroutine z
"""
        assert "use-before-def" in _rules(_lint(src))

    def test_interprocedural_out_summary_clears_uninit(self):
        src = """\
subroutine init(x)
  real(kind=8), intent(out) :: x
  x = 1.0
end subroutine init

subroutine driver(a)
  real(kind=8), intent(inout) :: a(10)
  real(kind=8) :: t
  call init(t)
  a(1) = t
end subroutine driver
"""
        assert _lint(src).ok

    def test_write_to_intent_in(self):
        src = """\
subroutine w(n)
  integer, intent(in) :: n
  n = 5
end subroutine w
"""
        report = _lint(src)
        assert "intent-violation" in _rules(report)
        assert any("INTENT(IN)" in f.message for f in report.findings)

    def test_read_of_uninit_intent_out(self):
        src = """\
subroutine r(x, y)
  real(kind=8), intent(out) :: x
  real(kind=8), intent(out) :: y
  y = x + 1.0
  x = 0.0
end subroutine r
"""
        report = _lint(src)
        assert "intent-violation" in _rules(report)
        assert any(f.variable == "x" for f in report.findings)

    def test_literal_actual_to_intent_out(self):
        src = """\
subroutine setv(x)
  real(kind=8), intent(out) :: x
  x = 1.0
end subroutine setv

subroutine caller()
  call setv(3.0)
end subroutine caller
"""
        report = _lint(src)
        assert "intent-violation" in _rules(report)
        assert any("non-variable actual" in f.message for f in report.findings)


# ---------------------------------------------------------------------------
# dead stores
# ---------------------------------------------------------------------------

class TestDeadStores:
    def test_overwritten_scalar_store(self):
        src = """\
subroutine d(a)
  real(kind=8), intent(inout) :: a(10)
  real(kind=8) :: t
  t = 1.0
  t = 2.0
  a(1) = t
end subroutine d
"""
        report = _lint(src)
        assert _rules(report) == {"dead-store"}
        [f] = report.findings
        assert f.variable == "t"

    def test_never_read_local_array(self):
        src = """\
subroutine d(a)
  real(kind=8), intent(inout) :: a(10)
  real(kind=8) :: w(10)
  integer :: i
  do i = 1, 10
    w(i) = a(i)
  end do
end subroutine d
"""
        report = _lint(src)
        assert "dead-store" in _rules(report)
        assert any(f.variable == "w" for f in report.findings)

    def test_store_read_by_callee_is_live(self):
        src = """\
subroutine consume(x)
  real(kind=8), intent(in) :: x
  print *, x
end subroutine consume

subroutine d(a)
  real(kind=8), intent(inout) :: a(10)
  real(kind=8) :: t
  t = a(1)
  call consume(t)
end subroutine d
"""
        assert _lint(src).ok


# ---------------------------------------------------------------------------
# ranges and bounds
# ---------------------------------------------------------------------------

class TestBounds:
    def test_literal_do_over_declared_extent_proven(self):
        src = """\
subroutine b(a)
  real(kind=8), intent(inout) :: a(10)
  integer :: i
  do i = 1, 10
    a(i) = a(i) + 1.0
  end do
end subroutine b
"""
        assert _lint(src).ok
        s = _ranges(src)["b"]
        assert s.proven >= 2 and s.possible == 0

    def test_off_by_one_high_at_array_edge(self):
        src = """\
subroutine b(a)
  real(kind=8), intent(inout) :: a(10)
  integer :: i
  do i = 1, 10
    a(i + 1) = 0.0
  end do
end subroutine b
"""
        report = _lint(src)
        assert "possible-oob" in _rules(report)
        assert _ranges(src)["b"].possible >= 1

    def test_off_by_one_low_at_array_edge(self):
        src = """\
subroutine b(a)
  real(kind=8), intent(inout) :: a(10)
  integer :: i
  do i = 1, 10
    a(i - 1) = 0.0
  end do
end subroutine b
"""
        assert "possible-oob" in _rules(_lint(src))

    def test_negative_stride_in_range(self):
        src = """\
subroutine b(a)
  real(kind=8), intent(inout) :: a(10)
  integer :: i
  do i = 10, 1, -1
    a(i) = 0.0
  end do
end subroutine b
"""
        assert _lint(src).ok
        assert _ranges(src)["b"].proven >= 1

    def test_negative_stride_underrun(self):
        src = """\
subroutine b(a)
  real(kind=8), intent(inout) :: a(10)
  integer :: i
  do i = 10, 0, -1
    a(i) = 0.0
  end do
end subroutine b
"""
        assert "possible-oob" in _rules(_lint(src))

    def test_zero_trip_loop_body_is_dead(self):
        src = """\
subroutine b(a)
  real(kind=8), intent(inout) :: a(10)
  integer :: i
  do i = 1, 0
    a(i + 90) = 0.0
  end do
end subroutine b
"""
        # The body never executes; no possible-oob for the wild subscript.
        assert _lint(src).ok

    def test_symbolic_bound_from_common_stays_unknown(self):
        src = """\
subroutine b(a)
  real(kind=8), intent(inout) :: a(10)
  integer :: m, i
  common /dims/ m
  do i = 1, m
    a(i) = 0.0
  end do
end subroutine b
"""
        assert _lint(src).ok
        s = _ranges(src)["b"]
        assert s.possible == 0 and s.unknown >= 1

    def test_symbolic_same_symbol_extent_proves(self):
        # The canonical legacy shape: DO i = 1, n over a(n).  The
        # numeric intervals cannot bound i, but the subscript and the
        # extent share the stable symbol n.
        src = """\
subroutine b(a, n)
  integer, intent(in) :: n
  real(kind=8), intent(inout) :: a(n)
  integer :: i
  do i = 1, n
    a(i) = 0.0
  end do
end subroutine b
"""
        assert _lint(src).ok
        s = _ranges(src)["b"]
        assert s.proven >= 1 and s.possible == 0 and s.unknown == 0

    def test_symbolic_offset_extent_proves(self):
        # a(i+1) under DO i = 1, n-1: i <= n-1 so i+1 <= n == extent.
        src = """\
subroutine c(a, n)
  integer, intent(in) :: n
  real(kind=8), intent(inout) :: a(n)
  integer :: i
  do i = 1, n - 1
    a(i + 1) = a(i)
  end do
end subroutine c
"""
        assert _lint(src).ok
        s = _ranges(src)["c"]
        assert s.proven >= 2 and s.possible == 0 and s.unknown == 0

    def test_symbolic_proof_requires_stable_symbol(self):
        # The extent symbol is reassigned after the ALLOCATE, so the
        # extent-at-allocation equation no longer holds: no proof.
        src = """\
subroutine d(n)
  integer, intent(in) :: n
  real(kind=8), allocatable :: t(:)
  integer :: i, m
  m = n
  allocate(t(m))
  m = m + 1
  do i = 1, m
    t(i) = 0.0
  end do
end subroutine d
"""
        s = _ranges(src)["d"]
        assert s.proven == 0 and s.unknown >= 1

    def test_exit_in_nested_loops_clean(self):
        src = """\
subroutine b(a)
  real(kind=8), intent(inout) :: a(10)
  integer :: i, j
  do i = 1, 10
    do j = 1, 10
      if (a(j) > 0.0) then
        exit
      end if
      a(j) = 1.0
    end do
    a(i) = a(i) + 1.0
  end do
end subroutine b
"""
        assert _lint(src).ok

    def test_index_read_after_loop_may_be_past_end(self):
        src = """\
subroutine b(a)
  real(kind=8), intent(inout) :: a(10)
  integer :: i
  do i = 1, 10
    if (a(i) > 0.0) then
      exit
    end if
  end do
  a(i) = -1.0
end subroutine b
"""
        # After normal termination i == 11, so a(i) can escape the edge.
        assert "possible-oob" in _rules(_lint(src))

    def test_if_refinement_proves_bounds(self):
        src = """\
subroutine b(a, k)
  real(kind=8), intent(inout) :: a(10)
  integer, intent(in) :: k
  if (k >= 1) then
    if (k <= 10) then
      a(k) = 0.0
    end if
  end if
end subroutine b
"""
        assert _lint(src).ok
        assert _ranges(src)["b"].proven >= 1


# ---------------------------------------------------------------------------
# const-false guards around parallel regions
# ---------------------------------------------------------------------------

class TestConstFalseGuard:
    def test_constant_false_guard_flagged(self):
        src = """\
subroutine g(a, n)
  integer, intent(in) :: n
  real(kind=8), intent(inout) :: a(n)
  integer :: i, flag
  flag = 0
  if (flag > 0) then
    !$OMP PARALLEL DO
    do i = 1, n
      a(i) = a(i) * 2.0
    end do
  end if
end subroutine g
"""
        assert "const-false-guard" in _rules(_lint(src))

    def test_satisfiable_guard_clean(self):
        src = """\
subroutine g(a, n)
  integer, intent(in) :: n
  real(kind=8), intent(inout) :: a(n)
  integer :: i
  if (n > 0) then
    !$OMP PARALLEL DO
    do i = 1, n
      a(i) = a(i) * 2.0
    end do
  end if
end subroutine g
"""
        assert _lint(src).ok


# ---------------------------------------------------------------------------
# case-study gates: the shipped generated code stays dataflow-clean
# ---------------------------------------------------------------------------

class TestCaseStudiesClean:
    def test_generated_cases_have_proven_subscripts(self):
        from repro.lint.dataflow import analyze_case_ranges

        for case in ("sarb", "fun3d"):
            ranges = analyze_case_ranges(case, "GLAF-parallel v0")
            assert sum(r.summary.possible for r in ranges) == 0
            assert sum(r.summary.proven for r in ranges) > 0
            # Deterministic: sorted by unit name.
            names = [r.unit.lower() for r in ranges]
            assert names == sorted(names)
