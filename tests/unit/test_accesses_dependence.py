"""Unit tests for access extraction, affine analysis and dependence tests."""

import pytest

from repro.analysis.accesses import AffineForm, affine_form, step_accesses
from repro.analysis.dependence import DepKind, write_is_injective
from repro.analysis.dependence import test_pair as dep_test_pair
from repro.core.expr import Const, I, ref
from repro.core.step import Assign, CallStmt, IfStmt, Range, Step


class TestAffineForm:
    def test_constant(self):
        assert affine_form(Const(3), {"i"}) == AffineForm(3)

    def test_index_var(self):
        assert affine_form(I("i"), {"i"}) == AffineForm(0, {"i": 1})

    def test_linear_combination(self):
        f = affine_form(2 * I("i") + I("j") - 1, {"i", "j"})
        assert f == AffineForm(-1, {"i": 2, "j": 1})

    def test_negation(self):
        f = affine_form(-(I("i") - 2), {"i"})
        assert f == AffineForm(2, {"i": -1})

    def test_constant_times_affine(self):
        f = affine_form(3 * (I("i") + 1), {"i"})
        assert f == AffineForm(3, {"i": 3})

    def test_nonlinear_rejected(self):
        assert affine_form(I("i") * I("j"), {"i", "j"}) is None
        assert affine_form(I("i") ** 2, {"i"}) is None

    def test_grid_ref_rejected(self):
        assert affine_form(ref("ioff", I("i")), {"i"}) is None
        assert affine_form(ref("n"), {"i"}) is None  # symbolic, not const

    def test_foreign_index_var_rejected(self):
        assert affine_form(I("k"), {"i"}) is None

    def test_zero_coefficients_dropped(self):
        f = affine_form(I("i") - I("i") + 2, {"i"})
        assert f == AffineForm(2)
        assert not f.uses("i")


class TestStepAccesses:
    def test_reads_and_writes(self):
        s = Step(name="s", ranges=[Range("i", 1, ref("n"))],
                 stmts=[Assign(ref("a", I("i")), ref("b", I("i")) + 1.0)])
        accs = step_accesses(s)
        writes = [a for a in accs if a.is_write]
        reads = [a for a in accs if not a.is_write]
        assert [w.grid for w in writes] == ["a"]
        assert {r.grid for r in reads} == {"b"}

    def test_condition_reads_counted(self):
        s = Step(name="s", ranges=[Range("i", 1, 4)],
                 condition=ref("mask", I("i")).gt(0),
                 stmts=[Assign(ref("a", I("i")), 1.0)])
        accs = step_accesses(s)
        assert any(a.grid == "mask" and not a.is_write for a in accs)

    def test_conditional_flag(self):
        s = Step(name="s", ranges=[Range("i", 1, 4)],
                 stmts=[IfStmt(ref("c", I("i")).gt(0),
                               (Assign(ref("a", I("i")), 1.0),))])
        accs = step_accesses(s)
        w = next(a for a in accs if a.is_write)
        assert w.conditional

    def test_indirect_index_not_affine(self):
        s = Step(name="s", ranges=[Range("i", 1, 4)],
                 stmts=[Assign(ref("a", ref("idx", I("i"))), 1.0)])
        accs = step_accesses(s)
        w = next(a for a in accs if a.is_write)
        assert not w.fully_affine

    def test_call_argument_reads(self):
        s = Step(name="s", ranges=[Range("i", 1, 4)],
                 stmts=[CallStmt("f", (ref("a", I("i")),))])
        accs = step_accesses(s)
        assert any(a.grid == "a" and not a.is_write for a in accs)


def _acc(grid, idx_exprs, is_write, loop_vars):
    s = Step(name="s", ranges=[Range(v, 1, 10) for v in loop_vars],
             stmts=[Assign(ref(grid, *idx_exprs), 1.0)])
    return next(a for a in step_accesses(s) if a.is_write)


class TestDependence:
    def test_identical_subscripts_loop_independent(self):
        w = _acc("a", [I("i")], True, ["i"])
        r = _acc("a", [I("i")], True, ["i"])
        dep = dep_test_pair(w, r, ("i",))
        assert dep.kind is DepKind.LOOP_INDEPENDENT

    def test_constant_distance_carried(self):
        w = _acc("a", [I("i")], True, ["i"])
        r = _acc("a", [I("i") - 1], True, ["i"])
        dep = dep_test_pair(w, r, ("i",))
        assert dep.kind is DepKind.LOOP_CARRIED
        assert dep.distance == (1,)

    def test_ziv_different_constants_independent(self):
        w = _acc("a", [Const(1)], True, ["i"])
        r = _acc("a", [Const(2)], True, ["i"])
        assert dep_test_pair(w, r, ("i",)).kind is DepKind.NONE

    def test_scalar_write_carried(self):
        w = _acc("x", [], True, ["i"])
        r = _acc("x", [], True, ["i"])
        assert dep_test_pair(w, r, ("i",)).kind is DepKind.LOOP_CARRIED

    def test_invariant_subscript_carried(self):
        # a(j) in an i-j nest collides across i.
        w = _acc("a", [I("j")], True, ["i", "j"])
        r = _acc("a", [I("j")], True, ["i", "j"])
        assert dep_test_pair(w, r, ("i", "j")).kind is DepKind.LOOP_CARRIED

    def test_nonaffine_unknown(self):
        w = _acc("a", [ref("idx", I("i"))], True, ["i"])
        r = _acc("a", [I("i")], True, ["i"])
        assert dep_test_pair(w, r, ("i",)).kind is DepKind.UNKNOWN


class TestInjectivity:
    def test_simple_injective(self):
        w = _acc("a", [I("i"), I("j")], True, ["i", "j"])
        assert write_is_injective(w, ("i", "j"))

    def test_missing_var_not_injective(self):
        w = _acc("a", [I("i")], True, ["i", "j"])
        assert not write_is_injective(w, ("i", "j"))

    def test_combined_vars_in_one_dim_not_injective(self):
        w = _acc("a", [I("i") + I("j")], True, ["i", "j"])
        assert not write_is_injective(w, ("i", "j"))

    def test_indirect_not_injective(self):
        w = _acc("a", [ref("idx", I("i"))], True, ["i"])
        assert not write_is_injective(w, ("i",))
