"""Unit tests for access extraction, affine analysis and dependence tests."""

import pytest

from repro.analysis.accesses import AffineForm, affine_form, step_accesses
from repro.analysis.dependence import DepKind, write_is_injective
from repro.analysis.dependence import test_pair as dep_test_pair
from repro.core.expr import Const, I, ref
from repro.core.step import Assign, CallStmt, IfStmt, Range, Step


class TestAffineForm:
    def test_constant(self):
        assert affine_form(Const(3), {"i"}) == AffineForm(3)

    def test_index_var(self):
        assert affine_form(I("i"), {"i"}) == AffineForm(0, {"i": 1})

    def test_linear_combination(self):
        f = affine_form(2 * I("i") + I("j") - 1, {"i", "j"})
        assert f == AffineForm(-1, {"i": 2, "j": 1})

    def test_negation(self):
        f = affine_form(-(I("i") - 2), {"i"})
        assert f == AffineForm(2, {"i": -1})

    def test_constant_times_affine(self):
        f = affine_form(3 * (I("i") + 1), {"i"})
        assert f == AffineForm(3, {"i": 3})

    def test_nonlinear_rejected(self):
        assert affine_form(I("i") * I("j"), {"i", "j"}) is None
        assert affine_form(I("i") ** 2, {"i"}) is None

    def test_grid_ref_rejected(self):
        assert affine_form(ref("ioff", I("i")), {"i"}) is None
        assert affine_form(ref("n"), {"i"}) is None  # symbolic, not const

    def test_foreign_index_var_rejected(self):
        assert affine_form(I("k"), {"i"}) is None

    def test_zero_coefficients_dropped(self):
        f = affine_form(I("i") - I("i") + 2, {"i"})
        assert f == AffineForm(2)
        assert not f.uses("i")


class TestStepAccesses:
    def test_reads_and_writes(self):
        s = Step(name="s", ranges=[Range("i", 1, ref("n"))],
                 stmts=[Assign(ref("a", I("i")), ref("b", I("i")) + 1.0)])
        accs = step_accesses(s)
        writes = [a for a in accs if a.is_write]
        reads = [a for a in accs if not a.is_write]
        assert [w.grid for w in writes] == ["a"]
        assert {r.grid for r in reads} == {"b"}

    def test_condition_reads_counted(self):
        s = Step(name="s", ranges=[Range("i", 1, 4)],
                 condition=ref("mask", I("i")).gt(0),
                 stmts=[Assign(ref("a", I("i")), 1.0)])
        accs = step_accesses(s)
        assert any(a.grid == "mask" and not a.is_write for a in accs)

    def test_conditional_flag(self):
        s = Step(name="s", ranges=[Range("i", 1, 4)],
                 stmts=[IfStmt(ref("c", I("i")).gt(0),
                               (Assign(ref("a", I("i")), 1.0),))])
        accs = step_accesses(s)
        w = next(a for a in accs if a.is_write)
        assert w.conditional

    def test_indirect_index_not_affine(self):
        s = Step(name="s", ranges=[Range("i", 1, 4)],
                 stmts=[Assign(ref("a", ref("idx", I("i"))), 1.0)])
        accs = step_accesses(s)
        w = next(a for a in accs if a.is_write)
        assert not w.fully_affine

    def test_call_argument_reads(self):
        s = Step(name="s", ranges=[Range("i", 1, 4)],
                 stmts=[CallStmt("f", (ref("a", I("i")),))])
        accs = step_accesses(s)
        assert any(a.grid == "a" and not a.is_write for a in accs)


def _acc(grid, idx_exprs, is_write, loop_vars):
    s = Step(name="s", ranges=[Range(v, 1, 10) for v in loop_vars],
             stmts=[Assign(ref(grid, *idx_exprs), 1.0)])
    return next(a for a in step_accesses(s) if a.is_write)


class TestDependence:
    def test_identical_subscripts_loop_independent(self):
        w = _acc("a", [I("i")], True, ["i"])
        r = _acc("a", [I("i")], True, ["i"])
        dep = dep_test_pair(w, r, ("i",))
        assert dep.kind is DepKind.LOOP_INDEPENDENT

    def test_constant_distance_carried(self):
        w = _acc("a", [I("i")], True, ["i"])
        r = _acc("a", [I("i") - 1], True, ["i"])
        dep = dep_test_pair(w, r, ("i",))
        assert dep.kind is DepKind.LOOP_CARRIED
        assert dep.distance == (1,)

    def test_ziv_different_constants_independent(self):
        w = _acc("a", [Const(1)], True, ["i"])
        r = _acc("a", [Const(2)], True, ["i"])
        assert dep_test_pair(w, r, ("i",)).kind is DepKind.NONE

    def test_scalar_write_carried(self):
        w = _acc("x", [], True, ["i"])
        r = _acc("x", [], True, ["i"])
        assert dep_test_pair(w, r, ("i",)).kind is DepKind.LOOP_CARRIED

    def test_invariant_subscript_carried(self):
        # a(j) in an i-j nest collides across i.
        w = _acc("a", [I("j")], True, ["i", "j"])
        r = _acc("a", [I("j")], True, ["i", "j"])
        assert dep_test_pair(w, r, ("i", "j")).kind is DepKind.LOOP_CARRIED

    def test_nonaffine_unknown(self):
        w = _acc("a", [ref("idx", I("i"))], True, ["i"])
        r = _acc("a", [I("i")], True, ["i"])
        assert dep_test_pair(w, r, ("i",)).kind is DepKind.UNKNOWN


class TestInjectivity:
    def test_simple_injective(self):
        w = _acc("a", [I("i"), I("j")], True, ["i", "j"])
        assert write_is_injective(w, ("i", "j"))

    def test_missing_var_not_injective(self):
        w = _acc("a", [I("i")], True, ["i", "j"])
        assert not write_is_injective(w, ("i", "j"))

    def test_combined_vars_in_one_dim_not_injective(self):
        w = _acc("a", [I("i") + I("j")], True, ["i", "j"])
        assert not write_is_injective(w, ("i", "j"))

    def test_indirect_not_injective(self):
        w = _acc("a", [ref("idx", I("i"))], True, ["i"])
        assert not write_is_injective(w, ("i",))


# ---------------------------------------------------------------------------
# Storage association (COMMON blocks, derived-TYPE overlays) — the §3
# integration channels through which two *different-named* grids can denote
# the same memory.
# ---------------------------------------------------------------------------

from repro.analysis.dependence import may_alias
from repro.analysis.dependence import test_alias_pair as dep_test_alias_pair
from repro.analysis.parallelize import analyze_step
from repro.core import GlafBuilder, T_INT, T_REAL8, T_VOID
from repro.core.grid import Grid
from repro.core.types import GlafType


def _g(name, **kw):
    return Grid(name=name, ty=GlafType.T_REAL8, dims=(8,), **kw)


class TestMayAlias:
    def test_same_name_aliases(self):
        assert may_alias(_g("a"), _g("a"))

    def test_unrelated_grids_disjoint(self):
        assert not may_alias(_g("a"), _g("b"))

    def test_same_common_block_aliases(self):
        a = _g("a", common_block="wts")
        b = _g("b", common_block="wts")
        assert may_alias(a, b) and may_alias(b, a)

    def test_different_common_blocks_disjoint(self):
        assert not may_alias(_g("a", common_block="wts"),
                             _g("b", common_block="opts"))

    def test_common_vs_plain_global_disjoint(self):
        assert not may_alias(_g("a", common_block="wts"), _g("b"))

    def test_type_element_overlaps_whole_parent(self):
        elem = _g("flux", exists_in_module="rad", type_parent="fin",
                  type_name="rad_input")
        parent = _g("fin", exists_in_module="rad")
        assert may_alias(elem, parent) and may_alias(parent, elem)

    def test_sibling_type_elements_disjoint(self):
        e1 = _g("flux", exists_in_module="rad", type_parent="fin",
                type_name="rad_input")
        e2 = _g("temp", exists_in_module="rad", type_parent="fin",
                type_name="rad_input")
        assert not may_alias(e1, e2)

    def test_same_element_slot_aliases(self):
        # Two Grid declarations bound to the same fin%flux slot.
        e1 = _g("flux", exists_in_module="rad", type_parent="fin",
                type_name="rad_input")
        e2 = _g("flux", exists_in_module="rad", type_parent="fin",
                type_name="rad_input")
        assert may_alias(e1, e2)

    def test_elements_of_different_parents_disjoint(self):
        e1 = _g("flux", exists_in_module="rad", type_parent="fin",
                type_name="rad_input")
        e2 = _g("flux2", exists_in_module="rad", type_parent="fout",
                type_name="rad_input")
        assert not may_alias(e1, e2)


class TestAliasPair:
    def test_alias_pair_is_conservatively_unknown(self):
        w = _acc("a", [I("i")], True, ["i"])
        r = _acc("b", [I("i")], False, ["i"])
        dep = dep_test_alias_pair(w, r, ("i",))
        assert dep.kind is DepKind.UNKNOWN
        assert "storage association" in dep.detail
        assert "b" in dep.detail

    def test_even_identical_subscripts_stay_unknown(self):
        # a(i) and b(i) at unknown relative COMMON offsets can still collide
        # across iterations; the affine forms are not comparable.
        w = _acc("a", [I("i")], True, ["i"])
        r = _acc("b", [I("i")], False, ["i"])
        assert dep_test_alias_pair(w, r, ("i",)).kind is DepKind.UNKNOWN


def _alias_program(write_grid, read_grid, *, blocks):
    """One-function program writing write_grid(i) from read_grid(i)."""
    b = GlafBuilder("t")
    for name, blk in blocks.items():
        b.global_grid(name, T_REAL8, dims=(8,), common_block=blk)
    m = b.module("M")
    f = m.function("k", return_type=T_VOID)
    f.param("n", T_INT, intent="in")
    s = f.step()
    s.foreach(i=(1, 8))
    s.formula(ref(write_grid, I("i")), ref(read_grid, I("i")) * 2.0)
    p = b.build()
    return p, p.find_function("k")


class TestAliasAwareParallelize:
    def test_same_common_block_serializes(self):
        p, fn = _alias_program("u", "v", blocks={"u": "ovl", "v": "ovl"})
        sp = analyze_step(p, fn, 0)
        assert not sp.parallel
        assert any("storage association" in r for r in sp.reasons)

    def test_different_common_blocks_stay_parallel(self):
        p, fn = _alias_program("u", "v", blocks={"u": "ovl", "v": "other"})
        sp = analyze_step(p, fn, 0)
        assert sp.parallel

    def test_type_element_write_vs_parent_read_serializes(self):
        b = GlafBuilder("t")
        b.derived_type("rad_input", {"flux": (T_REAL8, 1)},
                       defined_in_module="rad")
        b.global_grid("flux", T_REAL8, dims=(8,), exists_in_module="rad",
                      type_parent="fin", type_name="rad_input")
        b.global_grid("fin", T_REAL8, dims=(8,), exists_in_module="rad")
        m = b.module("M")
        f = m.function("k", return_type=T_VOID)
        f.param("n", T_INT, intent="in")
        s = f.step()
        s.foreach(i=(1, 8))
        s.formula(ref("flux", I("i")), ref("fin", I("i")) + 1.0)
        p = b.build()
        sp = analyze_step(p, p.find_function("k"), 0)
        assert not sp.parallel
        assert any("storage association" in r for r in sp.reasons)

    def test_sibling_elements_stay_parallel(self):
        b = GlafBuilder("t")
        b.derived_type("rad_input",
                       {"flux": (T_REAL8, 1), "temp": (T_REAL8, 1)},
                       defined_in_module="rad")
        b.global_grid("flux", T_REAL8, dims=(8,), exists_in_module="rad",
                      type_parent="fin", type_name="rad_input")
        b.global_grid("temp", T_REAL8, dims=(8,), exists_in_module="rad",
                      type_parent="fin", type_name="rad_input")
        m = b.module("M")
        f = m.function("k", return_type=T_VOID)
        f.param("n", T_INT, intent="in")
        s = f.step()
        s.foreach(i=(1, 8))
        s.formula(ref("flux", I("i")), ref("temp", I("i")) + 1.0)
        p = b.build()
        sp = analyze_step(p, p.find_function("k"), 0)
        assert sp.parallel
