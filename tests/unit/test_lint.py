"""Unit tests for the static race detector / parallel-correctness linter.

Exercises every rule in :data:`repro.lint.RULES` on hand-written FORTRAN,
the sharing-channel symbol tables, the plan-vs-text cross-check, the
clause-mutation self-test corpus, and the end-to-end case-study gates
(``docs/STATIC_ANALYSIS.md``).
"""

import json

import pytest

from repro.lint import (
    LEVELS,
    MUTANTS,
    RULES,
    LintReport,
    build_symbols,
    lint_case,
    lint_text,
    run_mutation_selftest,
)
from repro.fortranlib.parser import parse_source


def _lint(source: str) -> LintReport:
    return lint_text(source)


def _rules(report: LintReport) -> set[str]:
    return {f.rule for f in report.findings}


# ---------------------------------------------------------------------------
# race-shared-write
# ---------------------------------------------------------------------------

_CLEAN = """\
subroutine ok(a, n)
  integer, intent(in) :: n
  real(kind=8), intent(inout) :: a(n)
  integer :: i
  !$OMP PARALLEL DO
  do i = 1, n
    a(i) = a(i) * 2.0
  end do
end subroutine ok
"""

_SCALAR_RACE = """\
subroutine bad(a, n)
  integer, intent(in) :: n
  real(kind=8), intent(inout) :: a(n)
  real(kind=8) :: s
  integer :: i
  !$OMP PARALLEL DO
  do i = 1, n
    s = s + a(i)
  end do
end subroutine bad
"""


class TestRaceSharedWrite:
    def test_pinned_array_write_clean(self):
        report = _lint(_CLEAN)
        assert report.ok
        assert report.units == 1 and report.regions == 1

    def test_shared_scalar_write_races(self):
        report = _lint(_SCALAR_RACE)
        assert not report.ok
        [f] = report.findings
        assert f.rule == "race-shared-write"
        assert f.variable == "s"
        assert f.channel == "local"

    def test_reduction_clause_protects(self):
        src = _SCALAR_RACE.replace("!$OMP PARALLEL DO",
                                   "!$OMP PARALLEL DO REDUCTION(+:s)")
        assert _lint(src).ok

    def test_atomic_protects(self):
        src = _SCALAR_RACE.replace(
            "    s = s + a(i)",
            "    !$OMP ATOMIC\n    s = s + a(i)")
        assert _lint(src).ok

    def test_critical_protects(self):
        src = _SCALAR_RACE.replace(
            "    s = s + a(i)",
            "    !$OMP CRITICAL\n    s = s + a(i)\n    !$OMP END CRITICAL")
        assert _lint(src).ok

    def test_atomic_covers_only_next_statement(self):
        src = _SCALAR_RACE.replace(
            "    s = s + a(i)",
            "    !$OMP ATOMIC\n    a(i) = a(i) + 1.0\n    s = s + a(i)")
        assert "race-shared-write" in _rules(_lint(src))

    def test_unpinned_array_write_races(self):
        src = _CLEAN.replace("a(i) = a(i) * 2.0", "a(1) = a(1) + 2.0")
        report = _lint(src)
        assert _rules(report) == {"race-shared-write"}
        assert report.findings[0].variable == "a"

    def test_offset_subscript_still_pinned(self):
        # a(i+1) is injective in i: each thread writes a distinct element.
        src = _CLEAN.replace("do i = 1, n", "do i = 1, n - 1")
        src = src.replace("a(i) = a(i) * 2.0", "a(i + 1) = a(i) * 2.0")
        assert _lint(src).ok

    def test_common_block_channel_reported(self):
        src = """\
subroutine cwrite(n)
  integer, intent(in) :: n
  real(kind=8) :: w(10)
  common /wts/ w
  integer :: i
  !$OMP PARALLEL DO
  do i = 1, n
    w(1) = w(1) + 1.0
  end do
end subroutine cwrite
"""
        report = _lint(src)
        [f] = report.findings
        assert f.rule == "race-shared-write"
        assert f.channel == "COMMON /wts/"

    def test_use_module_channel_reported(self):
        src = """\
subroutine mwrite(n)
  use rad_mod, only: acc
  integer, intent(in) :: n
  integer :: i
  !$OMP PARALLEL DO
  do i = 1, n
    acc = acc + 1.0
  end do
end subroutine mwrite
"""
        [f] = _lint(src).findings
        assert f.rule == "race-shared-write"
        assert f.channel == "USE rad_mod"

    def test_type_element_write_detected(self):
        src = """\
subroutine twrite(n)
  use rad_mod, only: fout
  integer, intent(in) :: n
  integer :: i
  !$OMP PARALLEL DO
  do i = 1, n
    fout%total = fout%total + 1.0
  end do
end subroutine twrite
"""
        [f] = _lint(src).findings
        assert f.rule == "race-shared-write"
        assert f.variable == "fout%total"

    def test_privatized_scalar_clean(self):
        src = _SCALAR_RACE.replace("!$OMP PARALLEL DO",
                                   "!$OMP PARALLEL DO PRIVATE(s)")
        assert _lint(src).ok


# ---------------------------------------------------------------------------
# clause rules
# ---------------------------------------------------------------------------

class TestClauseRules:
    def test_private_and_reduction_conflict(self):
        src = _SCALAR_RACE.replace(
            "!$OMP PARALLEL DO",
            "!$OMP PARALLEL DO PRIVATE(s) REDUCTION(+:s)")
        assert "clause-conflict" in _rules(_lint(src))

    def test_unknown_clause_var(self):
        src = _CLEAN.replace("!$OMP PARALLEL DO",
                             "!$OMP PARALLEL DO PRIVATE(zzz)")
        report = _lint(src)
        assert "unknown-clause-var" in _rules(report)
        assert report.findings[0].variable == "zzz"

    def test_unknown_clause_var_suppressed_by_wildcard_use(self):
        # `use mystery` without ONLY makes visibility undecidable.
        src = _CLEAN.replace(
            "  integer, intent(in) :: n",
            "  use mystery\n  integer, intent(in) :: n")
        src = src.replace("!$OMP PARALLEL DO",
                          "!$OMP PARALLEL DO PRIVATE(zzz)")
        assert "unknown-clause-var" not in _rules(_lint(src))

    def test_inner_loop_index_not_private(self):
        src = """\
subroutine inner(a, n)
  integer, intent(in) :: n
  real(kind=8), intent(inout) :: a(n)
  integer :: i, k
  !$OMP PARALLEL DO
  do i = 1, n
    do k = 1, 3
      a(i) = a(i) + 1.0
    end do
  end do
end subroutine inner
"""
        report = _lint(src)
        assert "loop-index-not-private" in _rules(report)
        assert any(f.variable == "k" for f in report.findings)
        # Privatizing k fixes it.
        fixed = src.replace("!$OMP PARALLEL DO", "!$OMP PARALLEL DO PRIVATE(k)")
        assert _lint(fixed).ok


# ---------------------------------------------------------------------------
# COLLAPSE rules
# ---------------------------------------------------------------------------

_NEST = """\
subroutine nest(a, n)
  integer, intent(in) :: n
  real(kind=8), intent(inout) :: a(n, n)
  integer :: i, j
  !$OMP PARALLEL DO PRIVATE(j) COLLAPSE(2)
  do i = 1, n
    do j = 1, n
      a(i, j) = a(i, j) * 2.0
    end do
  end do
end subroutine nest
"""


class TestCollapseRules:
    def test_rectangular_collapse_clean(self):
        assert _lint(_NEST).ok

    def test_collapse_deeper_than_nest(self):
        src = _NEST.replace("COLLAPSE(2)", "COLLAPSE(3)")
        assert "collapse-too-deep" in _rules(_lint(src))

    def test_collapse_over_imperfect_nest(self):
        src = _NEST.replace(
            "  do i = 1, n\n    do j = 1, n",
            "  do i = 1, n\n    a(i, 1) = 0.0\n    do j = 1, n")
        assert "collapse-too-deep" in _rules(_lint(src))

    def test_triangular_collapse_flagged(self):
        src = _NEST.replace("do j = 1, n", "do j = i, n")
        assert "collapse-non-rectangular" in _rules(_lint(src))

    def test_triangular_without_collapse_ok(self):
        src = _NEST.replace("PRIVATE(j) COLLAPSE(2)", "PRIVATE(j)")
        src = src.replace("do j = 1, n", "do j = i, n")
        assert _lint(src).ok


# ---------------------------------------------------------------------------
# symbol tables
# ---------------------------------------------------------------------------

class TestSymbols:
    def test_channels(self):
        src = """\
subroutine chan(x, n)
  use fuliou_mod, only: taudp
  integer, intent(in) :: n
  real(kind=8), intent(inout) :: x(n)
  real(kind=8) :: w(4)
  common /wts/ w
  real(kind=8) :: tmp
  integer :: i
  x(1) = 0.0
end subroutine chan
"""
        out = parse_source(src)
        syms = build_symbols(out.subprograms[0])
        assert syms.channel("x") == "dummy argument"
        assert syms.channel("n") == "dummy argument"
        assert syms.channel("tmp") == "local"
        assert syms.channel("w") == "COMMON /wts/"
        assert syms.channel("taudp") == "USE fuliou_mod"
        assert syms.visible("tmp") and not syms.visible("nope")
        assert syms.conclusive

    def test_wildcard_use_not_conclusive(self):
        src = """\
subroutine wild()
  use somewhere
  real(kind=8) :: t
  t = 0.0
end subroutine wild
"""
        syms = build_symbols(parse_source(src).subprograms[0])
        assert not syms.conclusive

    def test_host_module_channel(self):
        src = """\
module m
  real(kind=8) :: shared_acc
contains
  subroutine s()
    shared_acc = 0.0
  end subroutine s
end module m
"""
        out = parse_source(src)
        mod = out.modules[0]
        syms = build_symbols(mod.subprograms[0], host=mod)
        assert syms.channel("shared_acc") == "host module m"


# ---------------------------------------------------------------------------
# plan-vs-text cross-check
# ---------------------------------------------------------------------------

def _sarb_plan_and_source(variant="GLAF-parallel v0"):
    from repro.codegen.fortran import FortranGenerator
    from repro.optimize.plan import make_plan
    from repro.sarb.kernels import build_sarb_program

    program = build_sarb_program()
    plan = make_plan(program, variant)
    return plan, FortranGenerator(plan).generate_module()


class TestCrosscheck:
    def test_faithful_output_clean(self):
        plan, source = _sarb_plan_and_source()
        assert lint_text(source, plan=plan).ok

    def test_dropped_directive_is_a_mismatch(self):
        plan, source = _sarb_plan_and_source()
        lines = source.splitlines()
        idx = next(i for i, ln in enumerate(lines)
                   if ln.lstrip().startswith("!$OMP PARALLEL DO"))
        pruned = "\n".join(lines[:idx] + lines[idx + 1:]) + "\n"
        report = lint_text(pruned, plan=plan)
        assert "plan-mismatch" in _rules(report)
        assert any("missing" in f.message for f in report.findings)

    def test_edited_clause_is_a_mismatch(self):
        plan, source = _sarb_plan_and_source()
        assert "REDUCTION(+:" in source
        edited = source.replace("REDUCTION(+:", "REDUCTION(*:", 1)
        report = lint_text(edited, plan=plan)
        assert "plan-mismatch" in _rules(report)


# ---------------------------------------------------------------------------
# reports, decision-log events, JSON
# ---------------------------------------------------------------------------

class TestReport:
    def test_render_and_json(self):
        report = _lint(_SCALAR_RACE)
        text = report.render()
        assert "1 finding(s)" in text and "race-shared-write" in text
        payload = report.to_json()
        assert payload["schema"] == "repro.lint/v1"
        assert not payload["ok"]
        json.dumps(payload)  # must be serializable

    def test_findings_land_in_decision_log(self):
        from repro.observe import observed

        with observed() as obs:
            _lint(_SCALAR_RACE)
        stages = {d.stage for d in obs.decisions.events}
        assert "lint:race-shared-write" in stages

    def test_every_rule_has_registry_entry(self):
        for rule in RULES.values():
            assert rule.summary and rule.failure_mode


# ---------------------------------------------------------------------------
# mutation self-test and the shipped-output gates
# ---------------------------------------------------------------------------

class TestMutationCorpus:
    def test_corpus_is_broad_enough(self):
        # The acceptance bar: >= 10 distinct mutants spanning the
        # PRIVATE / REDUCTION / COLLAPSE / plan-mismatch corruption kinds.
        assert len(MUTANTS) >= 10
        assert len({m.id for m in MUTANTS}) == len(MUTANTS)
        kinds = {m.kind for m in MUTANTS}
        assert {"drop-private", "drop-reduction", "widen-collapse",
                "drop-directive", "spurious-directive"} <= kinds
        assert {m.case for m in MUTANTS} == {"sarb", "fun3d"}

    def test_dataflow_corpus_is_broad_enough(self):
        # >= 6 body mutants spanning every dataflow corruption kind, both
        # case studies, and more than one pruning level.
        body = [m for m in MUTANTS if m.site == "codegen.fortran.body"]
        assert len(body) >= 6
        kinds = {m.kind for m in body}
        assert {"drop-init", "overrun-bound", "dead-store",
                "flip-intent"} == kinds
        assert {m.case for m in body} == {"sarb", "fun3d"}
        assert len({m.variant for m in body}) > 1

    def test_dataflow_mutants_caught_by_dataflow_rules(self):
        body = tuple(m for m in MUTANTS
                     if m.site == "codegen.fortran.body")
        results = run_mutation_selftest(mutants=body)
        dataflow_rules = {"use-before-def", "dead-store", "possible-oob",
                          "intent-violation", "const-false-guard"}
        for r in results:
            assert r.ok, r.mutant.id
            assert set(r.rules) <= dataflow_rules, (r.mutant.id, r.rules)

    def test_every_mutant_fires_and_is_caught(self):
        results = run_mutation_selftest()
        missed = [r.mutant.id for r in results if not r.ok]
        assert not missed, f"linter missed mutant(s): {missed}"

    def test_caught_rules_are_recorded(self):
        results = run_mutation_selftest()
        for r in results:
            assert r.rules, r.mutant.id


class TestShippedOutputsClean:
    @pytest.mark.parametrize("case", ["sarb", "fun3d"])
    def test_spliced_output_lints_clean(self, case):
        report = lint_case(case, LEVELS["v3"], dataflow=True)
        assert report.ok, report.render()
        assert report.units > 0 and report.regions > 0


# ---------------------------------------------------------------------------
# multi-level dedup
# ---------------------------------------------------------------------------

class TestLintLevels:
    def test_recurring_finding_reported_once_with_levels(self, monkeypatch):
        from repro.lint import runner
        from repro.lint.findings import LintFinding

        def fake_lint_case(case, level, dataflow=False):
            rep = LintReport(label="fake")
            rep.units = 1
            rep.regions = 2
            rep.add(LintFinding(rule="race-shared-write", unit="u", line=3,
                                message="recurs at every level"))
            return rep

        monkeypatch.setattr(runner, "lint_case", fake_lint_case)
        merged = runner.lint_levels(["v0", "v1"], cases=("sarb",))
        [f] = merged.findings
        assert f.levels == ("v0", "v1")
        assert merged.units == 2 and merged.regions == 4

    def test_levels_round_trip_in_json(self):
        from repro.lint.findings import LintFinding

        f = LintFinding(rule="dead-store", unit="u", line=1, message="m",
                        levels=("v0", "v2"))
        assert f.to_json()["levels"] == ["v0", "v2"]
        bare = LintFinding(rule="dead-store", unit="u", line=1, message="m")
        assert "levels" not in bare.to_json()
