"""Docs stay in sync with the code they describe.

Two invariants, enforced so a new CLI subcommand or package cannot land
without its documentation:

* every ``repro`` subcommand registered in :func:`repro.cli.build_parser`
  is documented in ``README.md``;
* every public package under ``src/repro/`` is mentioned in
  ``docs/ARCHITECTURE.md``.
"""

from pathlib import Path

import pytest

from repro.cli import build_parser

REPO = Path(__file__).resolve().parents[2]


def _subcommands() -> list[str]:
    parser = build_parser()
    subparsers = [a for a in parser._actions
                  if a.__class__.__name__ == "_SubParsersAction"]
    assert subparsers, "build_parser() must register subcommands"
    return sorted(subparsers[0].choices)


def _packages() -> list[str]:
    src = REPO / "src" / "repro"
    return sorted(p.name for p in src.iterdir()
                  if p.is_dir() and (p / "__init__.py").exists()
                  and not p.name.startswith("_"))


def _all_option_strings() -> set[str]:
    """Every ``--flag`` registered anywhere in the CLI parser tree."""
    out: set[str] = set()
    stack = [build_parser()]
    while stack:
        parser = stack.pop()
        for action in parser._actions:
            out.update(s for s in action.option_strings
                       if s.startswith("--"))
            if action.__class__.__name__ == "_SubParsersAction":
                stack.extend(action.choices.values())
    return out


class TestReadmeCoversCli:
    def test_all_subcommands_documented(self):
        readme = (REPO / "README.md").read_text()
        missing = [c for c in _subcommands() if f"`{c}" not in readme]
        assert not missing, (
            f"README.md CLI section is missing subcommand(s): {missing}"
        )

    def test_profile_flag_documented(self):
        readme = (REPO / "README.md").read_text()
        assert "--profile" in readme


class TestArchitectureCoversPackages:
    def test_architecture_doc_exists(self):
        assert (REPO / "docs" / "ARCHITECTURE.md").exists()

    def test_all_packages_mentioned(self):
        arch = (REPO / "docs" / "ARCHITECTURE.md").read_text()
        missing = [p for p in _packages() if f"repro.{p}" not in arch]
        assert not missing, (
            f"docs/ARCHITECTURE.md does not mention package(s): {missing}"
        )

    def test_linked_from_readme_and_tutorial(self):
        assert "ARCHITECTURE.md" in (REPO / "README.md").read_text()
        assert "ARCHITECTURE.md" in (REPO / "docs" / "TUTORIAL.md").read_text()


class TestObservabilityDoc:
    def test_exists_and_names_the_schema(self):
        doc = (REPO / "docs" / "OBSERVABILITY.md").read_text()
        from repro.observe import TRACE_SCHEMA

        assert TRACE_SCHEMA in doc
        assert "repro profile" in doc
        assert "sarb_integration" in doc

    def test_event_catalog_covers_every_decision_stage(self):
        """The stages-and-verdicts table must name every decision stage
        any subsystem emits (fixed stages literally, parameterized
        families as their ``<placeholder>`` template)."""
        doc = (REPO / "docs" / "OBSERVABILITY.md").read_text()
        fixed = ["parallelize", "pruning", "advisor", "guard", "fault",
                 "retry", "executor:fallback", "executor:snapshot-elide",
                 "fuzz:item", "fuzz:signature", "fuzz:shrink",
                 "fuzz:quarantine", "fuzz:campaign", "run:record",
                 "sample:resource", "batch:item", "batch:quarantine",
                 "batch:degraded", "batch:campaign", "cache:corrupt-entry"]
        missing = [s for s in fixed if f"`{s}`" not in doc]
        assert not missing, (
            f"docs/OBSERVABILITY.md event catalog is missing stage(s): "
            f"{missing}"
        )
        assert "`lint:<rule>`" in doc
        assert "`numeric:<kind>`" in doc

    def test_event_catalog_names_the_executor_spans(self):
        doc = (REPO / "docs" / "OBSERVABILITY.md").read_text()
        assert "exec.run.vectorized" in doc
        assert "exec.vectorized" in doc


class TestBenchmarkingDoc:
    """docs/BENCHMARKING.md must track the bench artifact machinery."""

    def test_exists_and_names_the_schema(self):
        doc = (REPO / "docs" / "BENCHMARKING.md").read_text()
        from repro.observe.bench import BENCH_SCHEMA

        assert BENCH_SCHEMA in doc
        assert "repro bench record" in doc
        assert "--fail-on-regress" in doc
        assert "BENCH_<n>.json" in doc

    def test_linked_from_readme_and_observability(self):
        assert "BENCHMARKING.md" in (REPO / "README.md").read_text()
        obs = (REPO / "docs" / "OBSERVABILITY.md").read_text()
        assert "BENCHMARKING.md" in obs and "--chrome" in obs

    def test_committed_baseline_exists_and_validates(self):
        """The *latest* committed artifact must carry the full current
        registry; earlier trajectory points keep their historical
        experiment sets."""
        from repro.bench import EXPERIMENTS, load_bench
        from repro.bench.record import bench_files

        trajectory = bench_files(REPO)
        assert trajectory, "no committed BENCH_<n>.json baseline"
        baseline = load_bench(trajectory[-1])
        assert set(baseline["experiments"]) == set(EXPERIMENTS)
        assert baseline["meta"]["repeats"] >= 3

    def test_ci_runs_the_regression_gate(self):
        ci = (REPO / ".github" / "workflows" / "ci.yml").read_text()
        assert "bench record" in ci
        assert "bench compare" in ci and "--fail-on-regress" in ci
        assert "upload-artifact" in ci

    def test_make_bench_records_an_artifact(self):
        make = (REPO / "Makefile").read_text()
        assert "repro bench record" in make
        assert "--benchmark-only" not in make


class TestStaticAnalysisDoc:
    """docs/STATIC_ANALYSIS.md must track the linter's rule registry."""

    def test_every_rule_documented(self):
        doc = (REPO / "docs" / "STATIC_ANALYSIS.md").read_text()
        from repro.lint import RULES

        missing = [rid for rid in RULES if f"`{rid}`" not in doc]
        assert not missing, (
            f"docs/STATIC_ANALYSIS.md is missing lint rule(s): {missing}"
        )

    def test_linked_from_readme_and_robustness(self):
        assert "STATIC_ANALYSIS.md" in (REPO / "README.md").read_text()
        assert "STATIC_ANALYSIS.md" in (
            REPO / "docs" / "ROBUSTNESS.md").read_text()

    def test_dataflow_surface_documented(self):
        """The dataflow engine's CLI surface must be shown in the doc:
        the lint flag, the range report, and the runtime crosscheck."""
        doc = (REPO / "docs" / "STATIC_ANALYSIS.md").read_text()
        for flag in ("--dataflow", "--ranges", "--crosscheck"):
            assert flag in doc, f"STATIC_ANALYSIS.md does not show {flag}"
        assert "repro.analysis.dataflow" in doc

    def test_every_dataflow_mutant_kind_documented(self):
        """Every corruption kind in the body-mutation corpus must appear
        in the self-test section's table."""
        doc = (REPO / "docs" / "STATIC_ANALYSIS.md").read_text()
        from repro.lint.mutation import MUTANTS

        kinds = {m.kind for m in MUTANTS}
        missing = [k for k in sorted(kinds) if f"`{k}`" not in doc]
        assert not missing, (
            f"docs/STATIC_ANALYSIS.md is missing mutant kind(s): {missing}"
        )

    def test_ci_runs_the_lint_gates(self):
        ci = (REPO / ".github" / "workflows" / "ci.yml").read_text()
        assert "repro lint" in ci
        assert "lint --dataflow" in ci
        assert "lint --selftest" in ci

    def test_make_lint_target(self):
        make = (REPO / "Makefile").read_text()
        assert "repro lint" in make
        assert "lint --dataflow" in make
        assert "lint --selftest" in make


class TestNumericsDoc:
    """docs/NUMERICS.md must track the numeric-integrity machinery."""

    def test_every_tolerance_policy_documented(self):
        doc = (REPO / "docs" / "NUMERICS.md").read_text()
        from repro.numeric import POLICIES

        missing = [name for name in POLICIES if f"`{name}`" not in doc]
        assert not missing, (
            f"docs/NUMERICS.md is missing tolerance policy(s): {missing}"
        )

    def test_every_sentinel_kind_documented(self):
        doc = (REPO / "docs" / "NUMERICS.md").read_text()
        from repro.numeric import SENTINEL_KINDS

        missing = [k for k in SENTINEL_KINDS if f"`{k}`" not in doc]
        assert not missing, (
            f"docs/NUMERICS.md is missing sentinel kind(s): {missing}"
        )

    def test_names_the_machinery(self):
        doc = (REPO / "docs" / "NUMERICS.md").read_text()
        assert "NumericIntegrityError" in doc
        assert "content_sha256" in doc
        assert "repro bench record" in doc and "--resume" in doc
        assert "--sentinels" in doc
        from repro.numeric import CHECKPOINT_SCHEMA

        assert CHECKPOINT_SCHEMA in doc

    def test_linked_from_companion_docs(self):
        assert "NUMERICS.md" in (REPO / "README.md").read_text()
        assert "NUMERICS.md" in (REPO / "docs" / "ROBUSTNESS.md").read_text()
        assert "NUMERICS.md" in (
            REPO / "docs" / "BENCHMARKING.md").read_text()

    def test_ci_runs_the_resume_smoke(self):
        ci = (REPO / ".github" / "workflows" / "ci.yml").read_text()
        assert "resume_smoke.py" in ci
        make = (REPO / "Makefile").read_text()
        assert "resume_smoke.py" in make
        assert (REPO / "scripts" / "resume_smoke.py").exists()

    def test_baseline_artifact_is_digest_stamped(self):
        import json

        from repro.bench import stamp_digest

        doc = json.loads((REPO / "BENCH_1.json").read_text())
        recorded = doc["environment"]["content_sha256"]
        assert stamp_digest(json.loads(
            (REPO / "BENCH_1.json").read_text()
        ))["environment"]["content_sha256"] == recorded


class TestRobustnessDoc:
    """docs/ROBUSTNESS.md must track the actual injection-site registry."""

    def test_every_registered_site_documented(self):
        doc = (REPO / "docs" / "ROBUSTNESS.md").read_text()
        from repro.robust import SITES

        missing = [name for name in SITES if f"`{name}`" not in doc]
        assert not missing, (
            f"docs/ROBUSTNESS.md is missing injection site(s): {missing}"
        )

    def test_every_fault_kind_documented(self):
        doc = (REPO / "docs" / "ROBUSTNESS.md").read_text()
        from repro.robust import SITES

        kinds = {k for site in SITES.values() for k in site.kinds}
        missing = [k for k in sorted(kinds) if f"`{k}`" not in doc]
        assert not missing, (
            f"docs/ROBUSTNESS.md is missing fault kind(s): {missing}"
        )

    def test_linked_from_readme(self):
        assert "ROBUSTNESS.md" in (REPO / "README.md").read_text()
        assert "faultcheck" in (REPO / "docs" / "ROBUSTNESS.md").read_text()


class TestExecutorsDoc:
    """docs/EXECUTORS.md must track the pluggable-executor machinery."""

    def test_every_executor_documented(self):
        doc = (REPO / "docs" / "EXECUTORS.md").read_text()
        from repro.glafexec import EXECUTOR_NAMES

        missing = [n for n in EXECUTOR_NAMES if f"`{n}`" not in doc]
        assert not missing, (
            f"docs/EXECUTORS.md is missing executor(s): {missing}"
        )

    def test_names_the_machinery(self):
        doc = (REPO / "docs" / "EXECUTORS.md").read_text()
        assert "--executor" in doc
        assert "REPRO_EXECUTOR" in doc
        assert "executor:fallback" in doc
        assert "liftability_report" in doc
        assert "X1" in doc
        from repro.bench.experiments import EXECUTOR_SPEEDUP_GATE

        assert f"{EXECUTOR_SPEEDUP_GATE:g}x" in doc

    def test_linked_from_readme_and_architecture(self):
        assert "EXECUTORS.md" in (REPO / "README.md").read_text()
        assert "EXECUTORS.md" in (
            REPO / "docs" / "ARCHITECTURE.md").read_text()

    def test_readme_has_measured_performance_section(self):
        readme = (REPO / "README.md").read_text()
        assert "## Performance" in readme
        assert "vectorized" in readme

    def test_ci_runs_the_vectorized_leg(self):
        ci = (REPO / ".github" / "workflows" / "ci.yml").read_text()
        assert "REPRO_EXECUTOR=vectorized" in ci
        assert "--executor vectorized" in ci
        make = (REPO / "Makefile").read_text()
        assert "REPRO_EXECUTOR=vectorized" in make
        assert "--executor vectorized" in make

    def test_speedup_experiment_registered(self):
        from repro.bench import EXPERIMENTS

        assert "X1" in EXPERIMENTS


class TestFuzzingDoc:
    """docs/FUZZING.md must track the fuzz-campaign machinery."""

    def test_exists_and_names_the_schemas(self):
        doc = (REPO / "docs" / "FUZZING.md").read_text()
        from repro.fuzz import BUNDLE_SCHEMA, SUMMARY_SCHEMA

        assert SUMMARY_SCHEMA in doc
        assert BUNDLE_SCHEMA in doc
        assert "repro fuzz" in doc
        assert "--resume" in doc and "--fault" in doc

    def test_every_profile_documented(self):
        doc = (REPO / "docs" / "FUZZING.md").read_text()
        from repro.fuzz import PROFILES

        missing = [n for n in PROFILES if f"`{n}`" not in doc]
        assert not missing, (
            f"docs/FUZZING.md is missing fuzz profile(s): {missing}"
        )

    def test_every_generator_kind_documented(self):
        doc = (REPO / "docs" / "FUZZING.md").read_text()
        from repro.fuzz import STEP_KINDS, STRUCTURE_KINDS

        missing = [k for k in (*STEP_KINDS, *STRUCTURE_KINDS)
                   if f"`{k}`" not in doc]
        assert not missing, (
            f"docs/FUZZING.md is missing generator kind(s): {missing}"
        )

    def test_linked_from_readme_and_robustness(self):
        assert "FUZZING.md" in (REPO / "README.md").read_text()
        assert "FUZZING.md" in (REPO / "docs" / "ROBUSTNESS.md").read_text()

    def test_crosscheck_documented(self):
        doc = (REPO / "docs" / "FUZZING.md").read_text()
        assert "--crosscheck" in doc
        assert "UnsoundBoundsProof" in doc

    def test_ci_runs_the_fuzz_campaign(self):
        ci = (REPO / ".github" / "workflows" / "ci.yml").read_text()
        assert "repro fuzz --seed 7 --count 25 --profile small" in ci
        assert "--crosscheck" in ci    # static-vs-runtime bounds oracle
        assert "fuzz_quarantine" in ci       # bundles ship as artifacts
        make = (REPO / "Makefile").read_text()
        assert "repro fuzz --seed 7 --count 25 --profile small" in make
        assert "--crosscheck" in make


class TestRunLedgerDoc:
    """docs/RUN_LEDGER.md must track the run-ledger machinery."""

    def test_exists_and_names_the_schemas(self):
        doc = (REPO / "docs" / "RUN_LEDGER.md").read_text()
        from repro.observe import INDEX_SCHEMA, RUN_SCHEMA

        assert RUN_SCHEMA in doc
        assert INDEX_SCHEMA in doc
        assert "RunLedgerError" in doc
        assert "REPRO_LEDGER" in doc

    def test_every_runs_subcommand_documented(self):
        """Every ``repro runs <sub>`` registered in the parser must be
        shown in the ledger doc."""
        parser = build_parser()
        runs = [a for a in parser._actions
                if a.__class__.__name__ == "_SubParsersAction"][0]
        runs_parser = runs.choices["runs"]
        subs = [a for a in runs_parser._actions
                if a.__class__.__name__ == "_SubParsersAction"]
        assert subs, "`repro runs` must register subcommands"
        doc = (REPO / "docs" / "RUN_LEDGER.md").read_text()
        missing = [c for c in sorted(subs[0].choices)
                   if f"runs {c}" not in doc]
        assert not missing, (
            f"docs/RUN_LEDGER.md is missing runs subcommand(s): {missing}"
        )

    def test_names_the_controls_and_exporters(self):
        doc = (REPO / "docs" / "RUN_LEDGER.md").read_text()
        for flag in ("--ledger", "--no-ledger", "--sample",
                     "--prometheus", "--chrome", "--keep"):
            assert flag in doc, f"RUN_LEDGER.md does not show {flag}"
        assert "`run:record`" in doc or "run:record" in doc
        assert "sample:resource" in doc
        assert "quarantine" in doc

    def test_linked_from_companion_docs(self):
        assert "RUN_LEDGER.md" in (REPO / "README.md").read_text()
        assert "RUN_LEDGER.md" in (
            REPO / "docs" / "OBSERVABILITY.md").read_text()
        assert "RUN_LEDGER.md" in (
            REPO / "docs" / "ARCHITECTURE.md").read_text()

    def test_ci_runs_the_ledger_selftest(self):
        ci = (REPO / ".github" / "workflows" / "ci.yml").read_text()
        assert "runs selftest" in ci
        assert ".repro/runs" in ci        # ledger ships as failure artifact
        make = (REPO / "Makefile").read_text()
        assert "runs selftest" in make


class TestBatchDocs:
    """docs/BATCH.md must track the batch-compiler machinery."""

    def test_exists_and_names_the_schemas(self):
        doc = (REPO / "docs" / "BATCH.md").read_text()
        from repro.batch import (ARTIFACT_SCHEMA, CACHE_SCHEMA,
                                 MANIFEST_SCHEMA, POISON_SCHEMA)

        for schema in (ARTIFACT_SCHEMA, CACHE_SCHEMA, MANIFEST_SCHEMA,
                       POISON_SCHEMA):
            assert schema in doc, f"BATCH.md does not name {schema}"
        assert "repro batch" in doc

    def test_shows_the_cli_surface(self):
        doc = (REPO / "docs" / "BATCH.md").read_text()
        for flag in ("--jobs", "--resume", "--timeout", "--retries",
                     "--seed", "--max-iterations", "--max-wall",
                     "--max-memory", "--cache", "--no-cache",
                     "--cache-max-entries", "--checkpoint",
                     "--quarantine", "--manifest"):
            assert flag in doc, f"BATCH.md does not show {flag}"

    def test_every_poison_kind_and_exit_code_documented(self):
        doc = (REPO / "docs" / "BATCH.md").read_text()
        from repro.batch import (POISON_CRASH_EXIT, POISON_KINDS,
                                 POISON_OOM_EXIT)

        missing = [k for k in POISON_KINDS if f"`{k}`" not in doc]
        assert not missing, (
            f"docs/BATCH.md is missing poison kind(s): {missing}"
        )
        assert f"`{POISON_CRASH_EXIT}`" in doc
        assert f"`{POISON_OOM_EXIT}`" in doc

    def test_documents_the_spawn_safety_contract(self):
        """Embedders must be told about the multiprocessing __main__
        guard, and the serial-degradation escape hatch must be named."""
        doc = (REPO / "docs" / "BATCH.md").read_text()
        assert 'if __name__ == "__main__"' in doc
        assert "batch:degraded" in doc

    def test_names_the_warm_cache_gates(self):
        doc = (REPO / "docs" / "BATCH.md").read_text()
        from repro.bench import EXPERIMENTS
        from repro.bench.experiments import (WARM_CACHE_HIT_GATE,
                                             WARM_CACHE_SPEEDUP_GATE)

        assert "X2" in EXPERIMENTS
        assert "X2" in doc
        assert f"{WARM_CACHE_HIT_GATE:.0%}" in doc
        assert f"{WARM_CACHE_SPEEDUP_GATE:g}x" in doc

    def test_linked_from_companion_docs(self):
        assert "BATCH.md" in (REPO / "README.md").read_text()
        assert "BATCH.md" in (REPO / "docs" / "ROBUSTNESS.md").read_text()
        assert "BATCH.md" in (REPO / "docs" / "ARCHITECTURE.md").read_text()
        assert "BATCH.md" in (
            REPO / "docs" / "OBSERVABILITY.md").read_text()
        assert "repro batch" in (REPO / "docs" / "TUTORIAL.md").read_text()

    def test_resume_smoke_covers_batch(self):
        script = (REPO / "scripts" / "resume_smoke.py").read_text()
        assert '"batch"' in script and "--resume" in script
        assert "load_manifest" in script

    def test_ci_runs_the_batch_smoke(self):
        ci = (REPO / ".github" / "workflows" / "ci.yml").read_text()
        assert "repro batch" in ci
        assert "poison:" in ci               # quarantine is exercised
        make = (REPO / "Makefile").read_text()
        assert "repro batch" in make
        assert "poison:" in make

    def test_chaos_test_exists(self):
        assert (REPO / "tests" / "integration"
                / "test_batch_chaos.py").exists()


class TestTutorialFlags:
    """Every ``--flag`` the tutorial shows must exist in the CLI, so the
    walkthrough cannot drift from the actual flag vocabulary."""

    def test_every_tutorial_flag_exists_in_cli(self):
        import re

        doc = (REPO / "docs" / "TUTORIAL.md").read_text()
        shown = set(re.findall(r"--[a-z][a-z0-9-]*", doc))
        assert shown, "tutorial should demonstrate CLI flags"
        known = _all_option_strings()
        unknown = sorted(shown - known)
        assert not unknown, (
            f"docs/TUTORIAL.md shows flag(s) the CLI does not have: "
            f"{unknown}"
        )

    def test_tutorial_covers_the_current_flags(self):
        doc = (REPO / "docs" / "TUTORIAL.md").read_text()
        for flag in ("--resume", "--sentinels", "--executor", "--sample"):
            assert flag in doc, f"tutorial does not demonstrate {flag}"
        assert "repro runs" in doc
