"""Docs stay in sync with the code they describe.

Two invariants, enforced so a new CLI subcommand or package cannot land
without its documentation:

* every ``repro`` subcommand registered in :func:`repro.cli.build_parser`
  is documented in ``README.md``;
* every public package under ``src/repro/`` is mentioned in
  ``docs/ARCHITECTURE.md``.
"""

from pathlib import Path

import pytest

from repro.cli import build_parser

REPO = Path(__file__).resolve().parents[2]


def _subcommands() -> list[str]:
    parser = build_parser()
    subparsers = [a for a in parser._actions
                  if a.__class__.__name__ == "_SubParsersAction"]
    assert subparsers, "build_parser() must register subcommands"
    return sorted(subparsers[0].choices)


def _packages() -> list[str]:
    src = REPO / "src" / "repro"
    return sorted(p.name for p in src.iterdir()
                  if p.is_dir() and (p / "__init__.py").exists()
                  and not p.name.startswith("_"))


class TestReadmeCoversCli:
    def test_all_subcommands_documented(self):
        readme = (REPO / "README.md").read_text()
        missing = [c for c in _subcommands() if f"`{c}" not in readme]
        assert not missing, (
            f"README.md CLI section is missing subcommand(s): {missing}"
        )

    def test_profile_flag_documented(self):
        readme = (REPO / "README.md").read_text()
        assert "--profile" in readme


class TestArchitectureCoversPackages:
    def test_architecture_doc_exists(self):
        assert (REPO / "docs" / "ARCHITECTURE.md").exists()

    def test_all_packages_mentioned(self):
        arch = (REPO / "docs" / "ARCHITECTURE.md").read_text()
        missing = [p for p in _packages() if f"repro.{p}" not in arch]
        assert not missing, (
            f"docs/ARCHITECTURE.md does not mention package(s): {missing}"
        )

    def test_linked_from_readme_and_tutorial(self):
        assert "ARCHITECTURE.md" in (REPO / "README.md").read_text()
        assert "ARCHITECTURE.md" in (REPO / "docs" / "TUTORIAL.md").read_text()


class TestObservabilityDoc:
    def test_exists_and_names_the_schema(self):
        doc = (REPO / "docs" / "OBSERVABILITY.md").read_text()
        from repro.observe import TRACE_SCHEMA

        assert TRACE_SCHEMA in doc
        assert "repro profile" in doc
        assert "sarb_integration" in doc


class TestBenchmarkingDoc:
    """docs/BENCHMARKING.md must track the bench artifact machinery."""

    def test_exists_and_names_the_schema(self):
        doc = (REPO / "docs" / "BENCHMARKING.md").read_text()
        from repro.observe.bench import BENCH_SCHEMA

        assert BENCH_SCHEMA in doc
        assert "repro bench record" in doc
        assert "--fail-on-regress" in doc
        assert "BENCH_<n>.json" in doc

    def test_linked_from_readme_and_observability(self):
        assert "BENCHMARKING.md" in (REPO / "README.md").read_text()
        obs = (REPO / "docs" / "OBSERVABILITY.md").read_text()
        assert "BENCHMARKING.md" in obs and "--chrome" in obs

    def test_committed_baseline_exists_and_validates(self):
        from repro.bench import load_bench

        baseline = load_bench(REPO / "BENCH_1.json")
        from repro.bench import EXPERIMENTS

        assert set(baseline["experiments"]) == set(EXPERIMENTS)
        assert baseline["meta"]["repeats"] >= 3

    def test_ci_runs_the_regression_gate(self):
        ci = (REPO / ".github" / "workflows" / "ci.yml").read_text()
        assert "bench record" in ci
        assert "bench compare" in ci and "--fail-on-regress" in ci
        assert "upload-artifact" in ci

    def test_make_bench_records_an_artifact(self):
        make = (REPO / "Makefile").read_text()
        assert "repro bench record" in make
        assert "--benchmark-only" not in make


class TestStaticAnalysisDoc:
    """docs/STATIC_ANALYSIS.md must track the linter's rule registry."""

    def test_every_rule_documented(self):
        doc = (REPO / "docs" / "STATIC_ANALYSIS.md").read_text()
        from repro.lint import RULES

        missing = [rid for rid in RULES if f"`{rid}`" not in doc]
        assert not missing, (
            f"docs/STATIC_ANALYSIS.md is missing lint rule(s): {missing}"
        )

    def test_linked_from_readme_and_robustness(self):
        assert "STATIC_ANALYSIS.md" in (REPO / "README.md").read_text()
        assert "STATIC_ANALYSIS.md" in (
            REPO / "docs" / "ROBUSTNESS.md").read_text()

    def test_ci_runs_the_lint_gates(self):
        ci = (REPO / ".github" / "workflows" / "ci.yml").read_text()
        assert "repro lint" in ci
        assert "lint --selftest" in ci

    def test_make_lint_target(self):
        make = (REPO / "Makefile").read_text()
        assert "repro lint" in make
        assert "lint --selftest" in make


class TestNumericsDoc:
    """docs/NUMERICS.md must track the numeric-integrity machinery."""

    def test_every_tolerance_policy_documented(self):
        doc = (REPO / "docs" / "NUMERICS.md").read_text()
        from repro.numeric import POLICIES

        missing = [name for name in POLICIES if f"`{name}`" not in doc]
        assert not missing, (
            f"docs/NUMERICS.md is missing tolerance policy(s): {missing}"
        )

    def test_every_sentinel_kind_documented(self):
        doc = (REPO / "docs" / "NUMERICS.md").read_text()
        from repro.numeric import SENTINEL_KINDS

        missing = [k for k in SENTINEL_KINDS if f"`{k}`" not in doc]
        assert not missing, (
            f"docs/NUMERICS.md is missing sentinel kind(s): {missing}"
        )

    def test_names_the_machinery(self):
        doc = (REPO / "docs" / "NUMERICS.md").read_text()
        assert "NumericIntegrityError" in doc
        assert "content_sha256" in doc
        assert "repro bench record" in doc and "--resume" in doc
        assert "--sentinels" in doc
        from repro.numeric import CHECKPOINT_SCHEMA

        assert CHECKPOINT_SCHEMA in doc

    def test_linked_from_companion_docs(self):
        assert "NUMERICS.md" in (REPO / "README.md").read_text()
        assert "NUMERICS.md" in (REPO / "docs" / "ROBUSTNESS.md").read_text()
        assert "NUMERICS.md" in (
            REPO / "docs" / "BENCHMARKING.md").read_text()

    def test_ci_runs_the_resume_smoke(self):
        ci = (REPO / ".github" / "workflows" / "ci.yml").read_text()
        assert "resume_smoke.py" in ci
        make = (REPO / "Makefile").read_text()
        assert "resume_smoke.py" in make
        assert (REPO / "scripts" / "resume_smoke.py").exists()

    def test_baseline_artifact_is_digest_stamped(self):
        import json

        from repro.bench import stamp_digest

        doc = json.loads((REPO / "BENCH_1.json").read_text())
        recorded = doc["environment"]["content_sha256"]
        assert stamp_digest(json.loads(
            (REPO / "BENCH_1.json").read_text()
        ))["environment"]["content_sha256"] == recorded


class TestRobustnessDoc:
    """docs/ROBUSTNESS.md must track the actual injection-site registry."""

    def test_every_registered_site_documented(self):
        doc = (REPO / "docs" / "ROBUSTNESS.md").read_text()
        from repro.robust import SITES

        missing = [name for name in SITES if f"`{name}`" not in doc]
        assert not missing, (
            f"docs/ROBUSTNESS.md is missing injection site(s): {missing}"
        )

    def test_every_fault_kind_documented(self):
        doc = (REPO / "docs" / "ROBUSTNESS.md").read_text()
        from repro.robust import SITES

        kinds = {k for site in SITES.values() for k in site.kinds}
        missing = [k for k in sorted(kinds) if f"`{k}`" not in doc]
        assert not missing, (
            f"docs/ROBUSTNESS.md is missing fault kind(s): {missing}"
        )

    def test_linked_from_readme(self):
        assert "ROBUSTNESS.md" in (REPO / "README.md").read_text()
        assert "faultcheck" in (REPO / "docs" / "ROBUSTNESS.md").read_text()
