"""Unit tests for the bench harness and experiment registry."""

import pytest

from repro.bench import EXPERIMENTS, ExperimentResult, format_table, get_experiment
from repro.bench.harness import Experiment, run_and_format


class TestHarness:
    def _result(self):
        return ExperimentResult(
            experiment_id="X1",
            title="demo",
            headers=["name", "value"],
            rows=[["alpha", 1.234567], ["beta", 0.0001234]],
            notes="a note",
        )

    def test_format_table_alignment(self):
        text = format_table(self._result())
        lines = text.splitlines()
        assert lines[0].startswith("== X1: demo")
        assert "name" in lines[1] and "value" in lines[1]
        assert "alpha" in lines[3]
        assert text.endswith("a note")

    def test_small_floats_keep_precision(self):
        text = format_table(self._result())
        assert "0.00012" in text

    def test_column_and_as_dict(self):
        r = self._result()
        assert r.column("name") == ["alpha", "beta"]
        assert r.as_dict() == {"alpha": 1.234567, "beta": 0.0001234}

    def test_run_and_format(self):
        exp = Experiment("X1", "demo", "none", self._result)
        result, text = run_and_format(exp)
        assert result.experiment_id == "X1"
        assert "X1" in text


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        assert set(EXPERIMENTS) == {"T1", "T2", "F5", "F6", "F7", "C1", "C2",
                                    "X1", "X2"}

    def test_get_experiment(self):
        assert get_experiment("F5").paper_ref == "Figure 5"
        with pytest.raises(KeyError):
            get_experiment("F9")

    @pytest.mark.parametrize("exp_id", ["T1", "T2", "F5", "F6"])
    def test_fast_experiments_run(self, exp_id):
        result = EXPERIMENTS[exp_id].run()
        assert result.rows
        assert result.experiment_id == exp_id

    def test_figure5_rows_mirror_paper_keys(self):
        from repro.sarb.perffig import PAPER_FIGURE5

        result = EXPERIMENTS["F5"].run()
        assert [r[0] for r in result.rows] == list(PAPER_FIGURE5)

    def test_figure7_includes_manual_row(self):
        result = EXPERIMENTS["F7"].run()
        labels = [r[0] for r in result.rows]
        assert "manual parallel (original, outermost)" in labels
        assert len(labels) == 33  # 32 combos + manual
