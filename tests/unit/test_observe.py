"""Unit tests for the :mod:`repro.observe` subsystem."""

import json
import threading
import time

import pytest

from repro import observe
from repro.observe import (
    NULL_DECISIONS,
    NULL_METRICS,
    NULL_TRACER,
    DecisionLog,
    MetricsRegistry,
    Tracer,
    trace_to_json,
)


class TestSpans:
    def test_nesting_builds_a_tree(self):
        t = Tracer()
        with t.span("a"):
            with t.span("b", k=1):
                pass
            with t.span("b"):
                with t.span("c"):
                    pass
        assert len(t.roots) == 1
        root = t.roots[0]
        assert root.name == "a"
        assert [c.name for c in root.children] == ["b", "b"]
        assert [c.name for c in root.children[1].children] == ["c"]
        assert root.children[0].attrs == {"k": 1}

    def test_durations_are_monotone(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                time.sleep(0.002)
        outer, = t.roots
        inner, = outer.children
        assert inner.duration > 0
        assert outer.duration >= inner.duration

    def test_set_and_annotate_attach_attrs(self):
        t = Tracer()
        with t.span("s") as sp:
            sp.set(x=1)
            t.annotate(y=2)
        assert t.roots[0].attrs == {"x": 1, "y": 2}

    def test_exception_still_closes_span(self):
        t = Tracer()
        with pytest.raises(ValueError):
            with t.span("boom"):
                raise ValueError()
        assert t.roots[0].end is not None
        assert t.current() is None

    def test_sibling_spans_in_threads_become_separate_roots(self):
        t = Tracer()

        def work(i):
            with t.span("worker", i=i):
                pass

        threads = [threading.Thread(target=work, args=(i,)) for i in range(8)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert len(t.roots) == 8
        assert {s.name for s in t.roots} == {"worker"}


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        m = MetricsRegistry()
        m.counter("c").inc()
        m.counter("c").inc(4)
        m.gauge("g").set(2.5)
        h = m.histogram("h")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        snap = m.snapshot()
        assert snap["counters"]["c"] == 5
        assert snap["gauges"]["g"] == 2.5
        assert snap["histograms"]["h"]["count"] == 3
        assert snap["histograms"]["h"]["min"] == 1.0
        assert snap["histograms"]["h"]["max"] == 3.0
        assert abs(snap["histograms"]["h"]["mean"] - 2.0) < 1e-12

    def test_registry_is_thread_safe(self):
        m = MetricsRegistry()
        n, per = 16, 500

        def work():
            for _ in range(per):
                m.counter("hits").inc()
                m.histogram("obs").observe(1.0)

        threads = [threading.Thread(target=work) for _ in range(n)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert m.counter("hits").value == n * per
        assert m.histogram("obs").count == n * per

    def test_histogram_sample_cap(self):
        h = MetricsRegistry().histogram("h")
        for i in range(10_000):
            h.observe(float(i))
        assert h.count == 10_000
        assert len(h._samples) <= 4096
        assert h.percentile(50) > 0

    def test_histogram_reservoir_percentiles_stay_stable(self):
        # Regression: the old decimation (`samples[::2]` + append) kept
        # every other early value and *all* recent ones, so a uniform
        # stream read back with badly skewed percentiles.  Reservoir
        # sampling keeps every observation equally likely to survive:
        # the median of 0..99999 must stay near 50k even though only
        # 4096 samples are retained.
        h = MetricsRegistry().histogram("h")
        n = 100_000
        for i in range(n):
            h.observe(float(i))
        assert len(h._samples) == 4096
        for q, expected in ((25, n * 0.25), (50, n * 0.50), (75, n * 0.75)):
            got = h.percentile(q)
            assert abs(got - expected) < n * 0.05, (
                f"p{q} drifted: got {got}, expected ~{expected}")

    def test_histogram_reservoir_is_deterministic_per_name(self):
        def fill(name):
            h = MetricsRegistry().histogram(name)
            for i in range(20_000):
                h.observe(float(i))
            return list(h._samples)

        assert fill("same") == fill("same")      # seeded by name: stable

    def test_histogram_summary_is_not_torn_under_writes(self):
        # Regression: summary() used to read count/total/min/max without
        # the lock, so a concurrent writer could yield a snapshot whose
        # mean != sum/count.  With a constant stream every consistent
        # snapshot has sum == count * 1.0 exactly.
        h = MetricsRegistry().histogram("torn")
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                h.observe(1.0)

        th = threading.Thread(target=writer)
        th.start()
        try:
            for _ in range(2_000):
                s = h.summary()
                assert s["sum"] == s["count"] * 1.0
                if s["count"]:
                    assert s["min"] == s["max"] == 1.0
                    assert s["mean"] == 1.0
        finally:
            stop.set()
            th.join()


class TestDecisionLog:
    def test_record_and_group(self):
        d = DecisionLog()
        d.record("parallelize", "f", 0, "init", "parallel",
                 loop_class="zero-init", reasons=["ok"])
        d.record("pruning", "f", 0, "init", "pruned",
                 loop_class="zero-init", variant="v1")
        d.record("parallelize", "g", 1, "sweep", "serial")
        grouped = d.by_function()
        assert list(grouped) == ["f", "g"]
        assert [e.verdict for e in grouped["f"]] == ["parallel", "pruned"]
        assert d.for_stage("pruning")[0].attrs == (("variant", "v1"),)


class TestNoopDefaults:
    def test_defaults_are_the_null_singletons(self):
        assert observe.get_tracer() is NULL_TRACER
        assert observe.get_metrics() is NULL_METRICS
        assert observe.get_decisions() is NULL_DECISIONS
        assert not observe.is_observing()

    def test_null_tracer_reuses_one_span_object(self):
        a = NULL_TRACER.span("x", k=1)
        b = NULL_TRACER.span("y")
        assert a is b
        with a as sp:
            sp.set(ignored=True)
        assert list(NULL_TRACER.all_spans()) == []

    def test_null_instruments_record_nothing(self):
        NULL_METRICS.counter("c").inc(100)
        NULL_METRICS.histogram("h").observe(1.0)
        NULL_DECISIONS.record("parallelize", "f", 0, "s", "parallel")
        assert NULL_METRICS.snapshot()["counters"] == {}
        assert NULL_DECISIONS.by_function() == {}

    def test_noop_overhead_is_negligible(self):
        # The disabled path must stay within the same order of magnitude as
        # a bare function call: 50k no-op spans in well under a second even
        # on a loaded CI box (a real tracer costs ~50x more).
        tracer = observe.get_tracer()
        assert not tracer.enabled
        t0 = time.perf_counter()
        for _ in range(50_000):
            with tracer.span("hot.loop"):
                pass
        elapsed = time.perf_counter() - t0
        assert elapsed < 1.0
        assert list(tracer.all_spans()) == []

    def test_instrumented_pipeline_records_nothing_by_default(self):
        from repro.optimize import make_plan
        from repro.sarb import build_sarb_program

        make_plan(build_sarb_program(), "GLAF-parallel v1")
        assert observe.get_metrics().snapshot()["counters"] == {}
        assert list(observe.get_tracer().all_spans()) == []


class TestObservedSession:
    def test_observed_installs_and_restores(self):
        before = observe.get_tracer()
        with observe.observed() as obs:
            assert observe.get_tracer() is obs.tracer
            assert observe.get_metrics() is obs.metrics
            assert observe.get_decisions() is obs.decisions
            assert observe.is_observing()
        assert observe.get_tracer() is before
        assert not observe.is_observing()

    def test_observed_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with observe.observed():
                raise RuntimeError()
        assert not observe.is_observing()

    def test_observed_nests(self):
        with observe.observed() as outer:
            with observe.observed() as inner:
                assert observe.get_tracer() is inner.tracer
            assert observe.get_tracer() is outer.tracer

    def test_pipeline_under_observation(self):
        from repro.codegen import generate_fortran_module
        from repro.optimize import make_plan
        from repro.sarb import build_sarb_program

        with observe.observed() as obs:
            plan = make_plan(build_sarb_program(), "GLAF-parallel v2")
            generate_fortran_module(plan)
        names = {s.name for s in obs.tracer.all_spans()}
        assert {"optimize.plan", "analysis.parallelize", "analysis.step",
                "optimize.pruning", "codegen.fortran"} <= names
        snap = obs.metrics.snapshot()
        assert snap["counters"]["analysis.steps"] == 26
        assert snap["counters"]["codegen.fortran.lines"] > 100
        stages = {d.stage for d in obs.decisions.events}
        assert stages == {"parallelize", "pruning"}
        # Table-2 explainability: v2 prunes simple single loops.
        pruned = [d for d in obs.decisions.for_stage("pruning")
                  if d.verdict == "pruned"]
        assert any(d.loop_class == "simple-single" for d in pruned)


class TestAdvisorDecisions:
    def test_advisor_emits_structured_choices(self):
        from repro.optimize import advise
        from repro.perf import i5_2400
        from repro.sarb import build_sarb_program, sarb_workload

        with observe.observed() as obs:
            _, report = advise(build_sarb_program(), i5_2400, sarb_workload(),
                               threads=4)
        events = obs.decisions.for_stage("advisor")
        assert len(events) == len(report.decisions)
        assert {e.verdict for e in events} <= {"omp", "simd", "none"}
        assert all("model cycles" in e.reasons[0] for e in events)
        assert any(s.name == "optimize.advisor"
                   for s in obs.tracer.all_spans())


class TestReporting:
    @pytest.fixture(scope="class")
    def obs(self):
        from repro.codegen import generate_fortran_module
        from repro.optimize import make_plan
        from repro.sarb import build_sarb_program

        with observe.observed() as obs:
            with obs.tracer.span("pipeline"):
                plan = make_plan(build_sarb_program(), "GLAF-parallel v1")
                generate_fortran_module(plan)
        return obs

    def test_render_tree(self, obs):
        text = observe.render_tree(obs.tracer)
        assert "pipeline" in text
        assert "optimize.plan" in text
        assert "analysis.step x26" in text       # siblings aggregate
        assert "ms" in text

    def test_stage_summary(self, obs):
        text = observe.render_stage_summary(obs.tracer)
        for stage in ("analysis", "optimize", "codegen"):
            assert stage in text
        rows = observe.stage_totals(obs.tracer)
        by = {r["stage"]: r for r in rows}
        assert by["analysis"]["calls"] >= 26
        # Self time never exceeds cumulative time for a top-level stage.
        assert by["optimize"]["self_s"] <= by["optimize"]["cumulative_s"] + 1e-9

    def test_render_decisions_groups_by_function(self, obs):
        text = observe.render_decisions(obs.decisions)
        assert "longwave_entropy_model" in text
        assert "[parallelize:parallel]" in text
        assert "[pruning:" in text

    def test_json_roundtrip(self, obs):
        doc = obs.to_json(project="test")
        blob = json.dumps(doc)
        back = json.loads(blob)
        assert back["schema"] == observe.TRACE_SCHEMA
        assert back["meta"] == {"project": "test"}
        assert back["spans"][0]["name"] == "pipeline"
        assert back["spans"][0]["duration_s"] > 0
        child_names = {c["name"] for c in back["spans"][0]["children"]}
        assert "optimize.plan" in child_names
        assert back["metrics"]["counters"]["analysis.steps"] == 26
        assert any(d["stage"] == "pruning" for d in back["decisions"])
        assert {r["stage"] for r in back["stages"]} >= {"analysis", "codegen"}

    def test_trace_to_json_without_extras(self):
        t = Tracer()
        with t.span("only"):
            pass
        doc = trace_to_json(t)
        assert "metrics" not in doc and "decisions" not in doc
        assert doc["spans"][0]["name"] == "only"

    def test_full_report(self, obs):
        text = obs.report(title="unit test")
        assert "== unit test ==" in text
        assert "-- span tree --" in text
        assert "-- per-stage summary --" in text
        assert "-- metrics --" in text
        assert "-- parallelization decisions --" in text


class TestReportingEdgeCases:
    def test_empty_trace_renders_placeholders(self):
        t = Tracer()
        assert observe.render_tree(t) == "(no spans recorded)"
        assert observe.render_stage_summary(t) == "(no stages recorded)"
        assert observe.stage_totals(t) == []

    def test_empty_trace_to_json(self):
        doc = trace_to_json(Tracer())
        assert doc["spans"] == [] and doc["stages"] == []
        json.dumps(doc)

    def test_null_tracer_reports_empty(self):
        assert observe.render_tree(NULL_TRACER) == "(no spans recorded)"
        assert observe.to_chrome_trace(NULL_TRACER)["traceEvents"] == []

    def test_deeply_nested_spans_respect_max_depth(self):
        t = Tracer()
        from contextlib import ExitStack

        with ExitStack() as stack:
            for i in range(20):
                stack.enter_context(t.span(f"deep.level{i}"))
        text = observe.render_tree(t, max_depth=5)
        assert "deep.level4" in text
        assert "deep.level5" not in text
        # But the full walk still sees every span.
        assert sum(1 for _ in t.all_spans()) == 20

    def test_zero_duration_spans(self):
        clock = lambda: 42.0                    # frozen: every span lasts 0s
        t = Tracer(clock=clock)
        with t.span("fast.outer"):
            with t.span("fast.inner"):
                pass
        assert all(s.duration == 0.0 for s in t.all_spans())
        assert "0.000ms" in observe.render_tree(t)
        rows = observe.stage_totals(t)
        assert rows[0]["cumulative_s"] == 0.0 and rows[0]["self_s"] == 0.0
        events = [e for e in observe.to_chrome_trace(t)["traceEvents"]
                  if e["ph"] == "X"]
        assert all(e["dur"] == 0.0 for e in events)


class TestChromeTrace:
    @pytest.fixture()
    def tracer(self):
        steps = iter(range(100))
        t = Tracer(clock=lambda: next(steps) * 0.001)
        with t.span("pipeline", variant="v2"):
            with t.span("analysis.step", arrays=["a", "b"]):
                pass
            with t.span("codegen.fortran"):
                pass
        return t

    def test_events_mirror_spans(self, tracer):
        doc = observe.to_chrome_trace(tracer, project="x")
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert [e["name"] for e in events] == [
            "pipeline", "analysis.step", "codegen.fortran"]
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"] == {"project": "x"}

    def test_categories_are_pipeline_stages(self, tracer):
        doc = observe.to_chrome_trace(tracer)
        cats = {e["name"]: e["cat"] for e in doc["traceEvents"]
                if e["ph"] == "X"}
        assert cats["analysis.step"] == "analysis"
        assert cats["pipeline"] == "pipeline"

    def test_children_are_contained_in_parents(self, tracer):
        events = {e["name"]: e
                  for e in observe.to_chrome_trace(tracer)["traceEvents"]
                  if e["ph"] == "X"}
        parent, child = events["pipeline"], events["analysis.step"]
        assert parent["ts"] <= child["ts"]
        assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"]

    def test_thread_metadata_events(self, tracer):
        doc = observe.to_chrome_trace(tracer)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(meta) == 1
        assert meta[0]["name"] == "thread_name"
        tids = {e["tid"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert tids == {meta[0]["tid"]}

    def test_non_primitive_attrs_are_stringified(self, tracer):
        doc = observe.to_chrome_trace(tracer)
        step = [e for e in doc["traceEvents"]
                if e["ph"] == "X" and e["name"] == "analysis.step"][0]
        assert step["args"]["arrays"] == "['a', 'b']"
        json.dumps(doc)                          # fully serializable

    def test_roundtrip_preserves_span_count_and_time(self, tracer):
        blob = json.dumps(observe.to_chrome_trace(tracer))
        back = json.loads(blob)
        events = [e for e in back["traceEvents"] if e["ph"] == "X"]
        assert len(events) == sum(1 for _ in tracer.all_spans())
        for span in tracer.all_spans():
            match = [e for e in events if e["name"] == span.name]
            assert len(match) == 1
            assert match[0]["dur"] == pytest.approx(span.duration * 1e6)

    def test_observation_exports_chrome(self):
        with observe.observed() as obs:
            with obs.tracer.span("exec.run"):
                pass
        doc = obs.to_chrome_trace(label="demo")
        assert doc["otherData"] == {"label": "demo"}
        assert any(e["name"] == "exec.run" for e in doc["traceEvents"])

    def test_counters_become_counter_events(self):
        # Regression: counters used to be dropped from the Chrome export
        # entirely — the trace showed spans but no metric tracks.
        with observe.observed() as obs:
            with obs.tracer.span("exec.run"):
                obs.metrics.counter("exec.interp.calls").inc(7)
                obs.metrics.gauge("sample.rss_mb").set(42.5)
        doc = obs.to_chrome_trace()
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        by_name = {}
        for e in counters:
            by_name.setdefault(e["name"], []).append(e)
        # Two points per counter (zero at the epoch, final at the end)
        # so the UI draws a track, not an isolated dot.
        assert [e["args"]["value"] for e in by_name["exec.interp.calls"]] \
            == [0, 7]
        assert all(e["cat"] == "metric" for e in counters)
        assert by_name["sample.rss_mb"][-1]["args"]["value"] == 42.5
        json.dumps(doc)

    def test_decisions_become_instant_events(self):
        with observe.observed() as obs:
            with obs.tracer.span("exec.run"):
                obs.decisions.record("guard", "adjust2", 1, "sweep",
                                     "fallback", reasons=["diverged"])
        doc = obs.to_chrome_trace()
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 1
        inst = instants[0]
        assert inst["name"] == "guard:fallback"
        assert inst["cat"] == "guard"
        assert inst["s"] == "g"
        assert inst["ts"] >= 0
        assert inst["args"]["function"] == "adjust2"

    def test_sample_series_becomes_counter_tracks(self):
        with observe.observed() as obs:
            with obs.tracer.span("exec.run"):
                pass
        doc = obs.to_chrome_trace(samples=[
            {"t": 0.0, "rss_mb": 10.0, "cpu_s": 0.1, "gc_gen0": 3},
            {"t": 0.05, "rss_mb": 12.0, "cpu_s": 0.2, "gc_gen0": 5},
        ])
        rss = [e for e in doc["traceEvents"]
               if e["ph"] == "C" and e["name"] == "sample.rss_mb"]
        assert [e["args"]["value"] for e in rss] == [10.0, 12.0]
        assert rss[0]["cat"] == "sample"
        assert rss[1]["ts"] == pytest.approx(0.05 * 1e6)
