"""Unit tests for repro.core.types."""

import numpy as np
import pytest

from repro.core.types import (
    DerivedType,
    GlafType,
    T_INT,
    T_LOGICAL,
    T_REAL,
    T_REAL8,
    T_VOID,
    c_decl,
    fortran_decl,
    is_numeric,
    numpy_dtype,
    opencl_decl,
    promote,
)


class TestDtypeMaps:
    def test_numpy_dtypes(self):
        assert numpy_dtype(T_INT) == np.dtype(np.int64)
        assert numpy_dtype(T_REAL) == np.dtype(np.float32)
        assert numpy_dtype(T_REAL8) == np.dtype(np.float64)
        assert numpy_dtype(T_LOGICAL) == np.dtype(np.bool_)

    def test_void_has_no_dtype(self):
        with pytest.raises(ValueError):
            numpy_dtype(T_VOID)

    def test_fortran_decls(self):
        assert fortran_decl(T_INT) == "INTEGER"
        assert fortran_decl(T_REAL8) == "REAL(KIND=8)"
        assert fortran_decl(T_LOGICAL) == "LOGICAL"

    def test_void_selects_subroutine_not_a_decl(self):
        with pytest.raises(ValueError):
            fortran_decl(T_VOID)

    def test_c_decls(self):
        assert c_decl(T_REAL8) == "double"
        assert c_decl(T_INT) == "long"
        assert c_decl(T_VOID) == "void"

    def test_opencl_decls(self):
        assert opencl_decl(T_REAL8) == "double"
        assert opencl_decl(T_REAL) == "float"


class TestPromotion:
    def test_int_real_promotes_to_real(self):
        assert promote(T_INT, T_REAL) is T_REAL

    def test_real_real8_promotes_to_real8(self):
        assert promote(T_REAL, T_REAL8) is T_REAL8

    def test_symmetric(self):
        assert promote(T_REAL8, T_INT) is promote(T_INT, T_REAL8)

    def test_non_numeric_rejected(self):
        with pytest.raises(ValueError):
            promote(T_INT, GlafType.T_CHAR)

    def test_is_numeric(self):
        assert is_numeric(T_INT) and is_numeric(T_REAL8)
        assert not is_numeric(T_LOGICAL)
        assert not is_numeric(T_VOID)


class TestDerivedType:
    def test_fields_and_lookup(self):
        dt = DerivedType("rad_input", {"tsfc": (T_REAL8, 0), "pres": (T_REAL8, 1)})
        assert dt.has_field("tsfc")
        assert dt.has_field("TSFC")  # case-insensitive like FORTRAN
        assert dt.field("pres") == (T_REAL8, 1)

    def test_missing_field(self):
        dt = DerivedType("t", {"a": (T_INT, 0)})
        assert not dt.has_field("b")
        with pytest.raises(KeyError):
            dt.field("b")

    def test_void_field_rejected(self):
        with pytest.raises(ValueError):
            DerivedType("t", {"a": (T_VOID, 0)})

    def test_negative_rank_rejected(self):
        with pytest.raises(ValueError):
            DerivedType("t", {"a": (T_INT, -1)})
