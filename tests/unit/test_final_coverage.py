"""Final coverage batch: firstprivate emission, early-exit trip modelling,
whole-array call arguments, and generated-code determinism."""

import numpy as np
import pytest

from repro.codegen import generate_fortran_module
from repro.core import GlafBuilder, I, T_INT, T_REAL8, T_VOID, lib, ref
from repro.core.builder import StepBuilder as SB
from repro.optimize import make_plan
from repro.perf import SimOptions, Workload, i5_2400, simulate


class TestFirstprivateEmission:
    def test_read_before_write_temp_gets_firstprivate(self):
        b = GlafBuilder("fp")
        m = b.module("M")
        f = m.function("f", return_type=T_VOID)
        f.param("n", T_INT, intent="in")
        f.param("a", T_REAL8, dims=("n",), intent="inout")
        f.local("seed", T_REAL8, init_data=2.0)
        s = f.step()
        s.foreach(i=(1, "n"))
        s.formula(ref("a", I("i")), ref("seed") * I("i"))   # read first...
        s.formula(ref("seed"), ref("a", I("i")))            # ...then written
        program = b.build()
        src = generate_fortran_module(make_plan(program, "GLAF-parallel v0"))
        assert "FIRSTPRIVATE(seed)" in src


class TestEarlyExitModelling:
    def _search_program(self):
        b = GlafBuilder("se")
        m = b.module("M")
        f = m.function("find", return_type=T_INT)
        f.param("n", T_INT, intent="in")
        f.param("v", T_REAL8, dims=("n",), intent="in")
        s = f.step("scan")
        s.foreach(i=(1, "n"))
        s.if_(ref("v", I("i")).gt(0.0), [SB.ret(I("i"))])
        f.returns(-1)
        return b.build()

    def test_early_exit_fraction_scales_cost(self):
        program = self._search_program()
        plan = make_plan(program, "GLAF serial")
        full = simulate(plan, i5_2400,
                        Workload(name="w", entry="find", sizes={"n": 10000},
                                 early_exit_fractions={("find", 0): 1.0}),
                        SimOptions(threads=1))
        early = simulate(plan, i5_2400,
                         Workload(name="w", entry="find", sizes={"n": 10000},
                                  early_exit_fractions={("find", 0): 0.1}),
                         SimOptions(threads=1))
        assert early.total_cycles < full.total_cycles * 0.2

    def test_default_early_exit_is_half(self):
        program = self._search_program()
        plan = make_plan(program, "GLAF serial")
        default = simulate(plan, i5_2400,
                           Workload(name="w", entry="find", sizes={"n": 10000}),
                           SimOptions(threads=1))
        half = simulate(plan, i5_2400,
                        Workload(name="w", entry="find", sizes={"n": 10000},
                                 early_exit_fractions={("find", 0): 0.5}),
                        SimOptions(threads=1))
        assert default.total_cycles == pytest.approx(half.total_cycles)


class TestWholeArrayCallArguments:
    def test_array_passed_through_two_levels(self):
        from repro.glafexec import run_interpreted

        b = GlafBuilder("wa")
        m = b.module("M")
        inner = m.function("fill", return_type=T_VOID)
        inner.param("n", T_INT, intent="in")
        inner.param("buf", T_REAL8, dims=("n",), intent="inout")
        s = inner.step()
        s.foreach(i=(1, "n"))
        s.formula(ref("buf", I("i")), I("i") * 1.0)
        outer = m.function("driver", return_type=T_VOID)
        outer.param("n", T_INT, intent="in")
        outer.param("out", T_REAL8, dims=("n",), intent="inout")
        outer.step().call("fill", [ref("n"), ref("out")])
        program = b.build()
        out = np.zeros(5)
        run_interpreted(program, "driver", [5, out], sizes={"n": 5})
        assert np.array_equal(out, [1.0, 2.0, 3.0, 4.0, 5.0])

    def test_sum_of_passed_array_in_callee(self):
        from repro.glafexec import run_interpreted

        b = GlafBuilder("wa2")
        m = b.module("M")
        g = m.function("total", return_type=T_REAL8)
        g.param("n", T_INT, intent="in")
        g.param("v", T_REAL8, dims=("n",), intent="in")
        g.returns(lib("SUM", ref("v")))
        h = m.function("doubled_total", return_type=T_REAL8)
        h.param("n", T_INT, intent="in")
        h.param("v", T_REAL8, dims=("n",), intent="in")
        from repro.core.expr import FuncCall

        h.returns(FuncCall("total", (ref("n"), ref("v"))) * 2.0)
        program = b.build()
        r, _, _ = run_interpreted(program, "doubled_total",
                                  [3, np.array([1.0, 2.0, 3.0])],
                                  sizes={"n": 3})
        assert r == 12.0


class TestDeterminism:
    def test_fortran_generation_is_deterministic(self):
        from repro.sarb import build_sarb_program

        p1 = build_sarb_program()
        p2 = build_sarb_program()
        s1 = generate_fortran_module(make_plan(p1, "GLAF-parallel v3"))
        s2 = generate_fortran_module(make_plan(p2, "GLAF-parallel v3"))
        assert s1 == s2

    def test_figure7_is_deterministic(self):
        from repro.fun3d.perffig import simulate_option
        from repro.fun3d import Fun3DOptions

        o = Fun3DOptions(parallel_edgejp=True, no_reallocation=True)
        a = simulate_option(o, ncell=50_000)
        b = simulate_option(o, ncell=50_000)
        assert a.total_cycles == b.total_cycles
