"""Property-based fuzzing of the FORTRAN-subset front end.

Random mutations of the two case studies' legacy sources are pushed
through the lexer and parser, in strict and in recovery mode.  The
contract under test: the front end either parses the mutant or raises a
typed :class:`FortranSyntaxError` (:class:`DiagnosticBundle` included) —
it must never escape with a raw ``IndexError`` / ``KeyError`` /
``RecursionError`` / ``AttributeError``, hang, or crash, no matter how
the input is damaged.

The corpus, noise alphabet, and mutation operators come from
:mod:`repro.fuzz.vocab`, the same vocabulary the ``repro fuzz`` codebase
generator is built on — so what these properties fuzz and what the
campaign generates cannot drift apart."""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.errors import DiagnosticBundle, FortranSyntaxError  # noqa: E402
from repro.fortranlib.lexer import tokenize  # noqa: E402
from repro.fortranlib.parser import parse_source  # noqa: E402
from repro.fuzz.vocab import (  # noqa: E402
    MUTATION_KINDS,
    NOISE_ALPHABET,
    apply_mutation,
    mutated_source,
    parser_corpus,
)

CORPUS = parser_corpus()

_FUZZ = settings(max_examples=60, deadline=None)


class TestVocabulary:
    """The promoted helpers keep their contract for both consumers."""

    def test_mutation_kinds_cover_all_damage_operators(self):
        assert set(MUTATION_KINDS) == {
            "replace", "insert", "delete", "drop_line", "dup_line",
            "truncate"}

    def test_apply_mutation_is_pure(self):
        src = CORPUS[0]
        a = apply_mutation(src, "replace", 10, payload="@@")
        b = apply_mutation(src, "replace", 10, payload="@@")
        assert a == b != src

    def test_apply_mutation_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown mutation kind"):
            apply_mutation("x", "transpose", 0)

    def test_noise_alphabet_mixes_known_and_unknown_tokens(self):
        assert "(" in NOISE_ALPHABET          # grammar-known operator
        assert "@" in NOISE_ALPHABET          # lexer-unknown character


class TestParserFuzz:
    @_FUZZ
    @given(src=mutated_source())
    def test_lexer_raises_only_typed_errors(self, src):
        try:
            tokenize(src)
        except FortranSyntaxError:
            pass

    @_FUZZ
    @given(src=mutated_source())
    def test_strict_parse_raises_only_typed_errors(self, src):
        try:
            parse_source(src)
        except FortranSyntaxError:
            pass

    @_FUZZ
    @given(src=mutated_source())
    def test_recovering_parse_bundles_typed_diagnostics(self, src):
        try:
            parse_source(src, recover=True)
        except DiagnosticBundle as bundle:
            assert bundle.diagnostics
            assert all(isinstance(d, FortranSyntaxError)
                       for d in bundle.diagnostics)
        except FortranSyntaxError:
            # lexer-stage failure: no token stream to resynchronize over
            pass

    @given(src=st.sampled_from(CORPUS))
    @settings(max_examples=len(CORPUS), deadline=None)
    def test_unmutated_corpus_parses_both_modes(self, src):
        strict = parse_source(src)
        recovered = parse_source(src, recover=True)
        assert ({sp.name for sp in strict.subprograms}
                == {sp.name for sp in recovered.subprograms})
