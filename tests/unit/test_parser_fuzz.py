"""Property-based fuzzing of the FORTRAN-subset front end.

Random mutations of the two case studies' legacy sources are pushed
through the lexer and parser, in strict and in recovery mode.  The
contract under test: the front end either parses the mutant or raises a
typed :class:`FortranSyntaxError` (:class:`DiagnosticBundle` included) —
it must never escape with a raw ``IndexError`` / ``KeyError`` /
``RecursionError`` / ``AttributeError``, hang, or crash, no matter how
the input is damaged."""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.errors import DiagnosticBundle, FortranSyntaxError  # noqa: E402
from repro.fortranlib.lexer import tokenize  # noqa: E402
from repro.fortranlib.parser import parse_source  # noqa: E402


def _corpus() -> list[str]:
    from repro.fun3d import full_legacy_source as fun3d_source
    from repro.fun3d.mesh import make_mesh
    from repro.sarb import full_legacy_source as sarb_source

    sources = list(sarb_source().values())
    sources += list(fun3d_source(make_mesh(n_points=12, seed=3)).values())
    return sources


CORPUS = _corpus()

# Characters the mutator splices in: operators the grammar knows, ones it
# does not, digits, names, and whitespace — enough to hit lexer errors,
# parser errors, and accidental re-parses alike.
_NOISE = st.text(
    alphabet="()*/+-=<>,:%;.!&?@#$[]{}'\"_x0 19\n\t",
    min_size=1, max_size=12,
)


@st.composite
def mutated_source(draw) -> str:
    src = draw(st.sampled_from(CORPUS))
    n_mutations = draw(st.integers(min_value=1, max_value=4))
    for _ in range(n_mutations):
        kind = draw(st.sampled_from(
            ["replace", "insert", "delete", "drop_line", "dup_line",
             "truncate"]))
        if not src:
            break
        if kind in ("drop_line", "dup_line"):
            lines = src.splitlines(keepends=True)
            i = draw(st.integers(min_value=0, max_value=len(lines) - 1))
            if kind == "drop_line":
                del lines[i]
            else:
                lines.insert(i, lines[i])
            src = "".join(lines)
            continue
        pos = draw(st.integers(min_value=0, max_value=len(src) - 1))
        if kind == "replace":
            src = src[:pos] + draw(_NOISE) + src[pos + 1:]
        elif kind == "insert":
            src = src[:pos] + draw(_NOISE) + src[pos:]
        elif kind == "delete":
            end = min(len(src), pos + draw(st.integers(1, 40)))
            src = src[:pos] + src[end:]
        else:  # truncate
            src = src[:pos]
    return src


_FUZZ = settings(max_examples=60, deadline=None)


class TestParserFuzz:
    @_FUZZ
    @given(src=mutated_source())
    def test_lexer_raises_only_typed_errors(self, src):
        try:
            tokenize(src)
        except FortranSyntaxError:
            pass

    @_FUZZ
    @given(src=mutated_source())
    def test_strict_parse_raises_only_typed_errors(self, src):
        try:
            parse_source(src)
        except FortranSyntaxError:
            pass

    @_FUZZ
    @given(src=mutated_source())
    def test_recovering_parse_bundles_typed_diagnostics(self, src):
        try:
            parse_source(src, recover=True)
        except DiagnosticBundle as bundle:
            assert bundle.diagnostics
            assert all(isinstance(d, FortranSyntaxError)
                       for d in bundle.diagnostics)
        except FortranSyntaxError:
            # lexer-stage failure: no token stream to resynchronize over
            pass

    @given(src=st.sampled_from(CORPUS))
    @settings(max_examples=len(CORPUS), deadline=None)
    def test_unmutated_corpus_parses_both_modes(self, src):
        strict = parse_source(src)
        recovered = parse_source(src, recover=True)
        assert ({sp.name for sp in strict.subprograms}
                == {sp.name for sp in recovered.subprograms})
