"""Unit tests for the grid abstraction and its integration attributes."""

import numpy as np
import pytest

from repro.core.grid import Grid, array, scalar
from repro.core.types import T_INT, T_REAL8
from repro.errors import ValidationError


class TestConstruction:
    def test_scalar_and_array_helpers(self):
        s = scalar("x", T_REAL8)
        assert s.is_scalar and s.rank == 0
        a = array("a", T_REAL8, (4, 5))
        assert a.rank == 2 and a.dims == (4, 5)

    def test_bad_names_rejected(self):
        with pytest.raises(ValidationError):
            Grid(name="", ty=T_INT)
        with pytest.raises(ValidationError):
            Grid(name="2abc", ty=T_INT)
        with pytest.raises(ValidationError):
            Grid(name="a b", ty=T_INT)

    def test_nonpositive_dimension_rejected(self):
        with pytest.raises(ValidationError):
            Grid(name="a", ty=T_INT, dims=(0,))
        with pytest.raises(ValidationError):
            Grid(name="a", ty=T_INT, dims=(-3,))

    def test_void_storage_rejected(self):
        from repro.core.types import T_VOID

        with pytest.raises(ValidationError):
            Grid(name="a", ty=T_VOID)


class TestIntegrationAttributes:
    def test_common_and_module_exclusive(self):
        # The GPI configuration screen makes these mutually exclusive.
        with pytest.raises(ValidationError):
            Grid(name="w", ty=T_REAL8, common_block="blk", exists_in_module="m")

    def test_type_element_requires_module(self):
        with pytest.raises(ValidationError):
            Grid(name="tsfc", ty=T_REAL8, type_parent="fin")

    def test_is_external(self):
        g1 = Grid(name="w", ty=T_REAL8, common_block="blk")
        g2 = Grid(name="v", ty=T_REAL8, exists_in_module="m")
        g3 = Grid(name="u", ty=T_REAL8, module_scope=True)
        assert g1.is_external and g2.is_external
        assert not g3.is_external
        assert not g1.needs_declaration  # COMMON members declared via block
        assert g3.needs_declaration

    def test_type_element_spelling_attrs(self):
        g = Grid(name="tsfc", ty=T_REAL8, exists_in_module="m",
                 type_parent="fin", type_name="rad_input")
        assert g.is_type_element

    def test_parameter_needs_init(self):
        with pytest.raises(ValidationError):
            Grid(name="n", ty=T_INT, is_parameter=True)
        g = Grid(name="n", ty=T_INT, is_parameter=True, init_data=5)
        assert g.is_parameter

    def test_bad_intent(self):
        with pytest.raises(ValidationError):
            Grid(name="a", ty=T_INT, intent="both")


class TestStorage:
    def test_shape_resolution(self):
        g = array("a", T_REAL8, ("n", 4))
        assert g.shape({"n": 7}) == (7, 4)
        with pytest.raises(ValidationError):
            g.shape()

    def test_allocate_scalar(self):
        g = scalar("x", T_REAL8, init_data=2.5)
        v = g.allocate()
        assert v == np.float64(2.5)

    def test_allocate_array_zeroed(self):
        g = array("a", T_INT, (3,))
        arr = g.allocate()
        assert arr.dtype == np.int64
        assert np.all(arr == 0)

    def test_allocate_with_init_data(self):
        g = array("a", T_REAL8, (2, 2), init_data=1.5)
        arr = g.allocate()
        assert np.all(arr == 1.5)

    def test_symbolic_dims(self):
        g = array("a", T_REAL8, ("n", 4, "m"))
        assert g.symbolic_dims() == {"n", "m"}

    def test_ref_builds_expression(self):
        from repro.core.expr import GridRef

        g = array("a", T_REAL8, (3,))
        r = g.ref(1)
        assert isinstance(r, GridRef) and r.grid == "a"

    def test_with_replaces_fields(self):
        g = scalar("x", T_REAL8)
        g2 = g.with_(save=True)
        assert g2.save and not g.save and g2.name == g.name
