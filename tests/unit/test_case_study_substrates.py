"""Unit tests for the case-study substrates: atmosphere, mesh, references."""

import numpy as np
import pytest

from repro.fun3d.jacobian import (
    ANGLE_THRESHOLD,
    jac_rms,
    ref_jacobian_recon,
)
from repro.fun3d.mesh import TetMesh, make_mesh
from repro.sarb.atmosphere import SarbDimensions, make_inputs, zone_sizes
from repro.sarb.fuliou import fresh_state, ref_entropy_interface


class TestAtmosphere:
    def test_deterministic(self):
        a = make_inputs(seed=7)
        b = make_inputs(seed=7)
        assert np.array_equal(a.taudp, b.taudp)
        assert a.tsfc == b.tsfc

    def test_seed_changes_data(self):
        a = make_inputs(seed=1)
        b = make_inputs(seed=2)
        assert not np.array_equal(a.taudp, b.taudp)

    def test_physical_plausibility(self):
        a = make_inputs()
        assert np.all(np.diff(a.pres) > 0)          # monotone to the surface
        assert np.all((a.temp >= 180) & (a.temp <= 320))
        assert np.all((a.cld >= 0) & (a.cld <= 1))
        assert np.all(a.taudp > 0) and np.all(a.tausw > 0)
        assert a.wlw.sum() == pytest.approx(1.0)
        assert a.wsw.sum() == pytest.approx(1.0)

    def test_dims_respected(self):
        d = SarbDimensions(nv=30, nblw=6, nbsw=3)
        a = make_inputs(d)
        assert a.taudp.shape == (30, 6)
        assert a.tausw.shape == (30, 3)

    def test_zone_sizes_equator_largest(self):
        z = zone_sizes(18)
        assert len(z) == 18
        assert z.argmax() in (8, 9)
        assert np.all(z > 0)


class TestSarbReference:
    def test_outputs_finite_and_nontrivial(self):
        inp = make_inputs()
        st = fresh_state(inp.dims.nv)
        ref_entropy_interface(inp, st)
        for arr in (st.fulw, st.fusw, st.fwin, st.slw, st.ssw):
            assert np.all(np.isfinite(arr))
            assert np.any(arr != 0)

    def test_adjust_clamps_range(self):
        inp = make_inputs()
        st = fresh_state(inp.dims.nv)
        ref_entropy_interface(inp, st)
        assert np.all(st.fulw >= 0) and np.all(st.fulw <= 1000)

    def test_repeated_runs_accumulate_scalars_only(self):
        inp = make_inputs()
        st = fresh_state(inp.dims.nv)
        ref_entropy_interface(inp, st)
        first = st.fulw.copy()
        olr1 = st.olr_acc
        ref_entropy_interface(inp, st)
        # Flux profiles depend on inputs only... fulw feeds back through
        # adjust2 smoothing? No: lw integration re-zeroes flux first.
        assert np.allclose(st.fulw, first)
        assert st.olr_acc != olr1


class TestMesh:
    @pytest.fixture(scope="class")
    def mesh(self):
        return make_mesh(64)

    def test_shapes_consistent(self, mesh):
        assert mesh.cell_nodes.shape == (mesh.ncell, 4)
        assert mesh.cell_edges.shape == (mesh.ncell, 6)
        assert mesh.edge_nodes.shape == (mesh.nedge, 2)
        assert mesh.face_norm.shape == (mesh.ncell, 4, 3)
        assert mesh.row_ptr.shape == (mesh.nnode + 1,)
        assert mesh.col_idx.shape == (mesh.nnz,)
        assert mesh.q.shape == (mesh.nnode, 5)

    def test_one_based_index_ranges(self, mesh):
        assert mesh.cell_nodes.min() >= 1
        assert mesh.cell_nodes.max() <= mesh.nnode
        assert mesh.edge_nodes.min() >= 1
        assert mesh.cell_edges.max() <= mesh.nedge
        assert mesh.row_ptr[0] == 1
        assert mesh.row_ptr[-1] == mesh.nnz + 1

    def test_edges_reference_cell_nodes(self, mesh):
        for c in range(0, mesh.ncell, max(1, mesh.ncell // 20)):
            cell_nodeset = set(mesh.cell_nodes[c])
            for e in mesh.cell_edges[c]:
                n1, n2 = mesh.edge_nodes[e - 1]
                assert n1 in cell_nodeset and n2 in cell_nodeset

    def test_csr_rows_sorted_with_diagonal(self, mesh):
        for row in range(1, mesh.nnode + 1, max(1, mesh.nnode // 15)):
            lo, hi = mesh.row_ptr[row - 1] - 1, mesh.row_ptr[row] - 1
            seg = mesh.col_idx[lo:hi]
            assert np.all(np.diff(seg) > 0)      # strictly sorted
            assert row in seg                    # diagonal entry

    def test_csr_offset_roundtrip(self, mesh):
        for e in range(0, mesh.nedge, max(1, mesh.nedge // 25)):
            n1, n2 = mesh.edge_nodes[e]
            p = mesh.csr_offset(int(n1), int(n2))
            assert mesh.col_idx[p - 1] == n2

    def test_csr_offset_missing_pair(self, mesh):
        with pytest.raises(KeyError):
            # A node is never adjacent to itself twice; find a non-neighbor.
            row = 1
            lo, hi = mesh.row_ptr[0] - 1, mesh.row_ptr[1] - 1
            neighbors = set(mesh.col_idx[lo:hi])
            outsider = next(n for n in range(1, mesh.nnode + 1)
                            if n not in neighbors)
            mesh.csr_offset(row, outsider)

    def test_face_normals_sum_near_zero(self, mesh):
        # Closed surface: outward normals of each tet sum to ~0.
        sums = np.abs(mesh.face_norm.sum(axis=1)).max(axis=1)
        assert np.percentile(sums, 95) < 1e-12

    def test_face_angle_range(self, mesh):
        assert np.all(mesh.face_angle >= 0.0)
        assert np.all(mesh.face_angle <= 1.0)


class TestJacobianReference:
    def test_deterministic(self):
        m = make_mesh(27)
        assert np.array_equal(ref_jacobian_recon(m), ref_jacobian_recon(m))

    def test_rms_positive(self):
        m = make_mesh(27)
        assert jac_rms(ref_jacobian_recon(m)) > 0

    def test_angle_threshold_gates_cells(self):
        m = make_mesh(27)
        jac = ref_jacobian_recon(m)
        # Force every cell to be skipped: output must be all zero.
        m_all_skipped = TetMesh(
            node_xyz=m.node_xyz, cell_nodes=m.cell_nodes,
            cell_edges=m.cell_edges, edge_nodes=m.edge_nodes,
            face_norm=m.face_norm,
            face_angle=np.full_like(m.face_angle, ANGLE_THRESHOLD + 0.01),
            row_ptr=m.row_ptr, col_idx=m.col_idx, q=m.q,
        )
        assert np.all(ref_jacobian_recon(m_all_skipped) == 0.0)
        assert np.any(jac != 0.0)

    def test_contributions_land_on_edge_rows(self):
        m = make_mesh(27)
        jac = ref_jacobian_recon(m)
        nonzero_rows = set(np.nonzero(np.abs(jac).sum(axis=1))[0] + 1)
        # Every nonzero position must be a valid (n1, n2) CSR slot.
        valid = set()
        for c in range(m.ncell):
            if (m.face_angle[c] > ANGLE_THRESHOLD).any():
                continue
            for e in m.cell_edges[c]:
                n1, n2 = m.edge_nodes[e - 1]
                valid.add(m.csr_offset(int(n1), int(n2)))
        assert nonzero_rows <= valid
