"""Unit tests for the model-guided advisor (paper's future-work extension)."""

import pytest

from repro.fun3d import Fun3DOptions, build_fun3d_program, make_fun3d_plan
from repro.optimize import Tweaks, advise, auto_no_reallocation, make_plan
from repro.perf import SimOptions, i5_2400, simulate
from repro.sarb import build_sarb_program, sarb_workload


@pytest.fixture(scope="module")
def sarb_advice():
    program = build_sarb_program()
    workload = sarb_workload()
    return program, workload, advise(program, i5_2400, workload, threads=4)


class TestAdvise:
    def test_rediscovers_the_papers_v3_set(self, sarb_advice):
        """The advisor must annotate exactly the two large complex loops the
        paper's manual v3 pruning kept — refining the second to a SIMD
        directive (the paper's 'SIMD instead of OpenMP' future work)."""
        _, _, (auto_plan, report) = sarb_advice
        annotated = {(d.function, d.step_name): d.choice
                     for d in report.decisions if d.choice != "none"}
        assert set(annotated) == {("longwave_entropy_model", "thick_thin"),
                                  ("longwave_entropy_model", "cloud_adjust")}
        assert annotated[("longwave_entropy_model", "thick_thin")] == "omp"

    def test_every_parallelizable_step_decided(self, sarb_advice):
        program, _, (auto_plan, report) = sarb_advice
        n_parallelizable = sum(
            1 for sp in auto_plan.parallel_plan.steps.values() if sp.parallel
        )
        assert len(report.decisions) == n_parallelizable

    def test_auto_plan_at_least_as_fast_as_v3(self, sarb_advice):
        program, workload, (auto_plan, _) = sarb_advice
        auto = simulate(auto_plan, i5_2400, workload, SimOptions(threads=4))
        v3 = simulate(make_plan(program, "GLAF-parallel v3", threads=4),
                      i5_2400, workload, SimOptions(threads=4))
        assert auto.total_cycles <= v3.total_cycles * 1.001

    def test_auto_plan_beats_v0(self, sarb_advice):
        program, workload, (auto_plan, _) = sarb_advice
        auto = simulate(auto_plan, i5_2400, workload, SimOptions(threads=4))
        v0 = simulate(make_plan(program, "GLAF-parallel v0", threads=4),
                      i5_2400, workload, SimOptions(threads=4))
        assert auto.total_cycles < v0.total_cycles * 0.7

    def test_decisions_carry_model_numbers(self, sarb_advice):
        _, _, (_, report) = sarb_advice
        for d in report.decisions:
            costs = {"omp": d.cycles_with_omp, "simd": d.cycles_with_simd,
                     "none": d.cycles_without_omp}
            assert all(v > 0 for v in costs.values())
            assert costs[d.choice] == min(costs.values())

    def test_report_text(self, sarb_advice):
        _, _, (_, report) = sarb_advice
        text = report.to_text()
        assert "[omp " in text and "[none]" in text

    def test_simd_never_worse_than_none(self, sarb_advice):
        _, _, (_, report) = sarb_advice
        for d in report.decisions:
            assert d.cycles_with_simd <= d.cycles_without_omp * 1.0001

    def test_generated_code_honors_auto_plan(self, sarb_advice):
        from repro.codegen import generate_fortran_module

        _, _, (auto_plan, report) = sarb_advice
        src = generate_fortran_module(auto_plan)
        n_omp = sum(1 for line in src.splitlines()
                    if line.startswith("!$OMP PARALLEL DO"))
        n_simd = sum(1 for line in src.splitlines()
                     if line.startswith("!$OMP SIMD"))
        assert n_omp == len(report.kept())
        assert n_simd == len(report.simd())
        assert n_omp + n_simd == 2
        assert "GLAF-parallel auto" in src

    def test_simd_annotated_code_still_correct(self, sarb_advice):
        """Execute the SIMD-annotated generated FORTRAN: numerics unchanged,
        and the runtime logs the SIMD region."""
        import numpy as np

        from repro.codegen.fortran import FortranGenerator
        from repro.fortranlib import FortranRuntime
        from repro.sarb import make_inputs, run_legacy_fortran
        from repro.sarb.legacy_src import full_legacy_source
        from repro.sarb.validation import set_sarb_inputs, read_outputs, OUTPUT_NAMES

        _, _, (auto_plan, _) = sarb_advice
        inp = make_inputs()
        leg, _ = run_legacy_fortran(inp)
        sources = full_legacy_source(inp.dims)
        rt = FortranRuntime()
        rt.load(sources["fuliou_modules.f90"])
        rt.load(sources["sarb_setup.f90"])
        rt.load(FortranGenerator(auto_plan).generate_module())
        set_sarb_inputs(rt, inp)
        rt.call("entropy_interface", [inp.dims.nv, inp.dims.nblw, inp.dims.nbsw])
        outs = read_outputs(rt)
        for n in OUTPUT_NAMES:
            assert np.allclose(outs[n], leg[n], rtol=1e-12, atol=1e-14), n
        assert any(e.kind == "simd" for e in rt.omp_log)


class TestAdviseFun3D:
    def test_advisor_finds_coarse_grained_optimum(self):
        """On FUN3D the advisor must converge to the paper's conclusion —
        OpenMP only at the outermost cell sweep — and beat the best
        combination the paper's option lattice can express (which has no
        per-loop SIMD)."""
        from repro.fun3d import build_fun3d_program, fun3d_workload
        from repro.fun3d.perffig import simulate_baseline, simulate_option
        from repro.fun3d import Fun3DOptions
        from repro.perf import xeon_e5_2637v4_node as node

        program = build_fun3d_program()
        workload = fun3d_workload()
        tweaks = Tweaks(save_inner_arrays=True,
                        critical_early_exit=frozenset({"ioff_search"}))
        auto_plan, report = advise(program, node, workload, threads=16,
                                   tweaks=tweaks)
        omp_choices = {(d.function, d.step_name)
                       for d in report.decisions if d.choice == "omp"}
        assert omp_choices == {("edgejp", "cell_sweep")}
        # No inner loop keeps an OpenMP directive (the 1/111x disasters).
        assert all(d.choice != "omp" for d in report.decisions
                   if d.function in ("edge_loop", "cell_loop", "ioff_search"))

        base = simulate_baseline()
        auto = simulate(auto_plan, node, workload,
                        SimOptions(threads=16, save_arrays=True))
        best_lattice = simulate_option(
            Fun3DOptions(parallel_edgejp=True, no_reallocation=True))
        auto_speedup = base.total_cycles / auto.total_cycles
        lattice_speedup = base.total_cycles / best_lattice.total_cycles
        assert auto_speedup > lattice_speedup


class TestAutoNoReallocation:
    def test_detects_fun3d_offenders(self):
        program = build_fun3d_program()
        plan = make_fun3d_plan(program, Fun3DOptions(parallel_edgejp=True),
                               threads=16)
        tweaks, offenders = auto_no_reallocation(program, plan)
        assert offenders == ["cell_loop", "edge_loop"]
        assert tweaks.save_inner_arrays

    def test_serial_plan_reports_nothing(self):
        program = build_fun3d_program()
        plan = make_fun3d_plan(program, Fun3DOptions(), threads=1)
        tweaks, offenders = auto_no_reallocation(program, plan)
        assert offenders == []
        assert not tweaks.save_inner_arrays

    def test_sarb_has_no_offenders(self):
        program = build_sarb_program()
        plan = make_plan(program, "GLAF-parallel v0", threads=4)
        _, offenders = auto_no_reallocation(program, plan)
        assert offenders == []
