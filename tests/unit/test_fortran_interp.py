"""Unit tests for the FORTRAN-subset interpreter."""

import numpy as np
import pytest

from repro.errors import FortranRuntimeError
from repro.fortranlib import FortranRuntime, StopSignal


def _rt(*sources: str) -> FortranRuntime:
    rt = FortranRuntime()
    for s in sources:
        rt.load(s)
    return rt


class TestArithmetic:
    def test_integer_division_truncates(self):
        rt = _rt("""
INTEGER FUNCTION idiv(a, b)
  INTEGER, INTENT(IN) :: a
  INTEGER, INTENT(IN) :: b
  idiv = a / b
END FUNCTION idiv
""")
        assert rt.call("idiv", [7, 2]) == 3
        assert rt.call("idiv", [-7, 2]) == -3

    def test_real_division(self):
        rt = _rt("""
REAL(KIND=8) FUNCTION rdiv(a, b)
  REAL(KIND=8), INTENT(IN) :: a
  REAL(KIND=8), INTENT(IN) :: b
  rdiv = a / b
END FUNCTION rdiv
""")
        assert rt.call("rdiv", [7.0, 2.0]) == 3.5

    def test_power_and_intrinsics(self):
        rt = _rt("""
REAL(KIND=8) FUNCTION f(x)
  REAL(KIND=8), INTENT(IN) :: x
  f = SQRT(x ** 2) + ABS(-x) + MAX(x, 0.0D0, 2.0D0)
END FUNCTION f
""")
        assert rt.call("f", [3.0]) == 3.0 + 3.0 + 3.0

    def test_logicals(self):
        rt = _rt("""
INTEGER FUNCTION f(x)
  REAL(KIND=8), INTENT(IN) :: x
  IF (x > 0.0D0 .AND. .NOT. (x > 10.0D0)) THEN
    f = 1
  ELSE
    f = 0
  END IF
END FUNCTION f
""")
        assert rt.call("f", [5.0]) == 1
        assert rt.call("f", [50.0]) == 0
        assert rt.call("f", [-5.0]) == 0


class TestControlFlow:
    def test_do_loop_and_exit_cycle(self):
        rt = _rt("""
INTEGER FUNCTION count_odd_until(v, n, stopv)
  INTEGER, INTENT(IN) :: n
  INTEGER, INTENT(IN) :: stopv
  INTEGER, INTENT(IN) :: v(n)
  INTEGER :: i
  count_odd_until = 0
  DO i = 1, n
    IF (v(i) == stopv) EXIT
    IF (MOD(v(i), 2) == 0) CYCLE
    count_odd_until = count_odd_until + 1
  END DO
END FUNCTION count_odd_until
""")
        v = np.array([1, 2, 3, 9, 5], dtype=np.int64)
        assert rt.call("count_odd_until", [v, 5, 9]) == 2

    def test_negative_step(self):
        rt = _rt("""
INTEGER FUNCTION f(n)
  INTEGER, INTENT(IN) :: n
  INTEGER :: i
  f = 0
  DO i = n, 1, -1
    f = f * 10 + i
  END DO
END FUNCTION f
""")
        assert rt.call("f", [3]) == 321

    def test_do_while(self):
        rt = _rt("""
INTEGER FUNCTION f(n)
  INTEGER, INTENT(IN) :: n
  f = 1
  DO WHILE (f < n)
    f = f * 2
  END DO
END FUNCTION f
""")
        assert rt.call("f", [100]) == 128

    def test_stop_signal(self):
        rt = _rt("""
PROGRAM p
  PRINT *, 'before'
  STOP 'bye'
  PRINT *, 'after'
END PROGRAM p
""")
        rt.run_program()
        assert rt.output == [("before",)]


class TestStorageSemantics:
    def test_array_argument_by_reference(self):
        rt = _rt("""
SUBROUTINE fill(n, a)
  INTEGER, INTENT(IN) :: n
  REAL(KIND=8), INTENT(INOUT) :: a(n)
  INTEGER :: i
  DO i = 1, n
    a(i) = i * 1.0D0
  END DO
END SUBROUTINE fill
""")
        a = np.zeros(4)
        rt.call("fill", [4, a])
        assert np.array_equal(a, [1.0, 2.0, 3.0, 4.0])

    def test_scalar_element_argument_by_reference(self):
        rt = _rt("""
SUBROUTINE setit(x)
  REAL(KIND=8), INTENT(OUT) :: x
  x = 9.0D0
END SUBROUTINE setit

SUBROUTINE driver(a)
  REAL(KIND=8), INTENT(INOUT) :: a(3)
  CALL setit(a(2))
END SUBROUTINE driver
""")
        a = np.zeros(3)
        rt.call("driver", [a])
        assert np.array_equal(a, [0.0, 9.0, 0.0])

    def test_whole_array_assignment(self):
        rt = _rt("""
SUBROUTINE z(n, a)
  INTEGER, INTENT(IN) :: n
  REAL(KIND=8), INTENT(INOUT) :: a(n)
  a = 7.0D0
END SUBROUTINE z
""")
        a = np.zeros(3)
        rt.call("z", [3, a])
        assert np.all(a == 7.0)

    def test_save_persists_across_calls(self):
        rt = _rt("""
INTEGER FUNCTION counter()
  INTEGER, SAVE :: state
  state = state + 1
  counter = state
END FUNCTION counter
""")
        assert rt.call("counter", []) == 1
        assert rt.call("counter", []) == 2

    def test_allocatable_save_pattern(self):
        rt = _rt("""
INTEGER FUNCTION nalloc(n)
  INTEGER, INTENT(IN) :: n
  REAL(KIND=8), ALLOCATABLE, SAVE :: buf(:)
  IF (.NOT. ALLOCATED(buf)) ALLOCATE(buf(n))
  nalloc = 1
END FUNCTION nalloc
""")
        before = rt.allocation_count
        rt.call("nalloc", [8])
        mid = rt.allocation_count
        rt.call("nalloc", [8])
        assert mid == before + 1
        assert rt.allocation_count == mid  # no re-allocation

    def test_bounds_checked(self):
        rt = _rt("""
SUBROUTINE bad(a)
  REAL(KIND=8), INTENT(INOUT) :: a(3)
  a(5) = 1.0D0
END SUBROUTINE bad
""")
        with pytest.raises(FortranRuntimeError, match="bounds"):
            rt.call("bad", [np.zeros(3)])

    def test_undeclared_variable(self):
        rt = _rt("""
SUBROUTINE bad()
  mystery = 1.0D0
END SUBROUTINE bad
""")
        with pytest.raises(FortranRuntimeError):
            rt.call("bad", [])


class TestModulesCommonsTypes:
    MOD = """
MODULE data_mod
  IMPLICIT NONE
  TYPE pt
    REAL(KIND=8) :: x
    REAL(KIND=8) :: v(2)
  END TYPE pt
  TYPE(pt) :: p
  REAL(KIND=8) :: shared(3)
  INTEGER, PARAMETER :: nconst = 3
END MODULE data_mod
"""

    def test_module_variable_shared_between_units(self):
        rt = _rt(self.MOD, """
SUBROUTINE w()
  USE data_mod, ONLY: shared
  shared(1) = 5.0D0
END SUBROUTINE w

REAL(KIND=8) FUNCTION r()
  USE data_mod, ONLY: shared
  r = shared(1)
END FUNCTION r
""")
        rt.call("w", [])
        assert rt.call("r", []) == 5.0

    def test_derived_type_components(self):
        rt = _rt(self.MOD, """
SUBROUTINE setp()
  USE data_mod, ONLY: p
  p%x = 1.5D0
  p%v(2) = 2.5D0
END SUBROUTINE setp

REAL(KIND=8) FUNCTION getp()
  USE data_mod, ONLY: p
  getp = p%x + p%v(2)
END FUNCTION getp
""")
        rt.call("setp", [])
        assert rt.call("getp", []) == 4.0

    def test_module_parameter_as_dimension(self):
        rt = _rt(self.MOD, """
REAL(KIND=8) FUNCTION f()
  USE data_mod, ONLY: nconst
  REAL(KIND=8) :: local(nconst)
  local(3) = 2.0D0
  f = local(3)
END FUNCTION f
""")
        assert rt.call("f", []) == 2.0

    def test_common_block_shared_by_name(self):
        rt = _rt("""
SUBROUTINE setc()
  REAL(KIND=8) :: w(2)
  COMMON /blk/ w
  w(1) = 3.0D0
END SUBROUTINE setc

REAL(KIND=8) FUNCTION getc()
  REAL(KIND=8) :: w(2)
  COMMON /blk/ w
  getc = w(1)
END FUNCTION getc
""")
        rt.call("setc", [])
        assert rt.call("getc", []) == 3.0

    def test_common_kind_mismatch_rejected(self):
        rt = _rt("""
SUBROUTINE a1()
  REAL(KIND=8) :: w(2)
  COMMON /blk2/ w
  w(1) = 1.0D0
END SUBROUTINE a1

SUBROUTINE a2()
  INTEGER :: w(2)
  COMMON /blk2/ w
  w(1) = 1
END SUBROUTINE a2
""")
        rt.call("a1", [])
        with pytest.raises(FortranRuntimeError, match="kind"):
            rt.call("a2", [])


class TestOmpLogging:
    def test_parallel_do_logged_with_trip_count(self):
        rt = _rt("""
SUBROUTINE f(n, a)
  INTEGER, INTENT(IN) :: n
  REAL(KIND=8), INTENT(INOUT) :: a(n)
  INTEGER :: i
!$OMP PARALLEL DO PRIVATE(i)
  DO i = 1, n
    a(i) = 1.0D0
  END DO
!$OMP END PARALLEL DO
END SUBROUTINE f
""")
        rt.call("f", [6, np.zeros(6)])
        ev = [e for e in rt.omp_log if e.kind == "parallel_do"]
        assert len(ev) == 1 and ev[0].iterations == 6

    def test_results_identical_with_and_without_directives(self):
        src_base = """
SUBROUTINE g{tag}(n, a)
  INTEGER, INTENT(IN) :: n
  REAL(KIND=8), INTENT(INOUT) :: a(n)
  INTEGER :: i
{omp1}
  DO i = 1, n
    a(i) = a(i) + i * 0.5D0
  END DO
{omp2}
END SUBROUTINE g{tag}
"""
        rt = _rt(
            src_base.format(tag="p", omp1="!$OMP PARALLEL DO", omp2="!$OMP END PARALLEL DO"),
            src_base.format(tag="s", omp1="", omp2=""),
        )
        a, b = np.zeros(5), np.zeros(5)
        rt.call("gp", [5, a])
        rt.call("gs", [5, b])
        assert np.array_equal(a, b)


class TestFunctions:
    def test_recursion_depth_guard(self):
        # Mutual recursion (direct recursion would shadow the result var).
        rt = _rt("""
SUBROUTINE ping(n)
  INTEGER, INTENT(IN) :: n
  CALL pong(n + 1)
END SUBROUTINE ping

SUBROUTINE pong(n)
  INTEGER, INTENT(IN) :: n
  CALL ping(n + 1)
END SUBROUTINE pong
""")
        with pytest.raises(FortranRuntimeError, match="depth"):
            rt.call("ping", [0])

    def test_function_calls_function(self):
        rt = _rt("""
REAL(KIND=8) FUNCTION sq(x)
  REAL(KIND=8), INTENT(IN) :: x
  sq = x * x
END FUNCTION sq

REAL(KIND=8) FUNCTION quart(x)
  REAL(KIND=8), INTENT(IN) :: x
  quart = sq(sq(x))
END FUNCTION quart
""")
        assert rt.call("quart", [2.0]) == 16.0

    def test_wrong_arity(self):
        rt = _rt("""
SUBROUTINE s(a)
  REAL(KIND=8), INTENT(IN) :: a
END SUBROUTINE s
""")
        with pytest.raises(FortranRuntimeError, match="argument"):
            rt.call("s", [])
