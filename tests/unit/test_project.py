"""Unit tests for project JSON persistence."""

import pytest

from repro.core import GlafBuilder, I, T_INT, T_REAL8, T_VOID, lib, ref
from repro.core.builder import StepBuilder as SB
from repro.core.project import (
    expr_from_dict,
    expr_to_dict,
    load_project,
    program_from_dict,
    program_to_dict,
    save_project,
)
from repro.errors import ValidationError


def _demo_program():
    b = GlafBuilder("demo")
    b.derived_type("rad", {"tsfc": (T_REAL8, 0)}, defined_in_module="m")
    b.global_grid("tsfc", T_REAL8, exists_in_module="m",
                  type_parent="fin", type_name="rad")
    b.global_grid("w", T_REAL8, dims=(4,), common_block="blk")
    b.global_grid("acc", T_REAL8, module_scope=True)
    mod = b.module("M")
    f = mod.function("f", return_type=T_VOID)
    f.param("n", T_INT, intent="in")
    f.param("a", T_REAL8, dims=("n",), intent="inout")
    f.local("t", T_REAL8, save=True)
    s = f.step("s1")
    s.foreach(i=(1, "n"))
    s.condition(ref("n").gt(0))
    s.formula(ref("a", I("i")), lib("ABS", ref("a", I("i"))) + ref("tsfc"))
    s.if_(ref("a", I("i")).gt(100.0), [SB.exit_stmt()])
    g = mod.function("g", return_type=T_INT)
    g.param("x", T_REAL8, intent="in")
    g.returns(ref("x") * 0 + 1)
    return b.build()


class TestRoundTrip:
    def test_program_round_trip(self):
        p = _demo_program()
        d = program_to_dict(p)
        p2 = program_from_dict(d)
        assert program_to_dict(p2) == d

    def test_file_round_trip(self, tmp_path):
        p = _demo_program()
        path = tmp_path / "proj.json"
        save_project(p, path)
        p2 = load_project(path)
        assert program_to_dict(p2) == program_to_dict(p)

    def test_round_trip_preserves_integration_attrs(self):
        p = _demo_program()
        p2 = program_from_dict(program_to_dict(p))
        g = p2.global_grids["tsfc"]
        assert g.type_parent == "fin" and g.exists_in_module == "m"
        assert p2.global_grids["w"].common_block == "blk"
        assert p2.global_grids["acc"].module_scope

    def test_round_trip_preserves_save_attr(self):
        p = _demo_program()
        p2 = program_from_dict(program_to_dict(p))
        assert p2.find_function("f").grids["t"].save


class TestExprSerialization:
    def test_all_node_kinds(self):
        from repro.core.expr import FuncCall

        e = (lib("MAX", ref("a", I("i") + 1), 2.0)
             + (-ref("b")) * FuncCall("g", (ref("x"),)))
        d = expr_to_dict(e)
        assert expr_from_dict(d) == e

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError):
            expr_from_dict({"kind": "mystery"})


class TestVersioning:
    def test_wrong_version_rejected(self):
        p = _demo_program()
        d = program_to_dict(p)
        d["format_version"] = 999
        with pytest.raises(ValidationError, match="format"):
            program_from_dict(d)

    def test_version_field_present(self):
        assert "format_version" in program_to_dict(_demo_program())
