"""Unit tests for the optimization back-end (pruning, loops, layout, plan)."""

import numpy as np
import pytest

from repro.analysis.classify import LoopClass
from repro.core import GlafBuilder, I, T_INT, T_REAL8, T_VOID, ref
from repro.errors import AnalysisError
from repro.optimize import (
    LayoutGroup,
    Tweaks,
    VARIANTS,
    aos_field_name,
    collapse_legal,
    decide_collapse,
    directives_for_variant,
    interchange,
    interchange_legal,
    make_plan,
    to_aos,
    variant_by_name,
)


def _two_class_program():
    b = GlafBuilder("t")
    m = b.module("M")
    f = m.function("f", return_type=T_VOID)
    f.param("n", T_INT, intent="in")
    f.param("a", T_REAL8, dims=("n",), intent="inout")
    s = f.step("init")
    s.foreach(i=(1, "n"))
    s.formula(ref("a", I("i")), 0.0)
    s = f.step("work")
    s.foreach(i=(1, "n"))
    s.formula(ref("a", I("i")), ref("a", I("i")) * 2.0 + 1.0)
    return b.build()


class TestVariants:
    def test_table2_order_and_names(self):
        names = [v.name for v in VARIANTS]
        assert names == [
            "original serial", "GLAF serial", "GLAF-parallel v0",
            "GLAF-parallel v1", "GLAF-parallel v2", "GLAF-parallel v3",
        ]

    def test_unknown_variant(self):
        with pytest.raises(KeyError):
            variant_by_name("GLAF-parallel v9")

    def test_pruning_is_cumulative(self):
        prev: set = set()
        for v in VARIANTS[2:]:
            cur = set(v.pruned_classes)
            assert prev <= cur
            prev = cur

    def test_directive_sets(self):
        p = _two_class_program()
        plan = make_plan(p, "GLAF-parallel v0")
        ds0 = directives_for_variant(p, plan.parallel_plan, variant_by_name("GLAF-parallel v0"))
        ds1 = directives_for_variant(p, plan.parallel_plan, variant_by_name("GLAF-parallel v1"))
        assert ds0.n_directives() == 2
        assert ds1.n_directives() == 1           # zero-init pruned
        assert ds1.loop_class[("f", 0)] is LoopClass.ZERO_INIT

    def test_serial_variants_have_no_directives(self):
        p = _two_class_program()
        plan = make_plan(p, "GLAF serial")
        assert plan.directives.n_directives() == 0


class TestPlan:
    def test_force_serial_overrides(self):
        p = _two_class_program()
        plan = make_plan(p, "GLAF-parallel v0", force_serial=frozenset({("f", 1)}))
        assert plan.step_is_parallel("f", 0)
        assert not plan.step_is_parallel("f", 1)

    def test_force_parallel_requires_analyzable(self):
        p = _two_class_program()
        plan = make_plan(p, "GLAF serial", force_parallel=frozenset({("f", 1)}))
        assert plan.step_is_parallel("f", 1)

    def test_tweaks_default(self):
        t = Tweaks()
        assert t.atomic_updates and t.multi_var_reductions
        assert not t.save_inner_arrays


def _nest_program(triangular=False):
    b = GlafBuilder("t")
    m = b.module("M")
    f = m.function("f", return_type=T_VOID)
    f.param("n", T_INT, intent="in")
    f.param("c", T_REAL8, dims=("n", "n"), intent="inout")
    s = f.step()
    if triangular:
        s.foreach(i=(1, "n"), j=(1, I("i")))
    else:
        s.foreach(i=(1, "n"), j=(1, "n"))
    s.formula(ref("c", I("i"), I("j")), ref("c", I("i"), I("j")) + 1.0)
    p = b.build()
    return p, p.find_function("f").steps[0]


class TestLoops:
    def test_collapse_legal_rectangular(self):
        _, step = _nest_program()
        assert collapse_legal(step)
        assert decide_collapse(step).depth == 2

    def test_collapse_illegal_triangular(self):
        _, step = _nest_program(triangular=True)
        assert not collapse_legal(step)
        assert decide_collapse(step).depth == 1

    def test_collapse_disabled(self):
        _, step = _nest_program()
        assert decide_collapse(step, enable=False).depth == 1

    def test_interchange_legal_independent(self):
        _, step = _nest_program()
        assert interchange_legal(step, 0, 1)
        swapped = interchange(step, 0, 1)
        assert swapped.index_names() == ("j", "i")

    def test_interchange_same_index_illegal(self):
        _, step = _nest_program()
        assert not interchange_legal(step, 0, 0)

    def test_interchange_triangular_illegal(self):
        _, step = _nest_program(triangular=True)
        assert not interchange_legal(step, 0, 1)
        with pytest.raises(AnalysisError):
            interchange(step, 0, 1)


class TestLayout:
    def _program(self):
        b = GlafBuilder("t")
        b.global_grid("x", T_REAL8, dims=(8,), module_scope=True)
        b.global_grid("y", T_REAL8, dims=(8,), module_scope=True)
        m = b.module("M")
        f = m.function("f", return_type=T_VOID)
        s = f.step()
        s.foreach(i=(1, 8))
        s.formula(ref("x", I("i")), ref("x", I("i")) + ref("y", I("i")))
        return b.build()

    def test_to_aos_rewrites_refs(self):
        p = self._program()
        group = LayoutGroup(type_name="pt", variable="pts", fields=("x", "y"))
        p2 = to_aos(p, "f", group)
        xg = aos_field_name("pts", "x")
        assert xg in p2.global_grids
        assert p2.global_grids[xg].type_parent == "pts"
        refs = p2.find_function("f").grids_referenced()
        assert xg in refs and "x" not in refs

    def test_to_aos_preserves_semantics(self):
        from repro.glafexec import ExecutionContext, Interpreter

        p = self._program()
        ctx = ExecutionContext(p, values={"x": np.arange(8.0), "y": np.ones(8)})
        Interpreter(p, ctx).call("f", [])
        expected = ctx.get("x").copy()

        p2 = to_aos(p, "f", LayoutGroup("pt", "pts", ("x", "y")))
        xg, yg = aos_field_name("pts", "x"), aos_field_name("pts", "y")
        ctx2 = ExecutionContext(p2, values={xg: np.arange(8.0), yg: np.ones(8)})
        Interpreter(p2, ctx2).call("f", [])
        assert np.array_equal(ctx2.get(xg), expected)

    def test_to_aos_rejects_mixed_shapes(self):
        b = GlafBuilder("t")
        b.global_grid("x", T_REAL8, dims=(8,), module_scope=True)
        b.global_grid("y", T_REAL8, dims=(4,), module_scope=True)
        m = b.module("M")
        f = m.function("f", return_type=T_VOID)
        s = f.step()
        s.foreach(i=(1, 4))
        s.formula(ref("y", I("i")), ref("x", I("i")))
        p = b.build()
        with pytest.raises(AnalysisError, match="shape"):
            to_aos(p, "f", LayoutGroup("pt", "pts", ("x", "y")))

    def test_to_aos_generates_percent_access(self):
        from repro.codegen import generate_fortran_module

        p = self._program()
        p2 = to_aos(p, "f", LayoutGroup("pt", "pts", ("x", "y")))
        src = generate_fortran_module(make_plan(p2, "GLAF serial"))
        assert "pts%" in src
