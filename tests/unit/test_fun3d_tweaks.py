"""Tests asserting each §4.2.1 manual-tweak switch changes the emitted code
in the documented way — the paper's complete adaptation list."""

import numpy as np
import pytest

from repro.codegen.fortran import FortranGenerator
from repro.fortranlib import FortranRuntime
from repro.fun3d import Fun3DOptions, build_fun3d_program, make_fun3d_plan, make_mesh
from repro.fun3d.legacy_src import full_legacy_source
from repro.fun3d.validation import set_fun3d_inputs
from repro.optimize import Tweaks, make_plan


@pytest.fixture(scope="module")
def program():
    return build_fun3d_program()


def _src(program, tweaks: Tweaks, variant="GLAF-parallel v0") -> str:
    return FortranGenerator(make_plan(program, variant, tweaks=tweaks)).generate_module()


class TestTweakList:
    def test_bullet1_save_attribute(self, program):
        """'Function-scope arrays from inner functions are applied the save
        attribute ... to reduce excess dynamic reallocation.'"""
        base = _src(program, Tweaks())
        saved = _src(program, Tweaks(save_inner_arrays=True))
        assert "ALLOCATABLE, SAVE :: tmp01(:)" not in base
        assert "ALLOCATABLE, SAVE :: tmp01(:)" in saved

    def test_bullet2_threadprivate(self, program):
        """'Module-scope (and some function-scope) arrays are explicitly
        declared as private or threadprivate as appropriate.'"""
        base = _src(program, Tweaks())
        tp = _src(program, Tweaks(threadprivate_module_arrays=True))
        assert "!$OMP THREADPRIVATE" not in base
        assert "!$OMP THREADPRIVATE(grad)" in tp

    def test_bullet3_copyprivate_pointer_target(self, program):
        """'Some module-scope arrays are replaced with pointers and
        copyprivate clauses when supporting nested parallelism.'"""
        base = _src(program, Tweaks())
        cp = _src(program, Tweaks(copyprivate_pointers=True))
        assert ", TARGET :: grad(5, 3)" not in base
        assert ", TARGET :: grad(5, 3)" in cp

    def test_bullet4_multi_variable_reductions(self):
        """'Reduction clauses are updated to specify multiple reduction
        variables when a loop has effectively more than one output.'"""
        from repro.sarb import build_sarb_program

        sarb = build_sarb_program()
        full = _src(sarb, Tweaks(multi_var_reductions=True))
        assert "REDUCTION(+:scratch, slw)" in full
        crippled = _src(sarb, Tweaks(multi_var_reductions=False))
        assert "REDUCTION(+:scratch, slw)" not in crippled

    def test_bullet5_atomic_updates(self, program):
        """'Atomic update clauses are added to parallel updates to
        module-scope arrays.'"""
        plan = make_fun3d_plan(program, Fun3DOptions(parallel_edge_loop=True))
        src = FortranGenerator(plan).generate_module()
        assert "!$OMP ATOMIC" in src

    def test_bullet6_critical_early_return(self, program):
        """'An OpenMP critical clause is added to the early-return section
        of ioff_search.'"""
        plan = make_fun3d_plan(program, Fun3DOptions(parallel_ioff_search=True))
        src = FortranGenerator(plan).generate_module()
        assert "!$OMP CRITICAL" in src


class TestTweakedCodeStillRuns:
    def test_threadprivate_module_loads_and_runs(self, program):
        mesh = make_mesh(27)
        tweaks = Tweaks(threadprivate_module_arrays=True,
                        copyprivate_pointers=True,
                        save_inner_arrays=True)
        src = _src(program, tweaks)
        rt = FortranRuntime()
        rt.load(full_legacy_source(mesh)["fun3d_modules.f90"])
        rt.load(src)
        set_fun3d_inputs(rt, mesh)
        rt.call("edgejp", [mesh.ncell, mesh.nnz])
        jac = rt.modules["fun3d_jac_mod"].variables["jac"].store
        assert np.any(jac != 0)
        assert any(e.kind == "threadprivate" and "grad" in e.private
                   for e in rt.omp_log)

    def test_tweaks_do_not_change_numbers(self, program):
        mesh = make_mesh(27)

        def run(tweaks):
            src = _src(program, tweaks)
            rt = FortranRuntime()
            rt.load(full_legacy_source(mesh)["fun3d_modules.f90"])
            rt.load(src)
            set_fun3d_inputs(rt, mesh)
            rt.call("edgejp", [mesh.ncell, mesh.nnz])
            return rt.modules["fun3d_jac_mod"].variables["jac"].store.copy()

        base = run(Tweaks())
        tweaked = run(Tweaks(threadprivate_module_arrays=True,
                             copyprivate_pointers=True,
                             save_inner_arrays=True))
        assert np.array_equal(base, tweaked)
