"""Unit tests for the fault-tolerance machinery (`repro.robust` +
`repro.glafexec.guard`): fault plans, the divergence guard with serial
fallback, watchdogs, parser error recovery, and the faultcheck sweep."""

import os

import numpy as np
import pytest

from repro import observe
from repro.core import GlafBuilder, I, T_INT, T_REAL8, T_VOID, ref
from repro.errors import (
    CodegenError,
    DiagnosticBundle,
    ExecutionError,
    FortranSyntaxError,
    ResourceLimitError,
    ValidationError,
    WorkloadError,
)
from repro.fortranlib.lexer import Token
from repro.fortranlib.parser import parse_source
from repro.glafexec import (
    ExecutionContext,
    GuardedRunner,
    guard_mode,
    guarded,
    guarded_python_run,
    run_interpreted,
)
from repro.optimize import make_plan
from repro.robust import (
    SITES,
    Budget,
    FaultPlan,
    FaultSpec,
    ResourceLimits,
    fault_injection,
    get_fault_plan,
    inject,
    wall_clock_guard,
)


def _program():
    """Two steps: an independent (parallel) map and a carried (serial) scan."""
    b = GlafBuilder("tiny")
    b.global_grid("v", T_REAL8, dims=("n",), module_scope=True)
    m = b.module("M")
    f = m.function("work", return_type=T_VOID)
    f.param("n", T_INT, intent="in")
    s = f.step("fill")
    s.foreach(i=(1, "n"))
    s.formula(ref("v", I("i")), I("i") * 2.0)
    s = f.step("scan")
    s.foreach(i=(2, "n"))
    s.formula(ref("v", I("i")), ref("v", I("i") - 1) + ref("v", I("i")))
    return b.build()


N = 64


def _reference():
    program = _program()
    _, ctx, _ = run_interpreted(program, "work", [N], sizes={"n": N})
    return ctx.get("v").copy()


# ----------------------------------------------------------------------
# FaultPlan / FaultSpec / inject()
# ----------------------------------------------------------------------
class TestFaultSpec:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValidationError, match="unknown injection site"):
            FaultSpec("no.such.site", "raise")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError, match="does not support"):
            FaultSpec("exec.interp.step", "perturb")

    def test_parse_two_and_three_parts(self):
        spec = FaultSpec.parse("exec.interp.step:raise")
        assert (spec.site, spec.kind, spec.match) == \
            ("exec.interp.step", "raise", {})
        spec = FaultSpec.parse(
            "analysis.parallelize.verdict:misparallelize:adjust2")
        assert spec.match == {"function": "adjust2"}

    def test_parse_bad_spec_rejected(self):
        for bad in ("nocolons", "a:b:c:d", "exec.interp.step:", ":raise"):
            with pytest.raises(ValidationError, match="bad fault spec|unknown"):
                FaultSpec.parse(bad)

    def test_registry_is_complete(self):
        assert set(SITES) == {
            "fortran.lex.tokens", "analysis.parallelize.verdict",
            "codegen.python.assign", "codegen.fortran.omp",
            "codegen.fortran.body", "exec.interp.step", "exec.interp.iter",
            "numeric.sentinel",
        }
        for site in SITES.values():
            assert site.kinds and site.description and site.module


class TestFaultPlan:
    def test_inject_is_noop_without_plan(self):
        assert get_fault_plan() is None
        assert inject("exec.interp.step", function="f") is None

    def test_unregistered_site_caught_under_active_plan(self):
        with fault_injection(FaultPlan()):
            with pytest.raises(ValidationError, match="unregistered site"):
                inject("typo.site")

    def test_plans_nest_and_uninstall(self):
        outer, inner = FaultPlan(), FaultPlan()
        with fault_injection(outer):
            assert get_fault_plan() is outer
            with fault_injection(inner):
                assert get_fault_plan() is inner
            assert get_fault_plan() is outer
        assert get_fault_plan() is None

    def test_raise_kind_fires_once_by_default(self):
        plan = FaultPlan([FaultSpec("exec.interp.step", "raise")])
        with pytest.raises(ExecutionError, match="injected fault"):
            plan.visit("exec.interp.step", None, {"function": "f"})
        assert len(plan.fired) == 1
        # one-shot: the second visit passes through untouched
        assert plan.visit("exec.interp.step", None, {"function": "f"}) is None
        assert len(plan.fired) == 1

    def test_at_defers_firing(self):
        plan = FaultPlan([FaultSpec("exec.interp.step", "raise", at=2)])
        assert plan.visit("exec.interp.step", None, {}) is None
        assert plan.visit("exec.interp.step", None, {}) is None
        with pytest.raises(ExecutionError):
            plan.visit("exec.interp.step", None, {})

    def test_match_filters_on_metadata(self):
        plan = FaultPlan([FaultSpec("exec.interp.step", "raise",
                                    match={"function": "adjust2"})])
        assert plan.visit("exec.interp.step", None, {"function": "other"}) is None
        with pytest.raises(ExecutionError):
            plan.visit("exec.interp.step", None, {"function": "adjust2"})

    def test_declined_transform_stays_armed(self):
        # A token stream with nothing corruptible declines the fault...
        plan = FaultPlan([FaultSpec("fortran.lex.tokens", "corrupt-token")])
        empty = [Token(kind="eof", text="", line=1, col=1)]
        assert plan.visit("fortran.lex.tokens", empty, {}) is None
        assert not plan.fired
        # ...so it still fires on the next, corruptible stream.
        tokens = [Token(kind="name", text="x", line=1, col=1),
                  Token(kind="eof", text="", line=1, col=2)]
        out = plan.visit("fortran.lex.tokens", tokens, {})
        assert out is not None and out[0].text == "?"
        assert len(plan.fired) == 1

    def test_corruption_is_seed_deterministic(self):
        tokens = [Token(kind="name", text=t, line=1, col=i)
                  for i, t in enumerate("abcdefgh")]

        def corrupt(seed):
            plan = FaultPlan([FaultSpec("fortran.lex.tokens", "corrupt-token")],
                             seed=seed)
            out = plan.visit("fortran.lex.tokens", list(tokens), {})
            return [i for i, t in enumerate(out) if t.text == "?"]

        assert corrupt(7) == corrupt(7)

    def test_fired_fault_lands_in_decision_log(self):
        plan = FaultPlan([FaultSpec("exec.interp.step", "raise")])
        with observe.observed() as obs, fault_injection(plan):
            with pytest.raises(ExecutionError):
                inject("exec.interp.step", function="f", step=3)
        entries = obs.decisions.for_stage("fault")
        assert len(entries) == 1
        assert entries[0].verdict == "injected"
        assert entries[0].function == "f"


# ----------------------------------------------------------------------
# GuardedRunner
# ----------------------------------------------------------------------
class TestGuardedRunner:
    def test_clean_run_is_bit_identical_and_quiet(self):
        run = GuardedRunner(_program()).run("work", [N], sizes={"n": N})
        assert not run.fell_back and not run.events and not run.demoted
        assert np.array_equal(run.context.get("v"), _reference())

    def test_misparallelized_step_is_demoted_and_result_correct(self):
        plan = FaultPlan([FaultSpec("analysis.parallelize.verdict",
                                    "misparallelize",
                                    match={"function": "work"})])
        with fault_injection(plan):
            run = GuardedRunner(_program()).run("work", [N], sizes={"n": N})
        assert plan.fired, "fault must actually fire"
        assert run.fell_back
        assert ("work", 1) in run.demoted           # the carried 'scan' step
        assert "divergence" in run.events[0].reason
        assert run.events[0].max_abs_error > run.events[0].tolerance
        assert np.array_equal(run.context.get("v"), _reference())

    def test_probe_execution_error_demotes_and_recovers(self):
        plan = FaultPlan([FaultSpec("exec.interp.step", "raise",
                                    match={"parallel": True})])
        with fault_injection(plan):
            run = GuardedRunner(_program()).run("work", [N], sizes={"n": N})
        assert run.fell_back and ("work", 0) in run.demoted
        assert "ExecutionError" in run.events[0].reason
        assert np.array_equal(run.context.get("v"), _reference())

    def test_demotion_recorded_in_decision_log_and_metrics(self):
        plan = FaultPlan([FaultSpec("exec.interp.step", "raise",
                                    match={"parallel": True})])
        with observe.observed() as obs, fault_injection(plan):
            GuardedRunner(_program()).run("work", [N], sizes={"n": N})
        guard = obs.decisions.for_stage("guard")
        assert len(guard) == 1 and guard[0].verdict == "serial-fallback"
        assert obs.metrics.snapshot()["counters"]["guard.serial_fallbacks"] == 1

    def test_demoted_plan_forces_serial(self):
        program = _program()
        plan = FaultPlan([FaultSpec("exec.interp.step", "raise",
                                    match={"parallel": True})])
        with fault_injection(plan):
            run = GuardedRunner(program).run("work", [N], sizes={"n": N})
        demoted = run.demoted_plan()
        for key in run.demoted:
            assert run.plan.step_is_parallel(*key)
            assert not demoted.step_is_parallel(*key)

    def test_resource_limit_error_is_never_recovered(self):
        runner = GuardedRunner(
            _program(), limits=ResourceLimits(max_loop_iterations=10))
        with pytest.raises(ResourceLimitError, match="iteration budget"):
            runner.run("work", [N], sizes={"n": N})

    def test_guard_mode_context_manager(self):
        assert not guard_mode()
        with guarded():
            assert guard_mode()
            with guarded(enabled=False):
                assert not guard_mode()
            assert guard_mode()
        assert not guard_mode()


# ----------------------------------------------------------------------
# guarded generated-Python execution
# ----------------------------------------------------------------------
class TestGuardedPythonRun:
    def test_healthy_module_is_trusted(self):
        res = guarded_python_run(_program(), "work", [N], sizes={"n": N},
                                 compare=["v"])
        assert not res.fell_back
        assert np.array_equal(res.context.get("v"), _reference())

    def test_perturbed_module_falls_back_to_interpreter(self):
        plan = FaultPlan([FaultSpec("codegen.python.assign", "perturb")])
        with fault_injection(plan):
            res = guarded_python_run(_program(), "work", [N], sizes={"n": N},
                                     compare=["v"])
        assert plan.fired
        assert res.fell_back and "divergence" in res.reason
        assert np.array_equal(res.context.get("v"), _reference())

    def test_fallback_recorded_in_decision_log(self):
        plan = FaultPlan([FaultSpec("codegen.python.assign", "perturb")])
        with observe.observed() as obs, fault_injection(plan):
            guarded_python_run(_program(), "work", [N], sizes={"n": N},
                               compare=["v"])
        guard = obs.decisions.for_stage("guard")
        assert guard and guard[0].verdict == "serial-fallback"

    def test_uncompilable_module_surfaces_as_codegen_error(self, monkeypatch):
        from repro.glafexec import runner as runner_mod

        monkeypatch.setattr(runner_mod, "generate_python_source",
                            lambda plan: "def broken(:\n")
        program = _program()
        ctx = ExecutionContext(program, sizes={"n": N})
        with pytest.raises(CodegenError, match="does not compile") as ei:
            runner_mod.GeneratedModule(make_plan(program, "GLAF serial"), ctx)
        # names the module and quotes the offending line
        assert "<glaf:tiny>" in str(ei.value)
        assert "def broken(:" in str(ei.value)

    def test_uncompilable_module_falls_back_in_guarded_run(self, monkeypatch):
        from repro.glafexec import runner as runner_mod

        monkeypatch.setattr(runner_mod, "generate_python_source",
                            lambda plan: "import json(\n")
        res = guarded_python_run(_program(), "work", [N], sizes={"n": N},
                                 compare=["v"])
        assert res.fell_back and "CodegenError" in res.reason
        assert np.array_equal(res.context.get("v"), _reference())


# ----------------------------------------------------------------------
# watchdogs
# ----------------------------------------------------------------------
class TestWatchdog:
    def test_limits_must_be_positive(self):
        with pytest.raises(ValueError):
            ResourceLimits(max_loop_iterations=0)
        with pytest.raises(ValueError):
            ResourceLimits(max_wall_seconds=-1.0)

    def test_budget_tick_raises_past_cap(self):
        budget = Budget(ResourceLimits(max_loop_iterations=3), what="t")
        budget.start()
        budget.tick(3)
        with pytest.raises(ResourceLimitError, match=r"t: .*\(4 > 3\)"):
            budget.tick()

    def test_interpreter_iteration_budget(self):
        with pytest.raises(ResourceLimitError, match="iteration budget"):
            run_interpreted(_program(), "work", [N], sizes={"n": N},
                            limits=ResourceLimits(max_loop_iterations=N // 2))

    def test_interpreter_budget_allows_run_within_cap(self):
        _, ctx, _ = run_interpreted(
            _program(), "work", [N], sizes={"n": N},
            limits=ResourceLimits(max_loop_iterations=10 * N))
        assert np.array_equal(ctx.get("v"), _reference())

    def test_interpreter_wall_clock_with_injected_stall(self):
        plan = FaultPlan([FaultSpec("exec.interp.iter", "delay",
                                    param=0.2, max_fires=10)])
        with fault_injection(plan):
            with pytest.raises(ResourceLimitError, match="wall-clock"):
                run_interpreted(_program(), "work", [N], sizes={"n": N},
                                limits=ResourceLimits(max_wall_seconds=0.02))

    def test_wall_clock_guard_noop_without_limits(self):
        with wall_clock_guard(None, what="x"):
            pass
        with wall_clock_guard(ResourceLimits(max_loop_iterations=5), what="x"):
            pass

    def test_wall_clock_guard_only_traces_generated_frames(self):
        import time

        with wall_clock_guard(ResourceLimits(max_wall_seconds=0.01),
                              what="generated"):
            time.sleep(0.05)   # plain frames: never traced, never killed


class TestMemoryLimit:
    """The RLIMIT_AS budget batch workers arm at startup."""

    def test_memory_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            ResourceLimits(max_memory_mb=0)
        assert ResourceLimits(max_memory_mb=256).max_memory_mb == 256
        assert ResourceLimits().max_memory_mb is None

    def test_apply_memory_limit_in_subprocess(self):
        # Never lower RLIMIT_AS in the test process itself — a child
        # proves the limit arms and that breaching it is a MemoryError,
        # not a hard kill (the batch worker turns it into a typed
        # ResourceLimitError).
        import subprocess
        import sys

        code = (
            "import sys\n"
            "sys.path.insert(0, %r)\n"
            "from repro.robust import apply_memory_limit\n"
            "assert apply_memory_limit(128)\n"
            "try:\n"
            "    hoard = [bytearray(16 * 1024 * 1024) for _ in range(64)]\n"
            "except MemoryError:\n"
            "    print('tripped')\n"
        ) % os.path.abspath(os.path.join(
            os.path.dirname(__file__), "..", "..", "src"))
        res = subprocess.run([sys.executable, "-c", code],
                             capture_output=True, text=True, timeout=60)
        assert res.returncode == 0, res.stderr
        assert res.stdout.strip() == "tripped"


# ----------------------------------------------------------------------
# parser error recovery
# ----------------------------------------------------------------------
_BROKEN = """\
subroutine good_one(x)
  real(kind=8), intent(inout) :: x
  x = x + 1.0
end subroutine good_one

subroutine bad_stmt(y)
  real(kind=8), intent(inout) :: y
  y = * 2.0
  y = y + 3.0
end subroutine bad_stmt

subroutine also_good(z)
  real(kind=8), intent(inout) :: z
  z = z * 4.0
end subroutine also_good
"""


class TestParserRecovery:
    def test_strict_mode_raises_at_first_error(self):
        with pytest.raises(FortranSyntaxError) as ei:
            parse_source(_BROKEN)
        assert not isinstance(ei.value, DiagnosticBundle)

    def test_recover_mode_collects_and_salvages(self):
        with pytest.raises(DiagnosticBundle) as ei:
            parse_source(_BROKEN, recover=True)
        bundle = ei.value
        assert len(bundle.diagnostics) >= 1
        assert all(isinstance(d, FortranSyntaxError)
                   for d in bundle.diagnostics)
        names = {sp.name for sp in bundle.partial.subprograms}
        assert {"good_one", "also_good"} <= names

    def test_recover_mode_reports_multiple_errors(self):
        two_bad = _BROKEN.replace("z = z * 4.0", "z = ) 4.0")
        with pytest.raises(DiagnosticBundle) as ei:
            parse_source(two_bad, recover=True)
        assert len(ei.value.diagnostics) >= 2

    def test_clean_source_unaffected_by_recover_flag(self):
        clean = _BROKEN.replace("y = * 2.0", "y = y * 2.0")
        strict = parse_source(clean)
        recovered = parse_source(clean, recover=True)
        assert ({sp.name for sp in strict.subprograms}
                == {sp.name for sp in recovered.subprograms})

    def test_bundle_carries_first_location(self):
        with pytest.raises(DiagnosticBundle) as ei:
            parse_source(_BROKEN, recover=True)
        first = ei.value.diagnostics[0]
        assert ei.value.line == first.line

    def test_legacy_codebase_add_file_recover(self):
        from repro.integration import LegacyCodebase

        legacy = LegacyCodebase("damaged")
        legacy.add_file("broken.f90", _BROKEN, recover=True)
        assert "broken.f90" in legacy.diagnostics
        assert legacy.diagnostics["broken.f90"]

    def test_legacy_codebase_strict_by_default(self):
        from repro.integration import LegacyCodebase

        with pytest.raises(FortranSyntaxError):
            LegacyCodebase("damaged").add_file("broken.f90", _BROKEN)


# ----------------------------------------------------------------------
# the faultcheck sweep
# ----------------------------------------------------------------------
class TestFaultCheck:
    def test_sweep_covers_every_site_and_passes(self):
        from repro.robust.faultcheck import run_faultcheck

        report = run_faultcheck(seed=0)
        assert {r.site for r in report.results} == set(SITES)
        assert report.ok, report.render()
        outcomes = {r.site: r.outcome for r in report.results}
        assert outcomes["analysis.parallelize.verdict"] == "recovered"
        assert outcomes["exec.interp.iter"] == "surfaced"
        assert outcomes["numeric.sentinel"] == "recovered"

    def test_report_json_schema(self):
        from repro.robust.faultcheck import FaultCheckReport, SiteResult

        report = FaultCheckReport(seed=3, results=[
            SiteResult("exec.interp.step", "raise", "surfaced", "d", 1, 0)])
        doc = report.to_json()
        assert doc["schema"] == "repro.robust.faultcheck/v1"
        assert doc["ok"] and doc["seed"] == 3
        assert doc["sites"][0]["site"] == "exec.interp.step"

    def test_unknown_scenario_is_a_workload_error(self):
        from repro.robust.scenarios import scenario_for

        with pytest.raises(WorkloadError, match="no robustness scenario"):
            scenario_for("nope")
