"""Unit tests for the benchmark recorder, diff, gate, and trajectory."""

import copy
import itertools
import json

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    bench_files,
    compare_benchmarks,
    environment_fingerprint,
    load_bench,
    next_bench_path,
    record_benchmark,
    render_trend,
    run_timed,
    write_benchmark,
)
from repro.errors import BenchArtifactError
from repro.observe.bench import RepeatStats, summarize_repeats


def fake_clock(step_s: float = 0.001):
    """A deterministic injectable clock: each read advances by ``step_s``."""
    counter = itertools.count()
    return lambda: next(counter) * step_s


@pytest.fixture(scope="module")
def doc():
    # T1/T2 are the two cheapest experiments; the injected clock makes
    # every wall/stage/cell statistic exactly reproducible.
    return record_benchmark(ids=["T1", "T2"], repeats=3, clock=fake_clock())


class TestRepeatStats:
    def test_order_statistics(self):
        s = summarize_repeats([3.0, 1.0, 2.0, 10.0])
        assert s.n == 4
        assert s.minimum == 1.0 and s.maximum == 10.0
        assert s.median == 2.5
        assert s.iqr == pytest.approx(3.0)   # q75=4.75, q25=1.75
        assert s.mean == 4.0

    def test_single_value(self):
        s = summarize_repeats([7.0])
        assert (s.minimum, s.median, s.maximum) == (7.0, 7.0, 7.0)
        assert s.iqr == 0.0

    def test_median_robust_to_one_outlier(self):
        quiet = summarize_repeats([1.0, 1.0, 1.0]).median
        noisy = summarize_repeats([1.0, 1.0, 100.0]).median
        assert noisy == quiet

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize_repeats([])

    def test_dict_roundtrip(self):
        s = summarize_repeats([1.0, 2.0, 3.0])
        assert RepeatStats.from_dict(s.to_dict()) == s


class TestRecorder:
    def test_schema_and_structure(self, doc):
        assert doc["schema"] == BENCH_SCHEMA
        assert doc["meta"] == {"repeats": 3, "ids": ["T1", "T2"], "resumed": 0}
        assert set(doc["experiments"]) == {"T1", "T2"}

    def test_wall_stats_cover_repeats(self, doc):
        wall = doc["experiments"]["T1"]["wall_s"]
        assert wall["n"] == 3
        assert wall["min"] <= wall["median"] <= wall["max"]

    def test_stage_totals_recorded(self, doc):
        stages = doc["experiments"]["T1"]["stages"]
        # T1 drives the full pipeline: plan + analysis under the bench span.
        assert {"bench", "optimize", "analysis"} <= set(stages)
        assert stages["bench"]["n"] == 3

    def test_cells_numeric_get_stats(self, doc):
        cells = doc["experiments"]["T1"]["cells"]
        some_row = next(iter(cells.values()))
        stats = some_row["paper SLOC"]
        assert stats["n"] == 3 and stats["iqr"] == 0.0

    def test_cells_non_numeric_keep_value(self, doc):
        cells = doc["experiments"]["T2"]["cells"]
        desc = next(iter(cells.values()))["Description"]
        assert isinstance(desc, str)

    def test_injected_clock_is_deterministic(self):
        a = record_benchmark(ids=["T2"], repeats=2, clock=fake_clock())
        b = record_benchmark(ids=["T2"], repeats=2, clock=fake_clock())
        assert a["experiments"] == b["experiments"]

    def test_environment_fingerprint(self, doc):
        env = doc["environment"]
        assert env["cpu_count"] >= 1
        assert "i5-2400" in env["machines"]
        assert env["guard_mode"] is False
        assert env["fault_plan_active"] is False

    def test_hung_git_probe_degrades_the_fingerprint(self, monkeypatch):
        # A git probe that hangs past its timeout must not silently omit
        # the sha: the fingerprint records the reason, and the artifact
        # meta carries it as fingerprint:degraded.
        import subprocess as sp

        from repro.bench import record as rec

        def hang(*a, **kw):
            raise sp.TimeoutExpired(cmd=a[0], timeout=kw.get("timeout", 10))

        monkeypatch.setattr(rec.subprocess, "run", hang)
        env = environment_fingerprint()
        assert env["git_sha"] == "unknown"
        assert env["degraded"] == [
            {"field": "git_sha",
             "reason": "git probe hung past its 10s timeout"}]
        doc = record_benchmark(ids=["T2"], repeats=1, clock=fake_clock())
        assert doc["meta"]["fingerprint:degraded"] == env["degraded"]

    def test_failed_git_probe_carries_stderr(self, monkeypatch):
        import subprocess as sp

        from repro.bench import record as rec

        def fail(*a, **kw):
            return sp.CompletedProcess(a[0], 128, stdout="",
                                       stderr="fatal: not a git repository")

        monkeypatch.setattr(rec.subprocess, "run", fail)
        env = environment_fingerprint()
        assert env["git_sha"] == "unknown"
        assert "not a git repository" in env["degraded"][0]["reason"]

    def test_healthy_fingerprint_has_no_degraded_field(self):
        env = environment_fingerprint()
        if env["git_sha"] != "unknown":
            assert "degraded" not in env

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            record_benchmark(ids=["ZZ"], repeats=1)

    def test_zero_repeats_raises(self):
        with pytest.raises(ValueError):
            record_benchmark(ids=["T2"], repeats=0)

    def test_leaves_noop_observability_installed(self, doc):
        from repro import observe

        assert not observe.is_observing()


class TestArtifactFiles:
    def test_next_path_numbering(self, tmp_path):
        assert next_bench_path(tmp_path).name == "BENCH_1.json"
        (tmp_path / "BENCH_1.json").write_text("{}")
        (tmp_path / "BENCH_4.json").write_text("{}")
        (tmp_path / "BENCH_notanumber.json").write_text("{}")
        assert next_bench_path(tmp_path).name == "BENCH_5.json"
        assert [p.name for p in bench_files(tmp_path)] == [
            "BENCH_1.json", "BENCH_4.json"]

    def test_write_and_load_roundtrip(self, tmp_path, doc):
        path = write_benchmark(doc, tmp_path / "BENCH_1.json")
        assert load_bench(path) == json.loads(json.dumps(doc))

    def test_load_rejects_wrong_schema(self, tmp_path):
        bad = tmp_path / "BENCH_1.json"
        bad.write_text('{"schema": "other/v0"}')
        with pytest.raises(BenchArtifactError):
            load_bench(bad)

    def test_load_rejects_non_json(self, tmp_path):
        bad = tmp_path / "BENCH_1.json"
        bad.write_text("{nope")
        with pytest.raises(BenchArtifactError):
            load_bench(bad)

    def test_write_stamps_a_content_digest(self, tmp_path, doc):
        from repro.bench import stamp_digest

        path = write_benchmark(doc, tmp_path / "BENCH_1.json")
        on_disk = json.loads(path.read_text())
        digest = on_disk["environment"]["content_sha256"]
        assert len(digest) == 64
        # Re-stamping is idempotent: the digest covers the doc minus itself.
        assert stamp_digest(on_disk)["environment"]["content_sha256"] \
            == digest

    def test_load_rejects_tampered_digest(self, tmp_path, doc):
        path = write_benchmark(doc, tmp_path / "BENCH_1.json")
        tampered = json.loads(path.read_text())
        tampered["experiments"]["T1"]["wall_s"]["median"] *= 2.0
        path.write_text(json.dumps(tampered))
        with pytest.raises(BenchArtifactError, match="digest mismatch"):
            load_bench(path)

    def test_load_accepts_legacy_artifact_without_digest(self, tmp_path, doc):
        path = write_benchmark(doc, tmp_path / "BENCH_1.json")
        legacy = json.loads(path.read_text())
        del legacy["environment"]["content_sha256"]
        path.write_text(json.dumps(legacy))
        assert load_bench(path)["meta"] == doc["meta"]


class TestCompare:
    def test_identical_runs_pass_the_gate(self, doc):
        cmp = compare_benchmarks(doc, doc, fail_on_regress=0.5)
        assert cmp.ok
        assert not cmp.cell_drift and not cmp.env_diffs
        assert all(d.delta_pct == 0.0 for d in cmp.deltas)
        assert "REGRESSION" not in cmp.render()

    def test_synthetic_regression_fails_the_gate(self, doc):
        slower = copy.deepcopy(doc)
        slower["experiments"]["T1"]["wall_s"]["median"] *= 2.0
        cmp = compare_benchmarks(doc, slower, fail_on_regress=50.0)
        assert not cmp.ok
        assert [d.experiment_id for d in cmp.regressions] == ["T1"]
        text = cmp.render()
        assert "REGRESSION" in text and "FAIL" in text

    def test_regression_below_threshold_passes(self, doc):
        slower = copy.deepcopy(doc)
        slower["experiments"]["T1"]["wall_s"]["median"] *= 1.2
        assert compare_benchmarks(doc, slower, fail_on_regress=50.0).ok

    def test_no_threshold_never_fails(self, doc):
        slower = copy.deepcopy(doc)
        slower["experiments"]["T1"]["wall_s"]["median"] *= 100.0
        assert compare_benchmarks(doc, slower).ok

    def test_cell_drift_reported_not_gated(self, doc):
        drifted = copy.deepcopy(doc)
        row = next(iter(drifted["experiments"]["T1"]["cells"]))
        drifted["experiments"]["T1"]["cells"][row]["paper SLOC"]["median"] += 1
        cmp = compare_benchmarks(doc, drifted, fail_on_regress=1000.0)
        assert cmp.ok                       # drift alone never fails the gate
        assert any(r == row for _, r, _, _, _ in cmp.cell_drift)
        assert "value drift" in cmp.render()

    def test_new_and_removed_rows(self, doc):
        changed = copy.deepcopy(doc)
        cells = changed["experiments"]["T2"]["cells"]
        first = next(iter(cells))
        cells["brand new variant"] = cells.pop(first)
        cmp = compare_benchmarks(doc, changed)
        assert ("T2", "brand new variant") in cmp.added_rows
        assert ("T2", first) in cmp.removed_rows

    def test_new_and_removed_experiments(self, doc):
        trimmed = copy.deepcopy(doc)
        del trimmed["experiments"]["T2"]
        cmp = compare_benchmarks(doc, trimmed)
        assert cmp.removed_experiments == ["T2"]
        assert compare_benchmarks(trimmed, doc).added_experiments == ["T2"]

    def test_environment_change_is_flagged(self, doc):
        moved = copy.deepcopy(doc)
        moved["environment"]["cpu_count"] = 4096
        cmp = compare_benchmarks(doc, moved)
        assert ("cpu_count", doc["environment"]["cpu_count"], 4096) \
            in cmp.env_diffs
        assert "environment changed" in cmp.render()

    def test_committed_baseline_compares_to_itself(self):
        from pathlib import Path

        repo = Path(__file__).resolve().parents[2]
        baseline = load_bench(repo / "BENCH_1.json")
        assert set(baseline["experiments"]) == {
            "T1", "T2", "F5", "F6", "F7", "C1", "C2"}
        assert compare_benchmarks(baseline, baseline, fail_on_regress=0.1).ok


class TestTrend:
    def test_empty_trajectory(self):
        assert "no BENCH_" in render_trend([])

    def test_table_has_one_row_per_artifact(self, doc):
        text = render_trend([("BENCH_1.json", doc), ("BENCH_2.json", doc)])
        assert text.count("BENCH_") == 2
        assert "T1" in text and "total" in text

    def test_missing_experiment_renders_dash(self, doc):
        partial = copy.deepcopy(doc)
        del partial["experiments"]["T2"]
        text = render_trend([("BENCH_1.json", doc), ("BENCH_2.json", partial)])
        assert "-" in text.splitlines()[-1]


class TestRunTimed:
    def test_returns_result_and_elapsed(self):
        from repro.bench import EXPERIMENTS

        result, elapsed = run_timed(EXPERIMENTS["T2"], clock=fake_clock())
        assert result.experiment_id == "T2"
        assert elapsed == pytest.approx(0.001)   # exactly one clock step

    def test_experiment_result_to_json(self):
        from repro.bench import EXPERIMENTS

        result = EXPERIMENTS["T2"].run()
        doc = result.to_json()
        assert doc["experiment_id"] == "T2"
        assert doc["headers"] == ["Implementation", "Description"]
        assert doc["rows"] == [list(r) for r in result.rows]
        json.dumps(doc)                          # JSON-serializable


class TestEnvironmentFingerprint:
    def test_guard_mode_is_reflected(self):
        from repro.glafexec import guarded

        with guarded():
            assert environment_fingerprint()["guard_mode"] is True
        assert environment_fingerprint()["guard_mode"] is False

    def test_fault_plan_is_reflected(self):
        from repro.robust import FaultPlan, fault_injection

        with fault_injection(FaultPlan()):
            assert environment_fingerprint()["fault_plan_active"] is True
        assert environment_fingerprint()["fault_plan_active"] is False
