"""Unit tests for the intrinsics table and the error hierarchy."""

import numpy as np
import pytest

from repro import errors
from repro.fortranlib.intrinsics import INTRINSICS, SPECIAL_FORMS, is_intrinsic


class TestIntrinsics:
    def test_registry_sourced_functions_present(self):
        for name in ("abs", "alog", "sum", "exp", "sqrt", "min", "max", "mod"):
            assert is_intrinsic(name)

    def test_fortran77_spellings(self):
        assert INTRINSICS["dabs"](-2.0) == 2.0
        assert np.isclose(INTRINSICS["dsqrt"](4.0), 2.0)
        assert INTRINSICS["amax1"](1.0, 3.0, 2.0) == 3.0
        assert INTRINSICS["min0"](5, 2, 9) == 2
        assert INTRINSICS["iabs"](-7) == 7
        assert INTRINSICS["nint"](2.6) == 3
        assert INTRINSICS["float"](3) == 3.0

    def test_numeric_inquiry(self):
        assert INTRINSICS["huge"](1.0) > 1e300
        assert INTRINSICS["huge"](1) == np.iinfo(np.int64).max
        assert 0 < INTRINSICS["tiny"](1.0) < 1e-300
        assert 0 < INTRINSICS["epsilon"](1.0) < 1e-15

    def test_allocated_is_a_special_form(self):
        assert "allocated" in SPECIAL_FORMS
        assert is_intrinsic("allocated")
        assert "allocated" not in INTRINSICS

    def test_dot_product(self):
        assert INTRINSICS["dot_product"](np.ones(3), np.arange(3.0)) == 3.0


class TestErrorHierarchy:
    def test_all_subclass_glaf_error(self):
        for name in ("ValidationError", "BuilderError", "AnalysisError",
                     "CodegenError", "FortranSyntaxError", "FortranRuntimeError",
                     "IntegrationError", "InterfaceMismatchError",
                     "ExecutionError", "PerfModelError", "WorkloadError",
                     "ResourceLimitError", "DiagnosticBundle"):
            exc = getattr(errors, name)
            assert issubclass(exc, errors.GlafError)

    def test_interface_mismatch_is_integration_error(self):
        assert issubclass(errors.InterfaceMismatchError, errors.IntegrationError)

    def test_resource_limit_is_execution_error(self):
        assert issubclass(errors.ResourceLimitError, errors.ExecutionError)

    def test_diagnostic_bundle_is_fortran_syntax_error(self):
        assert issubclass(errors.DiagnosticBundle, errors.FortranSyntaxError)

    def test_fortran_syntax_error_location(self):
        e = errors.FortranSyntaxError("bad token", line=12, col=7)
        assert "line 12" in str(e) and "col 7" in str(e)
        assert e.line == 12 and e.col == 7

    def test_fortran_syntax_error_without_location(self):
        e = errors.FortranSyntaxError("bad token")
        assert "line" not in str(e)

    def test_fortran_syntax_error_col_only_location(self):
        # Regression: a col without a line used to render as '()' noise;
        # each part must stand alone.
        e = errors.FortranSyntaxError("bad token", col=7)
        assert str(e) == "bad token (col 7)"
        assert e.line is None and e.col == 7
        e = errors.FortranSyntaxError("bad token", line=3)
        assert str(e) == "bad token (line 3)"

    def test_diagnostic_bundle_aggregates(self):
        first = errors.FortranSyntaxError("oops", line=4, col=2)
        bundle = errors.DiagnosticBundle(
            [first, errors.FortranSyntaxError("later", line=9)])
        assert "2 error(s) collected" in str(bundle)
        assert "oops" in str(bundle)
        assert bundle.line == 4 and bundle.col == 2
        assert bundle.partial is None
