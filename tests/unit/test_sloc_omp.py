"""Unit tests for SLOC accounting and OpenMP directive rendering."""

import pytest

from repro.codegen.omp import OmpDirective, render_c, render_fortran, render_fortran_end
from repro.codegen.sloc import count_sloc, module_unit_slocs, unit_sloc

SRC = """\
! header comment
MODULE m
  USE other_mod, ONLY: x
  IMPLICIT NONE
CONTAINS
  SUBROUTINE a(n)
    USE third_mod
    INTEGER :: n

!$OMP PARALLEL DO
    DO i = 1, n
      x = 1
    END DO
!$OMP END PARALLEL DO
  END SUBROUTINE a

  FUNCTION b() RESULT(r)
    INTEGER :: r
    r = 1
  END FUNCTION b
END MODULE m
"""


class TestSloc:
    def test_comments_and_blanks_excluded(self):
        assert count_sloc("! c\n\nx = 1\n") == 1

    def test_use_excluded_by_default(self):
        # Paper: SLOC "does not account for lines ... from imported modules".
        base = count_sloc(SRC)
        with_imports = count_sloc(SRC, count_imports=True)
        assert with_imports == base + 2

    def test_omp_counted_by_default(self):
        assert count_sloc(SRC) - count_sloc(SRC, count_omp=False) == 2

    def test_unit_sloc(self):
        a = unit_sloc(SRC, "a")
        b = unit_sloc(SRC, "b")
        assert a > b > 0

    def test_unit_sloc_missing(self):
        with pytest.raises(ValueError):
            unit_sloc(SRC, "zz")

    def test_module_unit_slocs(self):
        d = module_unit_slocs(SRC)
        assert set(d) == {"a", "b"}
        assert d["a"] == unit_sloc(SRC, "a")


class TestOmpRendering:
    def test_plain_directive(self):
        d = OmpDirective()
        assert render_fortran(d) == "!$OMP PARALLEL DO"
        assert render_fortran_end() == "!$OMP END PARALLEL DO"
        assert render_c(d) == "#pragma omp parallel for"

    def test_full_clause_set(self):
        d = OmpDirective(private=("j", "t"), firstprivate=("x",),
                         reductions=(("+", "s1"), ("+", "s2"), ("MAX", "hi")),
                         collapse=2, schedule="STATIC", num_threads=4)
        text = render_fortran(d)
        assert "PRIVATE(j, t)" in text
        assert "FIRSTPRIVATE(x)" in text
        # Multi-variable reduction grouped per operator (§4.2.1 tweak).
        assert "REDUCTION(+:s1, s2)" in text
        assert "REDUCTION(MAX:hi)" in text
        assert "COLLAPSE(2)" in text
        assert "SCHEDULE(STATIC)" in text
        assert "NUM_THREADS(4)" in text

    def test_c_lowercase(self):
        d = OmpDirective(private=("j",), reductions=(("+", "s"),))
        text = render_c(d)
        assert "private(j)" in text and "reduction(+:s)" in text

    def test_collapse_one_omitted(self):
        assert "COLLAPSE" not in render_fortran(OmpDirective(collapse=1))
