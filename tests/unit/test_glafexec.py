"""Unit tests for the GLAF IR interpreter and execution context."""

import numpy as np
import pytest

from repro.core import GlafBuilder, I, T_INT, T_LOGICAL, T_REAL8, T_VOID, lib, ref
from repro.core.builder import StepBuilder as SB
from repro.errors import ExecutionError
from repro.glafexec import ExecutionContext, Interpreter, run_interpreted


def _program():
    b = GlafBuilder("x")
    b.global_grid("gv", T_REAL8, dims=("n",), module_scope=True)
    b.global_grid("gs", T_REAL8, module_scope=True)
    b.global_grid("w", T_REAL8, dims=(3,), common_block="blk")
    m = b.module("M")

    f = m.function("axpy", return_type=T_VOID)
    f.param("n", T_INT, intent="in")
    f.param("a", T_REAL8, intent="in")
    f.param("x", T_REAL8, dims=("n",), intent="in")
    f.param("y", T_REAL8, dims=("n",), intent="inout")
    s = f.step()
    s.foreach(i=(1, "n"))
    s.formula(ref("y", I("i")), ref("a") * ref("x", I("i")) + ref("y", I("i")))

    g = m.function("total", return_type=T_REAL8)
    g.param("n", T_INT, intent="in")
    g.param("x", T_REAL8, dims=("n",), intent="in")
    g.returns(lib("SUM", ref("x")))

    h = m.function("search", return_type=T_INT)
    h.param("n", T_INT, intent="in")
    h.param("x", T_REAL8, dims=("n",), intent="in")
    h.param("thr", T_REAL8, intent="in")
    s = h.step()
    s.foreach(i=(1, "n"))
    s.if_(ref("x", I("i")).gt(ref("thr")), [SB.ret(I("i"))])
    h.returns(-1)

    k = m.function("use_globals", return_type=T_VOID)
    k.param("n", T_INT, intent="in")
    s = k.step()
    s.foreach(i=(1, "n"))
    s.formula(ref("gv", I("i")), ref("w", 1) * I("i"))
    s = k.step()
    s.formula(ref("gs"), lib("SUM", ref("gv")))
    return b.build()


class TestContext:
    def test_symbolic_dims_resolved_from_sizes(self):
        p = _program()
        ctx = ExecutionContext(p, sizes={"n": 5})
        assert ctx.get("gv").shape == (5,)

    def test_missing_size_raises(self):
        p = _program()
        with pytest.raises(ExecutionError, match="dimension"):
            ExecutionContext(p)

    def test_values_initialize_globals(self):
        p = _program()
        ctx = ExecutionContext(p, sizes={"n": 3}, values={"w": np.ones(3)})
        assert np.all(ctx.get("w") == 1.0)

    def test_unknown_value_name_rejected(self):
        p = _program()
        with pytest.raises(ExecutionError, match="unknown global"):
            ExecutionContext(p, sizes={"n": 3}, values={"zzz": 1})

    def test_scalar_set_get(self):
        p = _program()
        ctx = ExecutionContext(p, sizes={"n": 3})
        ctx.set("gs", 2.5)
        assert ctx.value("gs") == 2.5

    def test_snapshot_is_deep(self):
        p = _program()
        ctx = ExecutionContext(p, sizes={"n": 3})
        snap = ctx.snapshot(["gv"])
        ctx.get("gv")[0] = 9.0
        assert snap["gv"][0] == 0.0

    def test_common_block_view(self):
        p = _program()
        ctx = ExecutionContext(p, sizes={"n": 3})
        view = ctx.common_block_view("blk")
        assert list(view) == ["w"]
        with pytest.raises(ExecutionError):
            ctx.common_block_view("nope")


class TestInterpreter:
    def test_axpy(self):
        p = _program()
        y = np.ones(4)
        run_interpreted(p, "axpy", [4, 2.0, np.arange(4.0), y], sizes={"n": 4})
        assert np.array_equal(y, 2.0 * np.arange(4.0) + 1.0)

    def test_value_function(self):
        p = _program()
        r, _, _ = run_interpreted(p, "total", [3, np.array([1.0, 2.0, 3.0])],
                                  sizes={"n": 3})
        assert r == 6.0

    def test_early_return(self):
        p = _program()
        x = np.array([0.0, 5.0, 9.0])
        assert run_interpreted(p, "search", [3, x, 4.0], sizes={"n": 3})[0] == 2
        assert run_interpreted(p, "search", [3, x, 99.0], sizes={"n": 3})[0] == -1

    def test_globals_and_commons(self):
        p = _program()
        _, ctx, _ = run_interpreted(p, "use_globals", [3], sizes={"n": 3},
                                    values={"w": np.array([2.0, 0.0, 0.0])})
        assert np.array_equal(ctx.get("gv"), [2.0, 4.0, 6.0])
        assert ctx.value("gs") == 12.0

    def test_argument_count_checked(self):
        p = _program()
        ctx = ExecutionContext(p, sizes={"n": 3})
        with pytest.raises(ExecutionError, match="argument"):
            Interpreter(p, ctx).call("axpy", [3])

    def test_dtype_checked(self):
        p = _program()
        ctx = ExecutionContext(p, sizes={"n": 3})
        with pytest.raises(ExecutionError, match="dtype"):
            Interpreter(p, ctx).call("axpy", [3, 1.0, np.zeros(3, np.float32),
                                              np.zeros(3)])

    def test_scalar_out_requires_cell(self):
        b = GlafBuilder("t")
        m = b.module("M")
        f = m.function("setx", return_type=T_VOID)
        f.param("x", T_REAL8, intent="out")
        f.step().formula(ref("x"), 1.0)
        p = b.build()
        ctx = ExecutionContext(p)
        interp = Interpreter(p, ctx)
        with pytest.raises(ExecutionError, match="0-d"):
            interp.call("setx", [1.0])
        cell = np.zeros(())
        interp.call("setx", [cell])
        assert cell[()] == 1.0

    def test_bounds_checked(self):
        # gv has extent 3 in the context but the loop runs to 5.
        p = _program()
        ctx = ExecutionContext(p, sizes={"n": 3})
        with pytest.raises(ExecutionError, match="bounds"):
            Interpreter(p, ctx).call("use_globals", [5])

    def test_stats_recorded(self):
        p = _program()
        _, _, interp = run_interpreted(p, "use_globals", [3], sizes={"n": 3})
        assert interp.stats.loop_iterations[("use_globals", 0)] == 3
        assert interp.stats.calls["use_globals"] == 1

    def test_save_store(self):
        b = GlafBuilder("t")
        m = b.module("M")
        f = m.function("bump", return_type=T_REAL8)
        f.local("state", T_REAL8, dims=(1,), save=True)
        s = f.step()
        s.foreach(i=(1, 1))
        s.formula(ref("state", 1), ref("state", 1) + 1.0)
        f.returns(ref("state", 1))
        p = b.build()
        ctx = ExecutionContext(p)
        interp = Interpreter(p, ctx)
        assert interp.call("bump", []) == 1.0
        assert interp.call("bump", []) == 2.0
        interp.reset_save_store()
        assert interp.call("bump", []) == 1.0

    def test_fortran_integer_division(self):
        b = GlafBuilder("t")
        m = b.module("M")
        f = m.function("f", return_type=T_INT)
        f.param("x", T_INT, intent="in")
        f.param("y", T_INT, intent="in")
        f.returns(ref("x") / ref("y"))
        p = b.build()
        ctx = ExecutionContext(p)
        interp = Interpreter(p, ctx)
        assert interp.call("f", [-7, 2]) == -3

    def test_step_condition_gates_body(self):
        b = GlafBuilder("t")
        m = b.module("M")
        f = m.function("f", return_type=T_VOID)
        f.param("flag", T_INT, intent="in")
        f.param("out", T_REAL8, dims=(2,), intent="inout")
        s = f.step()
        s.condition(ref("flag").eq(1))
        s.formula(ref("out", 1), 5.0)
        p = b.build()
        out = np.zeros(2)
        run_interpreted(p, "f", [0, out])
        assert out[0] == 0.0
        run_interpreted(p, "f", [1, out])
        assert out[0] == 5.0
