"""Additional FORTRAN runtime coverage: characters, logicals, printing,
module re-export, and the figure-5 auto bar."""

import numpy as np
import pytest

from repro.fortranlib import FortranRuntime


class TestMoreRuntime:
    def test_character_variables(self):
        rt = FortranRuntime()
        rt.load("""
SUBROUTINE greet()
  CHARACTER(LEN=16) :: msg
  msg = 'hello'
  PRINT *, msg, 'world'
END SUBROUTINE greet
""")
        rt.call("greet", [])
        assert rt.output == [("hello", "world")]

    def test_logical_variables_and_branching(self):
        rt = FortranRuntime()
        rt.load("""
INTEGER FUNCTION pick(x)
  REAL(KIND=8), INTENT(IN) :: x
  LOGICAL :: big
  big = x > 10.0D0
  IF (big) THEN
    pick = 1
  ELSE
    pick = 0
  END IF
END FUNCTION pick
""")
        assert rt.call("pick", [20.0]) == 1
        assert rt.call("pick", [2.0]) == 0

    def test_module_reexport_one_level(self):
        rt = FortranRuntime()
        rt.load("""
MODULE inner_mod
  IMPLICIT NONE
  REAL(KIND=8) :: payload
END MODULE inner_mod

MODULE outer_mod
  USE inner_mod
  IMPLICIT NONE
END MODULE outer_mod

SUBROUTINE poke()
  USE outer_mod
  payload = 7.0D0
END SUBROUTINE poke

REAL(KIND=8) FUNCTION peek()
  USE inner_mod, ONLY: payload
  peek = payload
END FUNCTION peek
""")
        rt.call("poke", [])
        assert rt.call("peek", []) == 7.0

    def test_print_expressions(self):
        rt = FortranRuntime()
        rt.load("""
PROGRAM p
  INTEGER :: i
  i = 6
  PRINT *, 'sq', i * i, i > 3
END PROGRAM p
""")
        rt.run_program()
        label, sq, flag = rt.output[0]
        assert (label, sq, flag) == ("sq", 36, True)

    def test_intrinsic_name_shadowed_by_variable(self):
        """A local array named like an intrinsic resolves to the array."""
        rt = FortranRuntime()
        rt.load("""
REAL(KIND=8) FUNCTION f()
  REAL(KIND=8) :: exp(3)
  exp(2) = 4.5D0
  f = exp(2)
END FUNCTION f
""")
        assert rt.call("f", []) == 4.5

    def test_nested_do_exit_only_inner(self):
        rt = FortranRuntime()
        rt.load("""
INTEGER FUNCTION count2()
  INTEGER :: i, j
  count2 = 0
  DO i = 1, 3
    DO j = 1, 5
      IF (j == 2) EXIT
      count2 = count2 + 1
    END DO
  END DO
END FUNCTION count2
""")
        assert rt.call("count2", []) == 3  # one inner iteration per i

    def test_derived_type_as_argument(self):
        rt = FortranRuntime()
        rt.load("""
MODULE tmod
  IMPLICIT NONE
  TYPE box
    REAL(KIND=8) :: w
  END TYPE box
  TYPE(box) :: b1
END MODULE tmod

SUBROUTINE widen(bx)
  USE tmod, ONLY: box
  TYPE(box), INTENT(INOUT) :: bx
  bx%w = bx%w * 2.0D0
END SUBROUTINE widen

REAL(KIND=8) FUNCTION getw()
  USE tmod, ONLY: b1
  CALL widen(b1)
  getw = b1%w
END FUNCTION getw
""")
        rt.modules["tmod"].variables["b1"].store.fields["w"][()] = 3.0
        assert rt.call("getw", []) == 6.0


class TestFigure5AutoBar:
    def test_auto_bar_appended_and_at_least_v3(self):
        from repro.sarb.perffig import figure5_rows

        rows = dict(figure5_rows(include_auto=True))
        assert "GLAF-parallel auto" in rows
        assert rows["GLAF-parallel auto"] >= rows["GLAF-parallel v3"] * 0.999
