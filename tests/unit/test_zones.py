"""Unit tests for the zone-level Synoptic SARB driver (paper §2.2)."""

import numpy as np
import pytest

from repro.sarb.atmosphere import SarbDimensions, zone_sizes
from repro.sarb.zones import MpiZoneModel, mpi_omp_speedup, run_synoptic


class TestSynopticDriver:
    @pytest.fixture(scope="class")
    def result(self):
        return run_synoptic(n_zones=3, n_hours=2,
                            dims=SarbDimensions(nv=20, nblw=4, nbsw=2))

    def test_one_result_per_zone(self, result):
        assert len(result.zones) == 3
        assert [z.zone for z in result.zones] == [0, 1, 2]

    def test_hours_accumulate_olr(self, result):
        # olr_acc accumulates over the serial synoptic hours within a zone.
        for z in result.zones:
            assert z.olr_total > 0
            assert z.hours == 2

    def test_zones_differ(self, result):
        olr = result.olr_by_zone()
        assert len(set(np.round(olr, 6))) == 3  # distinct atmospheres

    def test_deterministic(self):
        dims = SarbDimensions(nv=20, nblw=4, nbsw=2)
        a = run_synoptic(n_zones=2, n_hours=1, dims=dims)
        b = run_synoptic(n_zones=2, n_hours=1, dims=dims)
        assert np.array_equal(a.olr_by_zone(), b.olr_by_zone())

    def test_outputs_finite(self, result):
        for z in result.zones:
            assert np.isfinite(z.mean_fulw) and np.isfinite(z.mean_fusw)


class TestMpiZoneModel:
    def test_assignment_partitions_zones(self):
        m = MpiZoneModel(n_zones=18, n_ranks=4)
        blocks = m.zone_assignment()
        flat = [z for b in blocks for z in b]
        assert flat == list(range(18))
        assert len(blocks) == 4

    def test_makespan_bounds(self):
        m = MpiZoneModel(n_zones=18, n_ranks=4)
        assert m.serial_time() / 4 <= m.makespan() <= m.serial_time()

    def test_mpi_speedup_below_rank_count(self):
        m = MpiZoneModel(n_zones=18, n_ranks=4)
        assert 1.0 < m.mpi_speedup() < 4.0

    def test_block_distribution_is_imbalanced(self):
        # Equator-heavy zones make contiguous blocks uneven (paper §2.2:
        # "zones closer to the equator are naturally larger").
        m = MpiZoneModel(n_zones=18, n_ranks=4)
        assert m.load_imbalance() > 1.05

    def test_more_ranks_never_slower(self):
        m4 = MpiZoneModel(n_zones=18, n_ranks=4)
        m8 = MpiZoneModel(n_zones=18, n_ranks=8)
        assert m8.makespan() <= m4.makespan()

    def test_combined_mpi_omp_speedup(self):
        m = MpiZoneModel(n_zones=18, n_ranks=4)
        combined = mpi_omp_speedup(m, 1.59)     # Figure 6's 4T intra-zone gain
        assert combined == pytest.approx(m.mpi_speedup() * 1.59)
        assert combined > m.mpi_speedup()

    def test_invalid_intra_speedup(self):
        with pytest.raises(ValueError):
            mpi_omp_speedup(MpiZoneModel(), 0.0)
