"""Unit tests for program validation."""

import pytest

from repro.core import GlafBuilder, I, T_INT, T_REAL8, T_VOID, ref
from repro.core.builder import StepBuilder as SB
from repro.core.function import GlafFunction, GlafModule, GlafProgram
from repro.core.grid import Grid
from repro.core.step import Assign, Range, Return, Step
from repro.core.validate import validate_program
from repro.errors import ValidationError


def _program_with(fn: GlafFunction) -> GlafProgram:
    p = GlafProgram(name="t")
    mod = GlafModule(name="M")
    mod.add_function(fn)
    p.add_module(mod)
    return p


class TestScoping:
    def test_unknown_grid_rejected(self):
        fn = GlafFunction(name="f")
        fn.steps = [Step(name="s", stmts=[Assign(ref("nope"), 1.0)])]
        with pytest.raises(ValidationError, match="unknown grid"):
            validate_program(_program_with(fn))

    def test_unbound_index_rejected(self):
        fn = GlafFunction(name="f")
        fn.add_grid(Grid(name="a", ty=T_REAL8, dims=(4,)))
        fn.steps = [Step(name="s", stmts=[Assign(ref("a", I("i")), 1.0)])]
        with pytest.raises(ValidationError, match="unbound index"):
            validate_program(_program_with(fn))

    def test_rank_mismatch_on_read(self):
        fn = GlafFunction(name="f")
        fn.add_grid(Grid(name="a", ty=T_REAL8, dims=(4, 4)))
        fn.add_grid(Grid(name="x", ty=T_REAL8))
        fn.steps = [Step(name="s", ranges=[Range("i", 1, 4)],
                         stmts=[Assign(ref("x"), ref("a", I("i")))])]
        with pytest.raises(ValidationError, match="rank"):
            validate_program(_program_with(fn))

    def test_rank_mismatch_on_write(self):
        fn = GlafFunction(name="f")
        fn.add_grid(Grid(name="a", ty=T_REAL8, dims=(4,)))
        fn.steps = [Step(name="s", ranges=[Range("i", 1, 4), Range("j", 1, 4)],
                         stmts=[Assign(ref("a", I("i"), I("j")), 1.0)])]
        with pytest.raises(ValidationError, match="rank"):
            validate_program(_program_with(fn))

    def test_whole_array_assignment_rejected(self):
        fn = GlafFunction(name="f")
        fn.add_grid(Grid(name="a", ty=T_REAL8, dims=(4,)))
        fn.steps = [Step(name="s", stmts=[Assign(ref("a"), 1.0)])]
        with pytest.raises(ValidationError, match="whole array"):
            validate_program(_program_with(fn))

    def test_assign_to_parameter_rejected(self):
        fn = GlafFunction(name="f")
        fn.add_grid(Grid(name="c", ty=T_REAL8, is_parameter=True, init_data=1.0))
        fn.steps = [Step(name="s", stmts=[Assign(ref("c"), 2.0)])]
        with pytest.raises(ValidationError, match="PARAMETER"):
            validate_program(_program_with(fn))


class TestCalls:
    def test_unknown_callee(self):
        b = GlafBuilder("p")
        m = b.module("M")
        f = m.function("f")
        f.step().call("ghost", [])
        with pytest.raises(ValidationError, match="unknown function"):
            b.build()

    def test_arity_mismatch(self):
        b = GlafBuilder("p")
        m = b.module("M")
        g = m.function("g")
        g.param("x", T_REAL8, intent="in")
        g.step()
        f = m.function("f")
        f.step().call("g", [])
        with pytest.raises(ValidationError, match="argument"):
            b.build()

    def test_value_function_not_callable_as_statement(self):
        b = GlafBuilder("p")
        m = b.module("M")
        g = m.function("g", return_type=T_INT)
        g.returns(1)
        f = m.function("f")
        f.step().call("g", [])
        with pytest.raises(ValidationError, match="returns a value"):
            b.build()

    def test_subroutine_not_usable_in_expression(self):
        from repro.core.expr import FuncCall

        b = GlafBuilder("p")
        m = b.module("M")
        m.function("s").step()
        f = m.function("f")
        f.local("x", T_REAL8)
        f.step().formula(ref("x"), FuncCall("s", ()))
        with pytest.raises(ValidationError, match="subroutine"):
            b.build()

    def test_duplicate_function_names_across_modules(self):
        b = GlafBuilder("p")
        b.module("M1").function("f").step()
        b.module("M2").function("f").step()
        with pytest.raises(ValidationError, match="program-unique"):
            b.build()


class TestSubroutineRule:
    def test_subroutine_cannot_return_value(self):
        fn = GlafFunction(name="f", return_type=T_VOID)
        fn.steps = [Step(name="s", stmts=[Return(ref("f"))])]
        fn.add_grid(Grid(name="x", ty=T_REAL8))
        fn.steps = [Step(name="s", stmts=[Return(ref("x"))])]
        with pytest.raises(ValidationError, match="subroutine"):
            validate_program(_program_with(fn))

    def test_unknown_lib_function(self):
        from repro.core.expr import LibCall

        fn = GlafFunction(name="f")
        fn.add_grid(Grid(name="x", ty=T_REAL8))
        fn.steps = [Step(name="s", stmts=[Assign(ref("x"), LibCall("NOPE", (ref("x"),)))])]
        with pytest.raises(ValidationError, match="library"):
            validate_program(_program_with(fn))

    def test_external_grid_must_live_in_global_scope(self):
        fn = GlafFunction(name="f")
        fn.grids["w"] = Grid(name="w", ty=T_REAL8, common_block="blk")
        with pytest.raises(ValidationError, match="Global Scope"):
            validate_program(_program_with(fn))


class TestCollectMode:
    """validate_program(collect=True) gathers every structural error into
    one DiagnosticBundle instead of raising on the first (mirroring
    parse_source(recover=True))."""

    def _two_error_program(self) -> GlafProgram:
        fn = GlafFunction(name="f")
        fn.steps = [
            Step(name="s1", stmts=[Assign(ref("nope"), 1.0)]),
            Step(name="s2", stmts=[Assign(ref("missing"), 2.0)]),
        ]
        return _program_with(fn)

    def test_all_errors_collected(self):
        from repro.errors import DiagnosticBundle

        with pytest.raises(DiagnosticBundle) as exc:
            validate_program(self._two_error_program(), collect=True)
        bundle = exc.value
        assert len(bundle.diagnostics) == 2
        joined = " ".join(str(d) for d in bundle.diagnostics)
        assert "nope" in joined and "missing" in joined

    def test_default_mode_raises_on_first(self):
        with pytest.raises(ValidationError, match="nope"):
            validate_program(self._two_error_program())

    def test_bundle_is_a_validation_error_subtype(self):
        # Callers that catch GlafError keep working.
        from repro.errors import DiagnosticBundle, GlafError

        assert issubclass(DiagnosticBundle, GlafError)

    def test_clean_program_passes_in_both_modes(self):
        fn = GlafFunction(name="f")
        fn.add_grid(Grid(name="a", ty=T_REAL8, dims=(4,)))
        fn.steps = [Step(name="s", ranges=[Range("i", 1, 4)],
                         stmts=[Assign(ref("a", I("i")), 1.0)])]
        p = _program_with(fn)
        validate_program(p)
        validate_program(p, collect=True)
