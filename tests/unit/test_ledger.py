"""The persistent run ledger: records, index, crash-safety, sampling.

Covers :mod:`repro.observe.ledger` (append / digest / reconcile /
quarantine / gc), :mod:`repro.observe.sample` (the background
ResourceSampler), and the crash contract: a process SIGKILLed mid-run
leaves the ledger loadable, and a torn record file is quarantined — it
never masquerades as a completed run (docs/RUN_LEDGER.md).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro import observe
from repro.errors import RunLedgerError
from repro.observe.ledger import INDEX_SCHEMA, RUN_SCHEMA


def _observed_demo(counter_value: int = 1):
    with observe.observed() as obs:
        with obs.tracer.span("analysis.plan", step="demo"):
            obs.metrics.counter("plan.steps").inc(counter_value)
        obs.decisions.record("guard", "f", 0, "sweep", "parallel")
    return obs


def _record(command: str = "experiments", **kw):
    return observe.build_record(
        command=command, argv=["x"], observation=_observed_demo(),
        environment={"python": "3", "git_sha": "deadbeef"}, **kw)


class TestBuildRecord:
    def test_distills_the_observation(self):
        rec = _record(wall_s=1.5, exit_code=0, status="ok")
        assert rec["schema"] == RUN_SCHEMA
        assert rec["command"] == "experiments"
        assert rec["outcome"] == {"status": "ok", "exit_code": 0}
        assert rec["wall_s"] == 1.5
        assert [s["stage"] for s in rec["stages"]] == ["analysis"]
        assert rec["flame"][0]["name"] == "analysis.plan"
        assert rec["flame"][0]["calls"] == 1
        assert rec["metrics"]["counters"]["plan.steps"] == 1
        assert rec["decisions"][0]["stage"] == "guard"
        json.dumps(rec)                           # fully serializable

    def test_decision_stamps_are_rebased_to_the_run(self):
        rec = _record()
        # Absolute perf_counter values would be hours; rebased stamps
        # sit inside this sub-second run.
        assert 0.0 <= rec["decisions"][0]["t"] < 10.0

    def test_checkpoint_linkage_is_carried(self):
        rec = _record(checkpoint={"dir": ".ckpt", "resume": True})
        assert rec["checkpoint"] == {"dir": ".ckpt", "resume": True}

    def test_default_environment_is_the_bench_fingerprint(self):
        rec = observe.build_record(command="lint")
        for key in ("python", "numpy", "platform", "git_sha", "executor"):
            assert key in rec["environment"]


class TestRunLedger:
    def test_append_stamps_id_and_digest(self, tmp_path):
        ledger = observe.RunLedger(tmp_path)
        rec = ledger.append(_record())
        assert rec["id"] == "run-000001"
        on_disk = json.loads((tmp_path / "run-000001.json").read_text())
        assert on_disk["sha256"] == rec["sha256"]
        assert ledger.load("run-000001")["sha256"] == rec["sha256"]

    def test_ids_are_monotonic_and_survive_gc_gaps(self, tmp_path):
        ledger = observe.RunLedger(tmp_path)
        for _ in range(3):
            ledger.append(_record())
        ledger.gc(keep=1)                 # leaves only run-000003
        assert ledger.append(_record())["id"] == "run-000004"

    def test_index_mirrors_the_records(self, tmp_path):
        ledger = observe.RunLedger(tmp_path)
        ledger.append(_record(wall_s=0.25))
        doc = json.loads((tmp_path / "index.json").read_text())
        assert doc["schema"] == INDEX_SCHEMA
        entry = doc["entries"][0]
        assert entry["id"] == "run-000001"
        assert entry["command"] == "experiments"
        assert entry["wall_s"] == 0.25
        assert entry["git_sha"] == "deadbeef"

    def test_entries_heal_a_stale_index(self, tmp_path):
        # The append protocol writes the record before the index, so a
        # crash between the two leaves a stale index.  entries() must
        # notice the record-file/index mismatch and rebuild.
        ledger = observe.RunLedger(tmp_path)
        ledger.append(_record())
        ledger.append(_record())
        (tmp_path / "index.json").unlink()
        assert [e["id"] for e in ledger.entries()] == [
            "run-000001", "run-000002"]
        assert (tmp_path / "index.json").exists()    # rebuilt on disk

    def test_truncated_record_is_quarantined(self, tmp_path):
        ledger = observe.RunLedger(tmp_path)
        ledger.append(_record())
        bad = tmp_path / "run-000009.json"
        bad.write_text('{"schema": "repro.run/v1", "outco')
        entries = ledger.entries()
        assert [e["id"] for e in entries] == ["run-000001"]
        assert not bad.exists()
        assert (ledger.quarantine_dir / "run-000009.json").exists()

    def test_tampered_record_fails_the_digest(self, tmp_path):
        ledger = observe.RunLedger(tmp_path)
        rec = ledger.append(_record())
        path = tmp_path / f"{rec['id']}.json"
        doc = json.loads(path.read_text())
        doc["wall_s"] = 99.0                      # hand-edit
        path.write_text(json.dumps(doc))
        with pytest.raises(RunLedgerError, match="digest mismatch"):
            ledger.load(rec["id"])

    def test_load_unknown_id_names_the_known_ones(self, tmp_path):
        ledger = observe.RunLedger(tmp_path)
        ledger.append(_record())
        with pytest.raises(RunLedgerError, match="run-000001"):
            ledger.load("run-000404")

    def test_resolve_latest(self, tmp_path):
        ledger = observe.RunLedger(tmp_path)
        with pytest.raises(RunLedgerError, match="empty"):
            ledger.resolve("latest")
        ledger.append(_record())
        ledger.append(_record())
        assert ledger.resolve(None)["id"] == "run-000002"
        assert ledger.resolve("latest")["id"] == "run-000002"

    def test_gc_drops_oldest_and_purges_quarantine(self, tmp_path):
        ledger = observe.RunLedger(tmp_path)
        for _ in range(4):
            ledger.append(_record())
        (tmp_path / "run-000099.json").write_text("torn")
        ledger.entries()                          # quarantines the torn one
        removed = ledger.gc(keep=2)
        assert removed == ["run-000001", "run-000002"]
        assert [e["id"] for e in ledger.entries()] == [
            "run-000003", "run-000004"]
        assert not ledger.quarantine_dir.exists()

    def test_gc_keep_zero_drops_everything(self, tmp_path):
        ledger = observe.RunLedger(tmp_path)
        ledger.append(_record())
        assert ledger.gc(keep=0) == ["run-000001"]
        assert ledger.entries() == []

    def test_gc_negative_is_a_typed_error(self, tmp_path):
        with pytest.raises(RunLedgerError):
            observe.RunLedger(tmp_path).gc(keep=-1)


class TestLedgerDirFromEnv:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(observe.LEDGER_ENV, raising=False)
        assert observe.ledger_dir_from_env() == observe.DEFAULT_LEDGER_DIR

    @pytest.mark.parametrize("value", ["", "0", "off", "OFF", "no", "false"])
    def test_env_kill_switch(self, monkeypatch, value):
        monkeypatch.setenv(observe.LEDGER_ENV, value)
        assert observe.ledger_dir_from_env() is None

    def test_env_directory_and_flag_precedence(self, monkeypatch):
        monkeypatch.setenv(observe.LEDGER_ENV, "/tmp/envledger")
        assert observe.ledger_dir_from_env() == "/tmp/envledger"
        assert observe.ledger_dir_from_env("flagdir") == "flagdir"
        monkeypatch.setenv(observe.LEDGER_ENV, "0")
        assert observe.ledger_dir_from_env("flagdir") == "flagdir"


class TestCrashSafety:
    """SIGKILL a real ledgered CLI subprocess mid-run (the same contract
    scripts/resume_smoke.py drives for bench checkpoints)."""

    def _spawn(self, cwd, ledger_dir):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "experiments", "X1",
             "--ledger", str(ledger_dir)],
            cwd=cwd, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)

    def test_sigkill_mid_run_leaves_ledger_loadable(self, tmp_path):
        ledger_dir = tmp_path / "runs"
        proc = self._spawn(tmp_path, ledger_dir)
        time.sleep(0.8)                  # inside the experiment, pre-append
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10)

        # However far the run got, the ledger must load: either no
        # record landed (killed before append) or a complete, digest-
        # valid one did (append is atomic).  Nothing in between.
        ledger = observe.RunLedger(ledger_dir)
        entries = ledger.entries()
        for entry in entries:
            record = ledger.load(entry["id"])    # digest-verified
            assert record["schema"] == RUN_SCHEMA
        if ledger_dir.exists():
            quarantined = (list(ledger.quarantine_dir.glob("*.json"))
                           if ledger.quarantine_dir.exists() else [])
            assert quarantined == []

        # And the next ledgered run appends cleanly on top.
        res = subprocess.run(
            [sys.executable, "-m", "repro", "variants"],
            cwd=tmp_path, capture_output=True, text=True,
            env={**os.environ, "PYTHONPATH": os.path.abspath(
                os.path.join(os.path.dirname(__file__), "..", "..", "src"))})
        assert res.returncode == 0

    def test_partial_record_plus_stale_index_is_quarantined(self, tmp_path):
        # Simulate the worst non-atomic-filesystem outcome: a torn record
        # file *and* an index that never heard about it.
        ledger = observe.RunLedger(tmp_path)
        ledger.append(_record())
        torn = tmp_path / "run-000002.json"
        torn.write_text(json.dumps(
            {"schema": RUN_SCHEMA, "command": "experiments"})[:40])
        entries = ledger.entries()
        assert [e["id"] for e in entries] == ["run-000001"]
        assert (ledger.quarantine_dir / "run-000002.json").exists()
        # The healed index is durable: a fresh reader agrees.
        assert [e["id"] for e in observe.RunLedger(tmp_path).entries()] \
            == ["run-000001"]


_APPENDER = r"""
import sys
sys.path.insert(0, {src!r})
from repro import observe

ledger = observe.RunLedger({dir!r})
for i in range({count}):
    ledger.append(observe.build_record(
        command="stress", argv=["w", {tag!r}, str(i)],
        environment={{"python": "3", "git_sha": "deadbeef"}}))
print("done")
"""


class TestConcurrentAppend:
    """Many writers, one ledger: every record lands exactly once.

    The append protocol (advisory ``index.lock`` around the record-claim
    + index write, with hard-link record claiming underneath) must hold
    across *processes*, not just threads — concurrent ``repro batch``
    invocations share one ``.repro/runs``.
    """

    PROCS = 4
    PER_PROC = 5

    def _src(self):
        return os.path.abspath(os.path.join(
            os.path.dirname(__file__), "..", "..", "src"))

    def test_parallel_processes_never_lose_or_collide(self, tmp_path):
        ledger_dir = str(tmp_path / "runs")
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _APPENDER.format(
                    src=self._src(), dir=ledger_dir,
                    count=self.PER_PROC, tag=f"w{i}")],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
            for i in range(self.PROCS)
        ]
        for p in procs:
            out, err = p.communicate(timeout=120)
            assert p.returncode == 0, err
            assert out.strip() == "done"

        ledger = observe.RunLedger(ledger_dir)
        entries = ledger.entries()
        ids = [e["id"] for e in entries]
        assert len(ids) == self.PROCS * self.PER_PROC
        assert len(set(ids)) == len(ids)          # no id ever reused
        # Every record is digest-valid and every writer's appends all
        # landed (none overwritten by a racing claim).
        tags = []
        for entry in entries:
            record = ledger.load(entry["id"])     # digest-verified
            tags.append(tuple(record["argv"][1:]))
        assert len(set(tags)) == self.PROCS * self.PER_PROC
        quarantined = (list(ledger.quarantine_dir.glob("*.json"))
                       if ledger.quarantine_dir.exists() else [])
        assert quarantined == []

    def test_parallel_threads_within_one_process(self, tmp_path):
        import threading

        ledger = observe.RunLedger(tmp_path / "runs")
        errors = []

        def work(tag):
            try:
                for i in range(self.PER_PROC):
                    ledger.append(observe.build_record(
                        command="stress", argv=[tag, str(i)],
                        environment={"python": "3", "git_sha": "d"}))
            except Exception as e:                # pragma: no cover
                errors.append(e)

        threads = [threading.Thread(target=work, args=(f"t{i}",))
                   for i in range(self.PROCS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert errors == []
        ids = [e["id"] for e in ledger.entries()]
        assert len(ids) == len(set(ids)) == self.PROCS * self.PER_PROC

    def test_stale_lock_is_broken(self, tmp_path):
        ledger = observe.RunLedger(tmp_path / "runs")
        ledger.dir.mkdir(parents=True, exist_ok=True)
        lock = ledger.dir / "index.lock"
        lock.write_text("99999")
        old = time.time() - 120                   # well past LOCK_STALE_S
        os.utime(lock, (old, old))
        ledger.append(_record())                  # must not deadlock
        assert len(ledger.entries()) == 1


class TestResourceSampler:
    def test_collects_monotone_ticks(self):
        sampler = observe.ResourceSampler(interval=0.01)
        with sampler:
            time.sleep(0.08)
        series = sampler.series()
        assert len(series) >= 2           # several ticks + the final one
        ts = [s["t"] for s in series]
        assert ts == sorted(ts)
        for tick in series:
            assert tick["rss_mb"] >= 0.0
            assert tick["cpu_s"] >= 0.0
            assert isinstance(tick["gc_gen0"], int)

    def test_records_start_stop_decisions_and_gauges(self):
        with observe.observed() as obs:
            with observe.ResourceSampler(interval=0.01) as sampler:
                time.sleep(0.03)
        stages = [d.stage for d in obs.decisions.events]
        assert stages.count("sample:resource") == 2
        verdicts = [d.verdict for d in obs.decisions.events
                    if d.stage == "sample:resource"]
        assert verdicts == ["started", "stopped"]
        snap = obs.metrics.snapshot()
        assert snap["gauges"]["sample.rss_mb"] > 0.0
        assert snap["histograms"]["sample.rss_mb"]["count"] >= 1
        assert sampler.ticks >= 1

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            observe.ResourceSampler(interval=0.0)

    def test_double_start_is_an_error(self):
        sampler = observe.ResourceSampler(interval=0.5)
        sampler.start()
        try:
            with pytest.raises(RuntimeError):
                sampler.start()
        finally:
            sampler.stop()

    def test_stop_without_start_is_a_noop(self):
        observe.ResourceSampler(interval=0.5).stop()

    def test_rss_reader_reports_something_plausible(self):
        rss = observe.read_rss_bytes()
        # A live CPython with numpy imported sits well above 10 MB.
        assert rss > 10 * 1024 * 1024
