"""Unit tests for the expression AST."""

import pytest

from repro.core.expr import (
    BinOp,
    Const,
    E,
    FuncCall,
    GridRef,
    I,
    IndexVar,
    LibCall,
    UnOp,
    grids_read,
    index_vars_used,
    lib,
    ref,
    walk,
)


class TestConstructors:
    def test_E_lifts_scalars(self):
        assert E(3) == Const(3)
        assert E(2.5) == Const(2.5)
        assert E(True) == Const(True)

    def test_E_lifts_strings_to_scalar_grid_refs(self):
        assert E("n_atoms") == GridRef("n_atoms")

    def test_E_passes_expressions_through(self):
        e = I("i") + 1
        assert E(e) is e

    def test_E_rejects_junk(self):
        with pytest.raises(TypeError):
            E([1, 2])

    def test_ref_and_lib(self):
        r = ref("a", I("i"), 2)
        assert r.grid == "a"
        assert r.indices == (IndexVar("i"), Const(2))
        c = lib("abs", r)
        assert c.name == "ABS"  # upper-cased
        assert c.args == (r,)


class TestOperators:
    def test_arithmetic_sugar(self):
        e = I("i") * 2 + 1
        assert isinstance(e, BinOp) and e.op == "+"
        assert isinstance(e.left, BinOp) and e.left.op == "*"

    def test_reflected_operators(self):
        e = 2 * I("i")
        assert isinstance(e, BinOp)
        assert e.left == Const(2)

    def test_negation(self):
        e = -I("i")
        assert isinstance(e, UnOp) and e.op == "neg"

    def test_comparison_methods(self):
        e = ref("x").gt(0.5)
        assert isinstance(e, BinOp) and e.op == ">"
        assert ref("x").le(1).op == "<="
        assert ref("x").eq(1).op == "=="
        assert ref("x").ne(1).op == "!="

    def test_logical_methods(self):
        e = ref("x").gt(0).and_(ref("y").lt(1))
        assert e.op == "and"
        assert ref("b").not_().op == "not"

    def test_power_and_division(self):
        assert (I("i") ** 2).op == "**"
        assert (I("i") / 2).op == "/"
        assert (I("i") % 3).op == "%"

    def test_unknown_binop_rejected(self):
        with pytest.raises(ValueError):
            BinOp("<<", Const(1), Const(2))

    def test_unknown_unop_rejected(self):
        with pytest.raises(ValueError):
            UnOp("abs", Const(1))


class TestTraversal:
    def test_walk_preorder(self):
        e = ref("a", I("i")) + lib("ABS", ref("b"))
        kinds = [type(n).__name__ for n in walk(e)]
        assert kinds[0] == "BinOp"
        assert "GridRef" in kinds and "LibCall" in kinds and "IndexVar" in kinds

    def test_index_vars_used(self):
        e = ref("a", I("i") + 1, I("j")) * I("k")
        assert index_vars_used(e) == {"i", "j", "k"}

    def test_grids_read(self):
        e = ref("a", I("i")) + ref("b") * FuncCall("f", (ref("c"),))
        assert grids_read(e) == {"a", "b", "c"}

    def test_const_validation(self):
        with pytest.raises(TypeError):
            Const(object())

    def test_nested_indices_walked(self):
        e = ref("q", ref("cell_nodes", ref("c"), I("n")), I("k"))
        assert grids_read(e) == {"q", "cell_nodes", "c"}
        assert index_vars_used(e) == {"n", "k"}
