"""Unit tests for the vectorized array executor and the Executor registry.

The integration-level cross-executor equivalence suite lives in
``tests/integration/test_executor_equivalence.py``; this file covers the
lift-legality analysis (``compile_step``), the executor selection
machinery, FORTRAN scalar semantics surviving the lift, fallback
bookkeeping, and the guarded executor's divergence handling.
"""

import numpy as np
import pytest

from repro.core import GlafBuilder, I, T_INT, T_REAL8, T_VOID, lib, ref
from repro.core.builder import StepBuilder as SB
from repro.errors import (
    ExecutionError,
    NumericIntegrityError,
    ResourceLimitError,
)
from repro.glafexec import (
    EXECUTOR_NAMES,
    ExecutionContext,
    Interpreter,
    LiftFailure,
    LiftedStep,
    VectorizedInterpreter,
    compile_step,
    executor_mode,
    get_executor,
    guarded_vectorized_run,
    liftability_report,
    set_executor_mode,
    using_executor,
)
from repro.glafexec.executor import _initial_mode


def _step(program, fn_name, idx=0):
    return program.find_function(fn_name).steps[idx]


def _build(body):
    """One module, one subroutine ``f`` whose steps ``body`` populates."""
    b = GlafBuilder("t")
    m = b.module("M")
    f = m.function("f", return_type=T_VOID)
    f.param("n", T_INT, intent="in")
    f.param("x", T_REAL8, dims=("n",), intent="in")
    f.param("y", T_REAL8, dims=("n",), intent="inout")
    body(f)
    return b.build()


class TestCompileStep:
    def test_pointwise_lifts(self):
        def body(f):
            s = f.step("pw")
            s.foreach(i=(1, "n"))
            s.formula(ref("y", I("i")), ref("x", I("i")) * 2.0)

        lifted = compile_step(_step(_build(body), "f"))
        assert isinstance(lifted, LiftedStep)
        assert [a.kind for a in lifted.assigns] == ["pointwise"]

    def test_sum_reduction_lifts(self):
        def body(f):
            s = f.step("red")
            s.foreach(i=(1, "n"))
            s.formula(ref("y", 1), ref("y", 1) + ref("x", I("i")))

        lifted = compile_step(_step(_build(body), "f"))
        assert isinstance(lifted, LiftedStep)
        assert [a.kind for a in lifted.assigns] == ["reduce"]
        assert lifted.assigns[0].op == "+"

    def test_minmax_reduction_lifts(self):
        def body(f):
            s = f.step("mx")
            s.foreach(i=(1, "n"))
            s.formula(ref("y", 1), lib("MAX", ref("y", 1), ref("x", I("i"))))

        lifted = compile_step(_step(_build(body), "f"))
        assert isinstance(lifted, LiftedStep)
        assert lifted.assigns[0].op == "max"

    def test_branch_split_same_op_reduction_lifts(self):
        # An IF whose branches both accumulate with + flattens into two
        # masked reduce-assigns to one accumulator — legal.
        def body(f):
            s = f.step("br")
            s.foreach(i=(1, "n"))
            s.if_(ref("x", I("i")).gt(0.0),
                  [SB.assign(ref("y", 1), ref("y", 1) + ref("x", I("i")))],
                  [SB.assign(ref("y", 1), ref("y", 1) + 1.0)])

        lifted = compile_step(_step(_build(body), "f"))
        assert isinstance(lifted, LiftedStep)
        assert [a.op for a in lifted.assigns] == ["+", "+"]

    def test_mixed_op_reduction_refused(self):
        def body(f):
            s = f.step("mix")
            s.foreach(i=(1, "n"))
            s.if_(ref("x", I("i")).gt(0.0),
                  [SB.assign(ref("y", 1), ref("y", 1) + ref("x", I("i")))],
                  [SB.assign(ref("y", 1),
                             lib("MAX", ref("y", 1), ref("x", I("i"))))])

        failure = compile_step(_step(_build(body), "f"))
        assert isinstance(failure, LiftFailure)
        assert "mixed" in failure.reason

    def test_loop_carried_read_refused(self):
        def body(f):
            s = f.step("lc")
            s.foreach(i=(2, "n"))
            s.formula(ref("y", I("i")),
                      ref("y", I("i") - 1) + ref("x", I("i")))

        failure = compile_step(_step(_build(body), "f"))
        assert isinstance(failure, LiftFailure)
        assert "loop-carried" in failure.reason

    def test_call_and_return_and_exit_refused(self):
        def call_body(f):
            s = f.step("c")
            s.foreach(i=(1, "n"))
            s.call("f", [ref("n"), ref("x"), ref("y")])

        def ret_body(f):
            s = f.step("r")
            s.foreach(i=(1, "n"))
            s.if_(ref("x", I("i")).gt(0.0), [SB.ret()])

        def exit_body(f):
            s = f.step("e")
            s.foreach(i=(1, "n"))
            s.if_(ref("x", I("i")).gt(0.0), [SB.exit_stmt()])
            s.formula(ref("y", I("i")), ref("x", I("i")))

        for body in (call_body, ret_body, exit_body):
            assert isinstance(compile_step(_step(_build(body), "f")),
                              LiftFailure)

    def test_indirect_write_refused(self):
        b = GlafBuilder("t")
        m = b.module("M")
        f = m.function("f", return_type=T_VOID)
        f.param("n", T_INT, intent="in")
        f.param("idx", T_INT, dims=("n",), intent="in")
        f.param("y", T_REAL8, dims=("n",), intent="inout")
        s = f.step("scatter")
        s.foreach(i=(1, "n"))
        s.formula(ref("y", ref("idx", I("i"))), 1.0)
        failure = compile_step(_step(b.build(), "f"))
        assert isinstance(failure, LiftFailure)

    def test_triangular_bounds_refused(self):
        def body(f):
            s = f.step("tri")
            s.foreach(i=(1, "n"), j=(1, I("i")))
            s.formula(ref("y", I("i")), ref("y", I("i")) + 1.0)

        failure = compile_step(_step(_build(body), "f"))
        assert isinstance(failure, LiftFailure)

    def test_sarb_liftability_report(self):
        from repro.sarb import build_sarb_program

        rep = liftability_report(build_sarb_program())
        refused = {k: v for k, v in rep.items() if v}
        # Exactly one genuinely loop-carried step falls back.
        assert list(refused) == [("adjust2", 1)]
        assert "loop-carried" in refused[("adjust2", 1)]
        assert len(rep) > 15

    def test_liftability_report_is_sorted_by_function(self):
        from repro.fun3d import build_fun3d_program
        from repro.sarb import build_sarb_program

        for program in (build_sarb_program(), build_fun3d_program()):
            names = [fn for fn, _ in liftability_report(program)]
            assert names == sorted(names)


class TestSnapshotElision:
    def test_dead_on_entry_pointwise_grid_is_snapshot_free(self):
        def body(f):
            s = f.step("pw")
            s.foreach(i=(1, "n"))
            s.formula(ref("y", I("i")), ref("x", I("i")) * 2.0)

        lifted = compile_step(_step(_build(body), "f"))
        assert lifted.snapshot_free == ("y",)

    def test_live_on_entry_grid_keeps_its_snapshot(self):
        def body(f):
            s = f.step("acc")
            s.foreach(i=(1, "n"))
            s.formula(ref("y", I("i")), ref("y", I("i")) + 1.0)

        lifted = compile_step(_step(_build(body), "f"))
        assert lifted.snapshot_free == ()

    def test_masked_write_keeps_its_snapshot(self):
        def body(f):
            s = f.step("mask")
            s.foreach(i=(1, "n"))
            s.if_(ref("x", I("i")).gt(0.0),
                  [SB.assign(ref("y", I("i")), ref("x", I("i")))], [])

        lifted = compile_step(_step(_build(body), "f"))
        assert lifted.snapshot_free == ()

    def test_elision_counted_and_logged(self):
        from repro import observe

        def body(f):
            s = f.step("pw")
            s.foreach(i=(1, "n"))
            s.formula(ref("y", I("i")), ref("x", I("i")) * 2.0)

        p = _build(body)
        x = np.arange(1.0, 6.0)
        y = np.zeros(5)
        with observe.observed() as obs:
            get_executor("vectorized").run(p, "f", [5, x, y], sizes={"n": 5})
        assert np.array_equal(y, x * 2.0)
        assert obs.metrics.counter(
            "exec.vectorized.snapshot_elided").value >= 1
        events = obs.decisions.for_stage("executor:snapshot-elide")
        assert events and events[0].verdict == "no-rollback-copy"
        assert any("dead on step entry" in r for r in events[0].reasons)

    def test_fun3d_benchmark_steps_elide_snapshots(self):
        # The acceptance gate: at least one shipped benchmark step skips
        # its rollback copy via the liveness proof.
        from repro.fun3d import build_fun3d_program

        program = build_fun3d_program()
        elided = []
        for fn in program.functions():
            for idx, step in enumerate(fn.steps):
                lifted = compile_step(step)
                if isinstance(lifted, LiftedStep) and lifted.snapshot_free:
                    elided.append((fn.name, idx, lifted.snapshot_free))
        assert elided, "no FUN3D step proves a snapshot-free write"


class TestExecutorSelection:
    def test_registry_names(self):
        assert EXECUTOR_NAMES == ("interpreter", "vectorized", "guarded")
        for name in EXECUTOR_NAMES:
            assert get_executor(name) is not None

    def test_unknown_executor_raises(self):
        with pytest.raises(ExecutionError, match="unknown executor"):
            get_executor("turbo")
        with pytest.raises(ExecutionError, match="unknown executor"):
            set_executor_mode("turbo")

    def test_mode_trio_and_restore(self):
        # The initial mode depends on REPRO_EXECUTOR (the CI vectorized
        # leg sets it), so assert the transitions, not the starting point.
        initial = executor_mode()
        assert initial in EXECUTOR_NAMES
        target = "vectorized" if initial != "vectorized" else "interpreter"
        prev = set_executor_mode(target)
        assert prev == initial
        try:
            assert executor_mode() == target
            with using_executor("guarded"):
                assert executor_mode() == "guarded"
            assert executor_mode() == target
        finally:
            set_executor_mode(prev)
        assert executor_mode() == initial

    def test_env_var_sets_initial_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "vectorized")
        assert _initial_mode() == "vectorized"
        monkeypatch.setenv("REPRO_EXECUTOR", "bogus")
        assert _initial_mode() == "interpreter"
        monkeypatch.delenv("REPRO_EXECUTOR")
        assert _initial_mode() == "interpreter"

    def test_get_executor_defaults_to_mode(self):
        from repro.glafexec.executor import VectorizedExecutor

        with using_executor("vectorized"):
            assert isinstance(get_executor(), VectorizedExecutor)


def _semantics_program():
    b = GlafBuilder("sem")
    m = b.module("M")
    f = m.function("f", return_type=T_VOID)
    f.param("n", T_INT, intent="in")
    f.param("a", T_INT, dims=("n",), intent="in")
    f.param("b", T_INT, dims=("n",), intent="in")
    f.param("q", T_INT, dims=("n",), intent="inout")
    f.param("r", T_INT, dims=("n",), intent="inout")
    s = f.step("divmod")
    s.foreach(i=(1, "n"))
    s.formula(ref("q", I("i")), ref("a", I("i")) / ref("b", I("i")))
    s = f.step("modstep")
    s.foreach(i=(1, "n"))
    s.formula(ref("r", I("i")), ref("a", I("i")) % ref("b", I("i")))
    return b.build()


class TestFortranSemantics:
    def test_integer_division_and_mod_match_interpreter(self):
        p = _semantics_program()
        a = np.array([7, -7, 7, -7, 9], dtype=np.int64)
        b = np.array([2, 2, -2, -2, 4], dtype=np.int64)
        outs = {}
        for mode in ("interpreter", "vectorized"):
            q = np.zeros(5, dtype=np.int64)
            r = np.zeros(5, dtype=np.int64)
            get_executor(mode).run(p, "f", [5, a, b, q, r], sizes={"n": 5})
            outs[mode] = (q.copy(), r.copy())
        # FORTRAN: / truncates toward zero, MOD takes the dividend's sign.
        assert np.array_equal(outs["vectorized"][0], [3, -3, -3, 3, 2])
        assert np.array_equal(outs["vectorized"][1], [1, -1, 1, -1, 1])
        assert np.array_equal(outs["interpreter"][0], outs["vectorized"][0])
        assert np.array_equal(outs["interpreter"][1], outs["vectorized"][1])

    def test_division_by_zero_demotes_to_reference_semantics(self):
        # The array path refuses to guess at a zero divisor: it raises
        # internally, the step is rolled back and demoted, and the
        # interpreter's reference semantics are what the caller sees.
        p = _semantics_program()
        a = np.ones(3, dtype=np.int64)
        b = np.array([1, 0, 1], dtype=np.int64)
        q = np.zeros(3, dtype=np.int64)
        r = np.zeros(3, dtype=np.int64)
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            run = get_executor("vectorized").run(p, "f", [3, a, b, q, r],
                                                 sizes={"n": 3})
            q2 = np.zeros(3, dtype=np.int64)
            r2 = np.zeros(3, dtype=np.int64)
            get_executor("interpreter").run(p, "f", [3, a, b, q2, r2],
                                            sizes={"n": 3})
        assert any("zero" in f.reason for f in run.fallbacks)
        assert np.array_equal(q, q2) and np.array_equal(r, r2)

    def test_sentinel_trip_raises_through_lifted_step(self):
        from repro.numeric import sentinels

        def body(f):
            s = f.step("pw")
            s.foreach(i=(1, "n"))
            s.formula(ref("y", I("i")), ref("x", I("i")) * 2.0)

        p = _build(body)
        x = np.ones(4)
        x[2] = np.nan
        with sentinels():
            with pytest.raises(NumericIntegrityError) as exc:
                get_executor("vectorized").run(p, "f", [4, x, np.zeros(4)],
                                               sizes={"n": 4})
        assert exc.value.kind == "nan"

    def test_iteration_budget_enforced(self):
        from repro.robust import ResourceLimits

        def body(f):
            s = f.step("pw")
            s.foreach(i=(1, "n"))
            s.formula(ref("y", I("i")), ref("x", I("i")) * 2.0)

        p = _build(body)
        ex = get_executor("vectorized", limits=ResourceLimits(
            max_loop_iterations=3))
        with pytest.raises(ResourceLimitError):
            ex.run(p, "f", [10, np.ones(10), np.zeros(10)], sizes={"n": 10})


class TestFallback:
    def _loop_carried_program(self):
        def body(f):
            s = f.step("carry")
            s.foreach(i=(2, "n"))
            s.formula(ref("y", I("i")),
                      ref("y", I("i") - 1) + ref("x", I("i")))
        return _build(body)

    def test_fallback_matches_interpreter_and_is_recorded(self):
        from repro import observe

        p = self._loop_carried_program()
        x = np.arange(1.0, 6.0)
        y_ref = np.zeros(5)
        Interpreter(p, ExecutionContext(p, sizes={"n": 5}))  # smoke ctor
        get_executor("interpreter").run(p, "f", [5, x, y_ref],
                                        sizes={"n": 5})
        y_vec = np.zeros(5)
        with observe.observed() as obs:
            run = get_executor("vectorized").run(p, "f", [5, x, y_vec],
                                                 sizes={"n": 5})
        assert np.array_equal(y_vec, y_ref)
        assert len(run.fallbacks) == 1
        assert run.fallbacks[0].step_name == "carry"
        assert "loop-carried" in run.fallbacks[0].reason
        decisions = obs.decisions.for_stage("executor:fallback")
        assert len(decisions) == 1
        assert decisions[0].verdict == "interpreter"
        assert obs.metrics.counter("exec.vectorized.fallbacks").value == 1

    def test_demotion_is_sticky(self):
        p = self._loop_carried_program()
        ctx = ExecutionContext(p, sizes={"n": 4})
        interp = VectorizedInterpreter(p, ctx)
        interp.call("f", [4, np.ones(4), np.zeros(4)])
        interp.call("f", [4, np.ones(4), np.zeros(4)])
        # Demoted once, then served from the sticky set: one event per
        # demotion *event*, not per execution.
        assert len(interp.fallbacks) == 1

    def test_faults_active_disables_lifting(self):
        from repro import observe
        from repro.robust import FaultPlan, fault_injection

        def body(f):
            s = f.step("pw")
            s.foreach(i=(1, "n"))
            s.formula(ref("y", I("i")), ref("x", I("i")) * 2.0)

        p = _build(body)
        y = np.zeros(3)
        with observe.observed() as obs:
            with fault_injection(FaultPlan([], seed=0)):
                get_executor("vectorized").run(p, "f", [3, np.ones(3), y],
                                               sizes={"n": 3})
        assert np.array_equal(y, [2.0, 2.0, 2.0])
        # No step went through the array path while injection was armed.
        assert obs.metrics.counter("exec.vectorized.steps").value == 0


class TestGuardedExecutor:
    def _program(self):
        # The guard compares the *global* state of the two contexts, so
        # the kernel must write a module-scope grid, not just a param.
        b = GlafBuilder("g")
        b.global_grid("out", T_REAL8, dims=("n",), module_scope=True)
        m = b.module("M")
        f = m.function("f", return_type=T_VOID)
        f.param("n", T_INT, intent="in")
        f.param("x", T_REAL8, dims=("n",), intent="in")
        s = f.step("pw")
        s.foreach(i=(1, "n"))
        s.formula(ref("out", I("i")), ref("x", I("i")) * 2.0)
        return b.build()

    def test_agreement_keeps_interpreter_result(self):
        p = self._program()
        run = get_executor("guarded").run(p, "f", [4, np.ones(4)],
                                          sizes={"n": 4})
        assert run.guard is not None
        assert not run.guard.fell_back
        assert np.array_equal(run.context.get("out"),
                              [2.0, 2.0, 2.0, 2.0])

    def test_forced_divergence_falls_back_and_logs(self):
        from repro import observe

        p = self._program()
        ctx = ExecutionContext(p, sizes={"n": 4})
        with observe.observed() as obs:
            res = guarded_vectorized_run(
                p, "f", [4, np.ones(4)], context=ctx,
                tolerance=-1.0)     # nothing can agree at tolerance < 0
        assert res.fell_back
        assert res.context is ctx                       # interpreter's
        assert np.array_equal(ctx.get("out"), [2.0, 2.0, 2.0, 2.0])
        guard = obs.decisions.for_stage("guard")
        assert any(d.step_name == "vectorized-executor" and
                   d.verdict == "serial-fallback" for d in guard)
