"""Unit tests for the parallelization verdict engine and loop classifier."""

import pytest

from repro.analysis.classify import LoopClass, classify_step
from repro.analysis.parallelize import (
    analyze_program,
    analyze_step,
    callee_write_effects,
)
from repro.core import GlafBuilder, I, T_INT, T_REAL8, T_VOID, lib, ref
from repro.core.builder import StepBuilder as SB


def _build(body):
    """body(f) adds steps to a fresh one-function program; returns (p, fn)."""
    b = GlafBuilder("t")
    m = b.module("M")
    f = m.function("k", return_type=T_VOID)
    f.param("n", T_INT, intent="in")
    f.param("a", T_REAL8, dims=("n",), intent="inout")
    f.param("bb", T_REAL8, dims=("n",), intent="in")
    body(b, m, f)
    p = b.build()
    return p, p.find_function("k")


class TestVerdicts:
    def test_independent_loop_parallel(self):
        def body(b, m, f):
            s = f.step()
            s.foreach(i=(1, "n"))
            s.formula(ref("a", I("i")), ref("bb", I("i")) * 2.0)

        p, fn = _build(body)
        sp = analyze_step(p, fn, 0)
        assert sp.parallel

    def test_loop_carried_serial(self):
        def body(b, m, f):
            s = f.step()
            s.foreach(i=(2, "n"))
            s.formula(ref("a", I("i")), ref("a", I("i") - 1) * 0.5)

        p, fn = _build(body)
        sp = analyze_step(p, fn, 0)
        assert not sp.parallel
        assert any("dependence" in r for r in sp.reasons)

    def test_scalar_reduction_parallel(self):
        def body(b, m, f):
            f.local("s", T_REAL8)
            st = f.step()
            st.foreach(i=(1, "n"))
            st.formula(ref("s"), ref("s") + ref("a", I("i")))

        p, fn = _build(body)
        sp = analyze_step(p, fn, 0)
        assert sp.parallel and sp.reductions == {"s": "+"}

    def test_injective_update_not_a_reduction(self):
        def body(b, m, f):
            st = f.step()
            st.foreach(i=(1, "n"))
            st.formula(ref("a", I("i")), ref("a", I("i")) * 2.0)

        p, fn = _build(body)
        sp = analyze_step(p, fn, 0)
        assert sp.parallel and not sp.reductions

    def test_indirect_self_update_needs_atomic(self):
        def body(b, m, f):
            f.param("idx", T_INT, dims=("n",), intent="in")
            st = f.step()
            st.foreach(i=(1, "n"))
            st.formula(ref("a", ref("idx", I("i"))),
                       ref("a", ref("idx", I("i"))) + 1.0)

        p, fn = _build(body)
        sp = analyze_step(p, fn, 0)
        assert sp.parallel and sp.atomic == ["a"]

    def test_indirect_plain_write_serial(self):
        def body(b, m, f):
            f.param("idx", T_INT, dims=("n",), intent="in")
            st = f.step()
            st.foreach(i=(1, "n"))
            st.formula(ref("a", ref("idx", I("i"))), ref("bb", I("i")))

        p, fn = _build(body)
        sp = analyze_step(p, fn, 0)
        assert not sp.parallel

    def test_early_exit_serial_unless_critical(self):
        def body(b, m, f):
            st = f.step()
            st.foreach(i=(1, "n"))
            st.if_(ref("a", I("i")).gt(0.0), [SB.exit_stmt()])

        p, fn = _build(body)
        assert not analyze_step(p, fn, 0).parallel
        sp = analyze_step(p, fn, 0, allow_critical_early_exit=True)
        assert sp.parallel and sp.critical_early_exit

    def test_collapse_on_rectangular_nest(self):
        def body(b, m, f):
            f.param("c", T_REAL8, dims=("n", "n"), intent="inout")
            st = f.step()
            st.foreach(i=(1, "n"), j=(1, "n"))
            st.formula(ref("c", I("i"), I("j")), 1.0)

        p, fn = _build(body)
        assert analyze_step(p, fn, 0).collapse == 2

    def test_no_collapse_on_triangular_nest(self):
        def body(b, m, f):
            f.param("c", T_REAL8, dims=("n", "n"), intent="inout")
            st = f.step()
            st.foreach(i=(1, "n"), j=(1, I("i")))
            st.formula(ref("c", I("i"), I("j")), 1.0)

        p, fn = _build(body)
        assert analyze_step(p, fn, 0).collapse == 1

    def test_private_inner_index_in_clause(self):
        def body(b, m, f):
            f.param("c", T_REAL8, dims=("n", "n"), intent="inout")
            st = f.step()
            st.foreach(i=(1, "n"), j=(1, "n"))
            st.formula(ref("c", I("i"), I("j")), 0.0)

        p, fn = _build(body)
        sp = analyze_step(p, fn, 0)
        assert "j" in sp.private

    def test_callee_effects_tracked(self):
        b = GlafBuilder("t")
        b.global_grid("g", T_REAL8, dims=(4,), module_scope=True)
        m = b.module("M")
        inner = m.function("inner", return_type=T_VOID)
        inner.param("x", T_INT, intent="in")
        s = inner.step()
        s.foreach(k=(1, 4))
        s.formula(ref("g", I("k")), 1.0)
        outer = m.function("outer", return_type=T_VOID)
        outer.param("n", T_INT, intent="in")
        s = outer.step()
        s.foreach(c=(1, "n"))
        s.call("inner", [I("c")])
        p = b.build()
        assert callee_write_effects(p, "outer") == {"g"}
        sp = analyze_step(p, p.find_function("outer"), 0)
        assert sp.parallel and sp.callee_shared_writes == ["g"]

    def test_straight_line_not_candidate(self):
        def body(b, m, f):
            f.local("x", T_REAL8)
            f.step().formula(ref("x"), 1.0)

        p, fn = _build(body)
        sp = analyze_step(p, fn, 0)
        assert not sp.parallel and "no loop nest" in sp.reasons

    def test_analyze_program_covers_all_steps(self):
        def body(b, m, f):
            st = f.step()
            st.foreach(i=(1, "n"))
            st.formula(ref("a", I("i")), 0.0)
            st = f.step()
            st.foreach(i=(1, "n"))
            st.formula(ref("a", I("i")), ref("a", I("i")) + 1.0)

        p, fn = _build(body)
        plan = analyze_program(p)
        assert len(plan.for_function("k")) == 2
        assert len(plan.parallel_steps()) == 2


class TestClassifier:
    def _st(self, body):
        p, fn = _build(body)
        return fn.steps[0]

    def test_zero_init(self):
        def body(b, m, f):
            s = f.step()
            s.foreach(i=(1, "n"))
            s.formula(ref("a", I("i")), 0.0)

        assert classify_step(self._st(body)) is LoopClass.ZERO_INIT

    def test_negative_zero_still_zero_init(self):
        def body(b, m, f):
            s = f.step()
            s.foreach(i=(1, "n"))
            s.formula(ref("a", I("i")), -0.0)

        assert classify_step(self._st(body)) is LoopClass.ZERO_INIT

    def test_broadcast_scalar(self):
        def body(b, m, f):
            f.local("x", T_REAL8)
            s = f.step()
            s.foreach(i=(1, "n"))
            s.formula(ref("a", I("i")), ref("x"))

        assert classify_step(self._st(body)) is LoopClass.BROADCAST_INIT

    def test_broadcast_single_element_load(self):
        def body(b, m, f):
            s = f.step()
            s.foreach(i=(1, "n"))
            s.formula(ref("a", I("i")), ref("bb", 1))

        assert classify_step(self._st(body)) is LoopClass.BROADCAST_INIT

    def test_simple_single(self):
        def body(b, m, f):
            s = f.step()
            s.foreach(i=(1, "n"))
            s.formula(ref("a", I("i")), ref("bb", I("i")) * 2.0 + 1.0)

        assert classify_step(self._st(body)) is LoopClass.SIMPLE_SINGLE

    def test_simple_double(self):
        def body(b, m, f):
            f.param("c", T_REAL8, dims=("n", "n"), intent="inout")
            s = f.step()
            s.foreach(i=(1, "n"), j=(1, "n"))
            s.formula(ref("c", I("i"), I("j")), ref("bb", I("i")) * 2.0)

        assert classify_step(self._st(body)) is LoopClass.SIMPLE_DOUBLE

    def test_control_flow_complex(self):
        def body(b, m, f):
            s = f.step()
            s.foreach(i=(1, "n"))
            s.if_(ref("bb", I("i")).gt(0.0),
                  [SB.assign(ref("a", I("i")), 1.0)])

        assert classify_step(self._st(body)) is LoopClass.COMPLEX

    def test_too_many_statements_complex(self):
        def body(b, m, f):
            s = f.step()
            s.foreach(i=(1, "n"))
            for k in range(5):  # > SIMPLE_BODY_MAX_STMTS
                s.formula(ref("a", I("i")), ref("a", I("i")) + float(k))

        assert classify_step(self._st(body)) is LoopClass.COMPLEX

    def test_calls_complex(self):
        def body(b, m, f):
            g = m.function("g", return_type=T_VOID)
            g.param("x", T_INT, intent="in")
            g.step()
            s = f.step()
            s.foreach(i=(1, "n"))
            s.call("g", [I("i")])

        assert classify_step(self._st(body)) is LoopClass.COMPLEX

    def test_not_a_loop(self):
        def body(b, m, f):
            f.local("x", T_REAL8)
            f.step().formula(ref("x"), 0.0)

        assert classify_step(self._st(body)) is LoopClass.NOT_A_LOOP
