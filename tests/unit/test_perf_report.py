"""Unit tests for the perf breakdown report."""

import pytest

from repro.optimize import make_plan
from repro.perf import (
    SimOptions,
    breakdown_table,
    i5_2400,
    overhead_summary,
    simulate,
)
from repro.sarb import build_sarb_program, sarb_workload


@pytest.fixture(scope="module")
def v0_result():
    program = build_sarb_program()
    wl = sarb_workload()
    plan = make_plan(program, "GLAF-parallel v0", threads=4)
    return simulate(plan, i5_2400, wl, SimOptions(threads=4))


class TestBreakdown:
    def test_table_shape(self, v0_result):
        text = breakdown_table(v0_result, top=5)
        lines = text.splitlines()
        assert lines[0].startswith("== sarb [GLAF-parallel v0]")
        assert len(lines) == 3 + 5

    def test_rows_sorted_by_cost(self, v0_result):
        text = breakdown_table(v0_result, top=8)
        import re

        cycles = [float(m) for m in re.findall(r"(\d\.\d{3}e\+\d+)\s+\d", text)]
        assert cycles == sorted(cycles, reverse=True)

    def test_treatments_visible(self, v0_result):
        text = breakdown_table(v0_result, top=25)
        assert "omp(4T)" in text
        assert "straight-line" in text

    def test_overhead_summary_matches_paper_story(self, v0_result):
        """OMP-everywhere (v0): region overheads dominate — the paper's
        explanation for the 0.48x bar."""
        text = overhead_summary(v0_result)
        assert "OpenMP regions" in text
        region = sum(s.overhead_cycles for s in v0_result.steps)
        assert region / v0_result.total_cycles > 0.5

    def test_serial_variant_has_no_region_overhead(self):
        program = build_sarb_program()
        wl = sarb_workload()
        r = simulate(make_plan(program, "GLAF serial"), i5_2400, wl,
                     SimOptions(threads=1))
        assert sum(s.overhead_cycles for s in r.steps) == 0
        assert "( 0.00%)" in overhead_summary(r)
