"""Telemetry exporters over run records (repro.observe.export).

The Prometheus page must parse under the exposition grammar, the Chrome
export must carry spans + counter tracks + decision instants, and the
HTML dashboard must render a multi-run trajectory self-contained — no
external scripts, stylesheets, or fonts (docs/RUN_LEDGER.md).
"""

from __future__ import annotations

import json
import re

import pytest

from repro import observe


def _run_record(i: int = 0, command: str = "experiments"):
    with observe.observed() as obs:
        with obs.tracer.span("analysis.plan"):
            with obs.tracer.span("codegen.fortran"):
                pass
            obs.metrics.counter("exec.interp.calls").inc(10 + i)
            obs.metrics.gauge("sample.rss_mb").set(40.0 + i)
            h = obs.metrics.histogram("exec.step_ms")
            for v in (1.0, 2.0, 3.0):
                h.observe(v + i)
        obs.decisions.record("guard", "adjust2", 1, "sweep", "fallback",
                             reasons=["diverged"])
    return observe.build_record(
        command=command, argv=["x"], wall_s=0.1 * (i + 1),
        observation=obs, started=1700000000.0 + i,
        samples=[{"t": 0.0, "rss_mb": 40.0, "cpu_s": 0.1, "gc_gen0": 2},
                 {"t": 0.05, "rss_mb": 41.0, "cpu_s": 0.2, "gc_gen0": 4}],
        environment={"python": "3.11", "numpy": "2.0", "git_sha": "abc123",
                     "platform": "linux", "executor": "interpreter"})


class TestPrometheus:
    def test_exposition_parses_under_the_grammar(self):
        rec = _run_record()
        page = observe.to_prometheus(rec["metrics"],
                                     labels={"run": "run-000001"})
        families = observe.parse_prometheus(page)
        assert families["repro_exec_interp_calls_total"] == [
            ({"run": "run-000001"}, 10.0)]
        assert families["repro_exec_step_ms_count"][0][1] == 3.0
        assert families["repro_exec_step_ms_sum"][0][1] == pytest.approx(6.0)
        assert families["repro_exec_step_ms_min"][0][1] == 1.0
        assert families["repro_exec_step_ms_max"][0][1] == 3.0
        assert families["repro_sample_rss_mb"][0][1] == 40.0

    def test_every_family_has_help_and_type(self):
        page = observe.to_prometheus(_run_record()["metrics"])
        names = [line.split()[2] for line in page.splitlines()
                 if line.startswith("# TYPE")]
        assert "repro_exec_interp_calls_total" in names
        for line in page.splitlines():
            if line.startswith("#"):
                assert line.split()[1] in ("HELP", "TYPE")

    def test_dotted_names_are_sanitized(self):
        page = observe.to_prometheus(
            {"counters": {"a.b-c/d": 1}, "gauges": {}, "histograms": {}})
        assert "repro_a_b_c_d_total 1" in page
        observe.parse_prometheus(page)

    def test_label_values_are_escaped(self):
        page = observe.to_prometheus(
            {"counters": {"c": 1}, "gauges": {}, "histograms": {}},
            labels={"cmd": 'say "hi"\nthere'})
        parsed = observe.parse_prometheus(page)
        assert parsed["repro_c_total"][0][0]["cmd"]     # parses cleanly

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError):
            observe.parse_prometheus("not a metric line at all!")
        with pytest.raises(ValueError):
            observe.parse_prometheus("# TYPE repro_x sideways\nrepro_x 1")
        with pytest.raises(ValueError):
            observe.parse_prometheus("repro_x one_point_five")


class TestRecordToChrome:
    def test_spans_counters_and_instants(self):
        doc = observe.record_to_chrome(_run_record())
        events = doc["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in spans} == {"analysis.plan",
                                             "codegen.fortran"}
        counters = [e for e in events if e["ph"] == "C"]
        assert any(e["name"] == "exec.interp.calls" for e in counters)
        assert any(e["name"] == "sample.rss_mb" and e["cat"] == "sample"
                   for e in counters)
        instants = [e for e in events if e["ph"] == "i"]
        assert instants[0]["name"] == "guard:fallback"
        json.dumps(doc)

    def test_nesting_survives_the_flame_roundtrip(self):
        doc = observe.record_to_chrome(_run_record())
        spans = {e["name"]: e for e in doc["traceEvents"]
                 if e["ph"] == "X"}
        parent, child = spans["analysis.plan"], spans["codegen.fortran"]
        assert parent["ts"] <= child["ts"]
        assert (child["ts"] + child["dur"]
                <= parent["ts"] + parent["dur"] + 1e-6)


class TestHtmlDashboard:
    def _records(self, n=3):
        recs = []
        for i in range(n):
            rec = dict(_run_record(i))
            rec["id"] = f"run-{i + 1:06d}"
            recs.append(rec)
        return recs

    def test_renders_multi_run_trajectory(self):
        html = observe.render_runs_html(self._records(3))
        assert "<svg" in html and "polyline" in html
        for rid in ("run-000001", "run-000002", "run-000003"):
            assert rid in html
        # Stage series from the flame summaries, with a legend.
        assert "analysis" in html
        assert 'class="legend"' in html

    def test_is_fully_self_contained(self):
        html = observe.render_runs_html(self._records(3))
        assert "<script" not in html
        assert "<link" not in html
        assert "http://" not in html and "https://" not in html
        assert "@media (prefers-color-scheme: dark)" in html

    def test_has_a_table_view_of_every_run(self):
        html = observe.render_runs_html(self._records(4))
        assert html.count("<tr><td>run-") >= 8   # events table + runs table

    def test_escapes_hostile_record_fields(self):
        rec = dict(_run_record())
        rec["id"] = "run-000001"
        rec["command"] = "<script>alert(1)</script>"
        html = observe.render_runs_html([rec])
        assert "<script>alert" not in html
        assert "&lt;script&gt;" in html

    def test_empty_ledger_still_renders(self):
        html = observe.render_runs_html([])
        assert "0 recorded run(s)" in html


class TestTextRenderers:
    def test_table_lists_every_entry(self):
        ledger_entries = [
            {"id": "run-000001", "command": "experiments", "status": "ok",
             "exit_code": 0, "wall_s": 0.5, "started": 1700000000.0,
             "git_sha": "abc123def456"},
        ]
        text = observe.render_runs_table(ledger_entries)
        assert "run-000001" in text and "experiments" in text
        assert "500.0ms" in text

    def test_show_names_stages_counters_events(self):
        rec = dict(_run_record())
        rec["id"] = "run-000007"
        text = observe.render_run(rec)
        assert "run-000007" in text
        assert "analysis" in text
        assert "exec.interp.calls" in text
        assert "guard" in text
        assert "resource samples: 2 tick(s)" in text

    def test_diff_reports_wall_stage_counter_env_changes(self):
        a, b = _run_record(0), _run_record(4)
        b["environment"] = dict(b["environment"], git_sha="fff999")
        text = observe.diff_runs(a, b)
        assert re.search(r"wall: .*->.*\(\+", text)
        assert "exec.interp.calls" in text
        assert "git_sha: abc123 -> fff999" in text

    def test_trend_tracks_delta_per_command(self):
        recs = []
        for i, cmd in enumerate(["experiments", "lint", "experiments"]):
            rec = dict(_run_record(i, command=cmd))
            rec["id"] = f"run-{i + 1:06d}"
            recs.append(rec)
        lines = observe.render_runs_trend(recs).splitlines()
        assert lines[-1].split()[-1].startswith(("+", "-"))  # vs prev exp
        assert any(line.split()[-1] == "-" for line in lines
                   if "lint" in line)                        # first lint
