"""Unit tests for the crash-isolated batch compiler (repro.batch).

Everything here runs the *serial* driver path (no worker processes), so
the suite stays fast and deterministic; the process-isolation envelope
itself — real crashes, hangs, OOM kills, SIGKILL-resume — is exercised
end to end by tests/integration/test_batch_chaos.py and
scripts/resume_smoke.py.
"""

import json
import pickle

import pytest

from repro import errors as E
from repro.batch import (
    ArtifactCache,
    BatchOptions,
    CorpusItem,
    ItemOutcome,
    WorkerConfig,
    build_manifest,
    ingest_corpus,
    load_manifest,
    quarantine_bundle_name,
    run_batch,
    run_item,
    write_manifest,
)
from repro.batch.driver import _simulate_poison
from repro.batch.worker import POISON_CRASH_EXIT, POISON_OOM_EXIT
from repro.errors import BatchError, WorkerCrashError
from repro.numeric.retry import RetryPolicy

FSRC = """\
subroutine addv(a, b, c, n)
  integer, intent(in) :: n
  real(kind=8), intent(in) :: a(n), b(n)
  real(kind=8), intent(inout) :: c(n)
  integer :: i
  do i = 1, n
    c(i) = a(i) + b(i)
  end do
end subroutine addv
"""


def fast_options(tmp_path, **kw):
    base = dict(jobs=1, retries=1, retry_base_delay=0.0,
                timeout=5.0, max_wall_seconds=20.0,
                cache_dir=str(tmp_path / "cache"),
                checkpoint_dir=str(tmp_path / "ckpt"),
                quarantine_dir=str(tmp_path / "quar"))
    base.update(kw)
    return BatchOptions(**base)


# ---------------------------------------------------------------------------
# corpus ingestion


class TestCorpus:
    def test_fuzz_spec_is_deterministic(self):
        a = ingest_corpus(["fuzz:3:4"])
        b = ingest_corpus(["fuzz:3:4"])
        assert [i.id for i in a] == [f"fuzz-3-{n:04d}" for n in range(4)]
        assert [(i.id, i.content_sha) for i in a] == \
               [(i.id, i.content_sha) for i in b]
        assert all(i.kind == "fuzz" for i in a)

    def test_poison_spec(self):
        items = ingest_corpus(["poison:crash:2", "poison:hang"])
        assert [(i.id, i.content) for i in items] == [
            ("poison-crash-0", "crash"), ("poison-crash-1", "crash"),
            ("poison-hang-0", "hang")]

    def test_files_and_dirs(self, tmp_path):
        (tmp_path / "a.f90").write_text(FSRC)
        sub = tmp_path / "sub"
        sub.mkdir()
        (sub / "b.f").write_text(FSRC)
        items = ingest_corpus([str(tmp_path)])
        assert [i.kind for i in items] == ["source", "source"]
        assert items[0].origin.endswith("a.f90")

    def test_duplicate_names_get_unique_ids(self, tmp_path):
        d1, d2 = tmp_path / "d1", tmp_path / "d2"
        for d in (d1, d2):
            d.mkdir()
            (d / "same.f90").write_text(FSRC)
        items = ingest_corpus([str(d1), str(d2)])
        assert len({i.id for i in items}) == 2

    @pytest.mark.parametrize("bad", [
        [], ["fuzz:oops:3"], ["fuzz:1:0"], ["poison:nope"],
        ["poison:crash:0"], ["/no/such/thing"],
    ])
    def test_bad_inputs_are_typed_errors(self, bad):
        with pytest.raises(BatchError):
            ingest_corpus(bad)

    def test_unsupported_suffix(self, tmp_path):
        p = tmp_path / "x.c"
        p.write_text("int main(){}")
        with pytest.raises(BatchError, match="unsupported corpus file"):
            ingest_corpus([str(p)])

    def test_empty_dir_is_error(self, tmp_path):
        with pytest.raises(BatchError, match="no corpus files"):
            ingest_corpus([str(tmp_path)])


# ---------------------------------------------------------------------------
# the worker compile path (in-process)


class TestRunItem:
    def test_source_item_artifacts(self):
        item = CorpusItem(id="s", kind="source", content=FSRC)
        arts = run_item(item, WorkerConfig())
        assert arts["schema"] == "repro.batch.artifact/v1"
        assert arts["target"] == "source" and arts["code"] == ""
        assert arts["sloc"] > 0 and arts["lint"]["ok"]
        assert any("addv" in unit.lower() for unit in arts["ranges"])

    def test_fuzz_item_generates_fortran(self):
        item = ingest_corpus(["fuzz:3:1"])[0]
        arts = run_item(item, WorkerConfig())
        assert arts["target"] == "fortran"
        assert "SUBROUTINE" in arts["code"] or "FUNCTION" in arts["code"]
        assert arts["lint"]["schema"] == "repro.lint/v1"

    def test_artifacts_are_item_id_free(self):
        # Two ids, same content: identical artifacts, so the cache can
        # legitimately share one entry between them.
        from repro.numeric.integrity import content_digest

        spec = ingest_corpus(["fuzz:3:1"])[0]
        a = CorpusItem(id="first", kind="fuzz", content=spec.content)
        b = CorpusItem(id="second", kind="fuzz", content=spec.content)
        assert content_digest(run_item(a, WorkerConfig())) == \
               content_digest(run_item(b, WorkerConfig()))

    def test_bad_project_json_is_typed(self):
        item = CorpusItem(id="p", kind="project", content="{nope")
        with pytest.raises(BatchError, match="invalid project JSON"):
            run_item(item, WorkerConfig())

    def test_bad_fuzz_payload_is_typed(self):
        item = CorpusItem(id="f", kind="fuzz", content='{"a": 1}')
        with pytest.raises(BatchError, match="invalid fuzz spec"):
            run_item(item, WorkerConfig())

    def test_parse_failure_carries_stage(self):
        item = CorpusItem(id="s", kind="source",
                          content="      GARBAGE ((((\n")
        with pytest.raises(E.GlafError) as ei:
            run_item(item, WorkerConfig())
        assert getattr(ei.value, "batch_stage", "") in ("parse", "lint")

    def test_unknown_target_is_typed(self):
        item = ingest_corpus(["fuzz:3:1"])[0]
        with pytest.raises(BatchError, match="unknown codegen target"):
            run_item(item, WorkerConfig(target="cuda"))


# ---------------------------------------------------------------------------
# content-addressed cache


class TestArtifactCache:
    def entry(self, tmp_path, **kw):
        cache = ArtifactCache(tmp_path / "cache", **kw)
        key = cache.key_for("c" * 64, "fuzz", {"variant": "v0"})
        cache.put(key, content_sha="c" * 64, kind="fuzz",
                  options={"variant": "v0"}, artifacts={"code": "X"})
        return cache, key

    def test_round_trip(self, tmp_path):
        cache, key = self.entry(tmp_path)
        assert cache.get(key) == {"code": "X"}
        assert cache.get("0" * 64) is None

    def test_key_covers_options_and_content(self):
        k = ArtifactCache.key_for
        base = k("a" * 64, "fuzz", {"variant": "v0"})
        assert k("b" * 64, "fuzz", {"variant": "v0"}) != base
        assert k("a" * 64, "source", {"variant": "v0"}) != base
        assert k("a" * 64, "fuzz", {"variant": "v3"}) != base
        assert k("a" * 64, "fuzz", {"variant": "v0"}) == base

    @pytest.mark.parametrize("tamper", [
        lambda p: p.write_text("{truncated"),
        lambda p: p.write_text(json.dumps({"schema": "wrong/v1"})),
        lambda p: p.write_text(json.dumps(json.loads(
            p.read_text()) | {"artifacts": {"code": "EVIL"}})),
    ])
    def test_corrupt_entry_discarded(self, tmp_path, tamper):
        cache, key = self.entry(tmp_path)
        tamper(cache.path_for(key))
        assert cache.get(key) is None              # reported as a miss
        assert cache.corrupt_discarded == 1
        assert not cache.path_for(key).exists()    # and unlinked
        # A recompile repopulates it cleanly.
        cache.put(key, content_sha="c" * 64, kind="fuzz",
                  options={"variant": "v0"}, artifacts={"code": "X"})
        assert cache.get(key) == {"code": "X"}

    def test_corrupt_entry_emits_decision(self, tmp_path):
        from repro import observe

        cache, key = self.entry(tmp_path)
        cache.path_for(key).write_text("{")
        with observe.observed() as obs:
            assert cache.get(key) is None
        events = obs.decisions.for_stage("cache:corrupt-entry")
        assert len(events) == 1 and events[0].verdict == "discarded"

    def test_eviction_keeps_newest(self, tmp_path):
        import os

        cache = ArtifactCache(tmp_path / "cache", max_entries=2)
        keys = []
        for i in range(4):
            key = cache.key_for(f"{i}" * 64, "fuzz", {})
            path = cache.put(key, content_sha=f"{i}" * 64, kind="fuzz",
                             options={}, artifacts={"i": i})
            os.utime(path, (i + 1, i + 1))   # deterministic age order
            keys.append(key)
        assert cache.evicted == 2
        assert len(cache.entry_paths()) == 2
        assert cache.get(keys[0]) is None and cache.get(keys[3]) == {"i": 3}


# ---------------------------------------------------------------------------
# manifest digest semantics


class TestManifest:
    def outcome(self, **kw):
        base = dict(id="a", kind="fuzz", status="ok", content_sha="c" * 64,
                    artifact_sha="d" * 64)
        base.update(kw)
        return ItemOutcome(**base)

    def test_digest_ignores_run_only_fields(self):
        a = build_manifest([self.outcome()], {"variant": "v0"},
                           run={"wall_s": 1.0})
        b = build_manifest(
            [self.outcome(attempts=3, cached=True, resumed=True)],
            {"variant": "v0"}, run={"wall_s": 99.0})
        assert a["content_sha256"] == b["content_sha256"]

    def test_digest_covers_outcome_core(self):
        a = build_manifest([self.outcome()], {})
        b = build_manifest([self.outcome(status="failed")], {})
        c = build_manifest([self.outcome()], {"variant": "v3"})
        assert len({a["content_sha256"], b["content_sha256"],
                    c["content_sha256"]}) == 3

    def test_item_order_does_not_matter(self):
        x, y = self.outcome(id="x"), self.outcome(id="y")
        assert build_manifest([x, y], {})["content_sha256"] == \
               build_manifest([y, x], {})["content_sha256"]

    def test_write_load_round_trip(self, tmp_path):
        doc = build_manifest([self.outcome()], {"variant": "v0"})
        path = tmp_path / "m.json"
        write_manifest(path, doc)
        assert load_manifest(path)["content_sha256"] == doc["content_sha256"]

    def test_load_rejects_tampered_manifest(self, tmp_path):
        doc = build_manifest([self.outcome()], {"variant": "v0"})
        path = tmp_path / "m.json"
        write_manifest(path, doc)
        raw = json.loads(path.read_text())
        raw["items"][0]["status"] = "failed"
        path.write_text(json.dumps(raw))
        with pytest.raises(BatchError, match="digest mismatch"):
            load_manifest(path)

    def test_outcome_round_trip(self):
        o = self.outcome(status="quarantined", deaths=[{"kind": "hang"}],
                         bundle="b.json", attempts=2, cached=True)
        assert ItemOutcome.from_json(o.to_json()) == o

    def test_bad_status_rejected(self):
        with pytest.raises(BatchError, match="bad item outcome status"):
            ItemOutcome.from_json(self.outcome().to_json() |
                                  {"status": "exploded"})


# ---------------------------------------------------------------------------
# the serial driver: quarantine, stickiness, resume, caching


class TestDriverSerial:
    def test_healthy_corpus_compiles(self, tmp_path):
        items = ingest_corpus(["fuzz:3:3"])
        res = run_batch(items, fast_options(tmp_path))
        assert [o.status for o in res.outcomes] == ["ok"] * 3
        assert res.ok and res.stats["mode"] == "serial"

    def test_poison_is_quarantined_and_sticky(self, tmp_path):
        options = fast_options(tmp_path)
        items = ingest_corpus(["fuzz:3:1", "poison:crash"])
        res = run_batch(items, options)
        poison = [o for o in res.outcomes if o.kind == "poison"][0]
        assert poison.status == "quarantined"
        assert poison.attempts == 2 and len(poison.deaths) == 2
        bundle = tmp_path / "quar" / poison.bundle
        assert bundle.exists()
        doc = json.loads(bundle.read_text())
        assert doc["schema"] == "repro.batch.poison/v1"
        assert doc["item"]["id"] == "poison-crash-0"

        # Second run: the bundle makes the quarantine sticky (no new
        # attempts) and the healthy item is served from the cache.
        res2 = run_batch(items, options)
        poison2 = [o for o in res2.outcomes if o.kind == "poison"][0]
        assert poison2.status == "quarantined" and poison2.attempts == 0
        assert res2.stats["sticky"] == 1
        assert res2.stats["cache"]["hits"] == 1
        # Digest-stable across the cold and warm runs.
        assert res.manifest["content_sha256"] == \
               res2.manifest["content_sha256"]

    def test_simulated_deaths_match_worker_exit_codes(self, tmp_path):
        options = fast_options(tmp_path)
        for kind, wanted in [("crash", f"exit code {POISON_CRASH_EXIT}"),
                             ("oom", f"exit code {POISON_OOM_EXIT}")]:
            item = CorpusItem(id=f"p-{kind}", kind="poison", content=kind)
            with pytest.raises(WorkerCrashError, match=wanted):
                _simulate_poison(item, options)
        item = CorpusItem(id="p-hang", kind="poison", content="hang")
        with pytest.raises(WorkerCrashError, match="SIGKILLed") as ei:
            _simulate_poison(item, options)
        assert ei.value.kind == "hang"

    def test_typed_failure_is_not_quarantined(self, tmp_path):
        items = [CorpusItem(id="bad", kind="project", content="{nope")]
        res = run_batch(items, fast_options(tmp_path))
        (o,) = res.outcomes
        assert o.status == "failed" and o.attempts == 1
        assert o.failures[0]["error"] == "BatchError"
        assert o.failures[0]["stage"] == "build"
        assert not list((tmp_path / "quar").glob("*")) \
            if (tmp_path / "quar").exists() else True

    def test_lint_findings_mark_item_failed(self, tmp_path):
        # A race the linter catches: a reduction-free accumulation into
        # a shared scalar inside a parallel region.
        src = ("subroutine race(a, n)\n"
               "  integer, intent(in) :: n\n"
               "  real(kind=8), intent(inout) :: a(n)\n"
               "  real(kind=8) :: s\n"
               "  integer :: i\n"
               "  !$OMP PARALLEL DO\n"
               "  do i = 1, n\n"
               "    s = s + a(i)\n"
               "  end do\n"
               "end subroutine race\n")
        items = [CorpusItem(id="race", kind="source", content=src)]
        res = run_batch(items, fast_options(tmp_path))
        (o,) = res.outcomes
        assert o.status == "failed"
        assert all(f["stage"] == "lint" for f in o.failures)
        assert o.artifact_sha       # artifacts still produced + digested

    def test_resume_short_circuits_completed_items(self, tmp_path):
        from repro.numeric.checkpoint import CheckpointStore

        options = fast_options(tmp_path, cache_dir=None)
        items = ingest_corpus(["fuzz:3:2"])
        res = run_batch(items, options)

        # Replant the checkpoints a SIGKILL would have left behind
        # (run_batch clears them on clean completion).
        store = CheckpointStore(tmp_path / "ckpt")
        for o in res.outcomes:
            store.save(f"item-{o.id}", {"outcome": o.to_json()})

        resumed = run_batch(items, fast_options(
            tmp_path, cache_dir=None, resume=True))
        assert all(o.resumed for o in resumed.outcomes)
        assert resumed.stats["resumed"] == 2
        assert resumed.manifest["content_sha256"] == \
               res.manifest["content_sha256"]
        # Clean completion spends the checkpoints.
        assert store.keys() == []

    def test_fresh_run_clears_stale_checkpoints(self, tmp_path):
        from repro.numeric.checkpoint import CheckpointStore

        store = CheckpointStore(tmp_path / "ckpt")
        stale = ItemOutcome(id="fuzz-3-0000", kind="fuzz", status="failed",
                            content_sha="0" * 64)
        store.save("item-fuzz-3-0000", {"outcome": stale.to_json()})
        res = run_batch(ingest_corpus(["fuzz:3:1"]),
                        fast_options(tmp_path, cache_dir=None))
        assert res.outcomes[0].status == "ok"      # stale verdict ignored
        assert not res.outcomes[0].resumed

    def test_corrupt_checkpoint_is_recompiled(self, tmp_path):
        options = fast_options(tmp_path, cache_dir=None, resume=True)
        ckpt = tmp_path / "ckpt"
        ckpt.mkdir()
        (ckpt / "item-fuzz-3-0000.ckpt.json").write_text("{torn")
        res = run_batch(ingest_corpus(["fuzz:3:1"]), options)
        assert res.outcomes[0].status == "ok"
        assert not res.outcomes[0].resumed

    def test_duplicate_ids_rejected(self, tmp_path):
        item = CorpusItem(id="dup", kind="poison", content="crash")
        with pytest.raises(BatchError, match="duplicate item id"):
            run_batch([item, item], fast_options(tmp_path))

    def test_empty_corpus_rejected(self, tmp_path):
        with pytest.raises(BatchError, match="empty corpus"):
            run_batch([], fast_options(tmp_path))

    @pytest.mark.parametrize("kw", [
        {"jobs": 0}, {"timeout": 0.0}, {"retries": -1},
        {"cache_max_entries": -1},
    ])
    def test_bad_options_rejected(self, kw):
        with pytest.raises(BatchError):
            BatchOptions(**kw)

    def test_decisions_and_metrics_recorded(self, tmp_path):
        from repro import observe

        items = ingest_corpus(["fuzz:3:1", "poison:crash"])
        with observe.observed() as obs:
            run_batch(items, fast_options(tmp_path))
        stages = {d.stage for d in obs.decisions.events}
        assert {"batch:item", "batch:quarantine",
                "batch:campaign"} <= stages
        names = {c.name for c in obs.metrics.counters()}
        assert {"batch.items", "batch.quarantined",
                "batch.cache.misses", "batch.deaths"} <= names

    def test_quarantine_bundle_name_ignores_jobs(self, tmp_path):
        item = CorpusItem(id="p", kind="poison", content="crash")
        a = quarantine_bundle_name(item, fast_options(tmp_path, jobs=1))
        b = quarantine_bundle_name(item, fast_options(tmp_path, jobs=8))
        c = quarantine_bundle_name(item, fast_options(tmp_path, jobs=1,
                                                      retries=3))
        assert a == b           # stickiness survives a jobs change
        assert a != c           # but not a different retry envelope


# ---------------------------------------------------------------------------
# retry semantics (satellite: determinism + never-retry classes)


class TestBatchRetrySemantics:
    def test_backoff_schedule_deterministic_for_fixed_seed(self):
        p1 = RetryPolicy(retries=4, base_delay=0.05, seed=1234)
        p2 = RetryPolicy(retries=4, base_delay=0.05, seed=1234)
        assert p1.delays() == p2.delays()
        assert p1.delays() != RetryPolicy(retries=4, base_delay=0.05,
                                          seed=1235).delays()

    def test_driver_seed_varies_per_item_but_reproduces(self, tmp_path):
        # The driver derives one policy seed per (campaign seed, item
        # index); same campaign seed → same schedules, different items →
        # different jitter streams.
        def schedule(seed, index):
            return RetryPolicy(retries=2, base_delay=0.05,
                               seed=(seed * 1_000_003 + index)
                               % 2**32).delays()

        assert schedule(7, 0) == schedule(7, 0)
        assert schedule(7, 0) != schedule(7, 1)
        assert schedule(7, 0) != schedule(8, 0)

    def test_resource_limit_error_never_respawns(self, tmp_path):
        # A typed budget trip from inside the worker must propagate as a
        # *failed* outcome on the first attempt — never retried into
        # quarantine, never given a second worker.
        src = ("subroutine spin(a, n)\n"
               "  integer, intent(in) :: n\n"
               "  real(kind=8), intent(inout) :: a(n)\n"
               "  integer :: i, j\n"
               "  do j = 1, 100000\n"
               "    do i = 1, n\n"
               "      a(i) = a(i) + 1.0\n"
               "    end do\n"
               "  end do\n"
               "end subroutine spin\n")
        items = [CorpusItem(id="spin", kind="source", content=src)]
        res = run_batch(items, fast_options(
            tmp_path, retries=3, max_wall_seconds=0.0000001))
        (o,) = res.outcomes
        assert o.status == "failed"
        assert o.attempts == 1 and o.deaths == []
        assert o.failures[0]["error"] == "ResourceLimitError"

    def test_numeric_integrity_error_never_retried(self, tmp_path):
        import repro.batch.driver as drv

        calls = []

        def boom(item, config):
            calls.append(item.id)
            raise E.NumericIntegrityError("nan detected", kind="nan")

        real = drv.run_item
        drv.run_item = boom
        try:
            items = [CorpusItem(id="n", kind="fuzz", content="{}")]
            res = run_batch(items, fast_options(
                tmp_path, retries=5, cache_dir=None))
        finally:
            drv.run_item = real
        assert calls == ["n"]                      # exactly one attempt
        assert res.outcomes[0].status == "failed"
        assert res.outcomes[0].failures[0]["error"] == \
            "NumericIntegrityError"


# ---------------------------------------------------------------------------
# typed-error pickle fidelity (satellite: process-boundary transport)


def _bundle():
    diags = [E.FortranSyntaxError("unexpected token", line=3, col=7),
             E.FortranSyntaxError("missing END", line=9)]
    b = E.DiagnosticBundle(diags, partial=None)
    b.batch_stage = "parse"
    return b


def _syntax():
    e = E.FortranSyntaxError("bad literal", line=12, col=4)
    e.batch_stage = "parse"
    return e


_ERROR_CASES = [
    E.GlafError("plain"),
    E.ValidationError("scope"),
    E.BuilderError("builder"),
    E.AnalysisError("analysis"),
    E.CodegenError("codegen"),
    _syntax(),
    _bundle(),
    E.FortranRuntimeError("bounds"),
    E.IntegrationError("integration"),
    E.InterfaceMismatchError("iface"),
    E.ExecutionError("exec"),
    E.ResourceLimitError("budget"),
    E.NumericIntegrityError("nan", kind="nan", function="F",
                            step_index=2, grid="g", cell=(1, 2)),
    E.PerfModelError("perf"),
    E.WorkloadError("workload"),
    E.BenchArtifactError("bench"),
    E.RunLedgerError("ledger"),
    E.BatchError("batch"),
    E.WorkerCrashError("died", item="x", kind="hang", exit_code=-9),
]


class TestErrorPickleFidelity:
    @staticmethod
    def _comparable(value):
        # Exceptions compare by identity, so nested diagnostics need a
        # structural projection before dict equality.
        if isinstance(value, BaseException):
            return (type(value).__name__, str(value),
                    TestErrorPickleFidelity._comparable(value.__dict__))
        if isinstance(value, dict):
            return {k: TestErrorPickleFidelity._comparable(v)
                    for k, v in value.items()}
        if isinstance(value, (list, tuple)):
            return [TestErrorPickleFidelity._comparable(v) for v in value]
        return value

    @pytest.mark.parametrize(
        "exc", _ERROR_CASES, ids=[type(e).__name__ for e in _ERROR_CASES])
    def test_round_trip_preserves_message_and_state(self, exc):
        clone = pickle.loads(pickle.dumps(exc))
        assert type(clone) is type(exc)
        assert str(clone) == str(exc)
        assert self._comparable(clone.__dict__) == \
            self._comparable(exc.__dict__)

    def test_bundle_diagnostics_survive(self):
        # The historical failure mode: default BaseException pickling
        # replayed __init__ with the summary *string*, exploding it into
        # one single-character diagnostic per letter.
        clone = pickle.loads(pickle.dumps(_bundle()))
        assert len(clone.diagnostics) == 2
        assert all(isinstance(d, E.FortranSyntaxError)
                   for d in clone.diagnostics)
        assert clone.diagnostics[0].line == 3
        assert clone.batch_stage == "parse"

    def test_syntax_error_location_not_doubled(self):
        clone = pickle.loads(pickle.dumps(_syntax()))
        assert str(clone).count("line 12") == 1
        assert clone.message == "bad literal"
