"""Unit tests for the legacy-integration package (the paper's contribution)."""

import numpy as np
import pytest

from repro.codegen.fortran import FortranGenerator
from repro.core import GlafBuilder, I, T_INT, T_REAL, T_REAL8, T_VOID, lib, ref
from repro.errors import IntegrationError
from repro.fortranlib import FortranRuntime
from repro.integration import (
    LegacyCodebase,
    build_report,
    check_interface,
    check_program,
    extract_unit,
    generate_wrapper,
    parse_wrapper_output,
    splice_into_codebase,
    splice_units,
)
from repro.optimize import make_plan

LEGACY = """
MODULE phys_mod
  IMPLICIT NONE
  TYPE rad_input
    REAL(KIND=8) :: tsfc
  END TYPE rad_input
  TYPE(rad_input) :: fin
  REAL(KIND=8) :: fluxes(8)
END MODULE phys_mod

SUBROUTINE kern(n, a)
  USE phys_mod, ONLY: fin, fluxes
  IMPLICIT NONE
  INTEGER, INTENT(IN) :: n
  REAL(KIND=8), INTENT(INOUT) :: a(8)
  REAL(KIND=8) :: w(4)
  COMMON /wts/ w
  INTEGER :: i
  DO i = 1, n
    a(i) = fluxes(i) * w(1) + fin%tsfc
  END DO
END SUBROUTINE kern

PROGRAM main
  IMPLICIT NONE
  REAL(KIND=8) :: a(8)
  CALL kern(8, a)
  PRINT *, 'a1', a(1)
END PROGRAM main
"""


def _legacy():
    lc = LegacyCodebase("demo")
    lc.add_file("legacy.f90", LEGACY)
    return lc


def _matching_program():
    b = GlafBuilder("demo")
    b.derived_type("rad_input", {"tsfc": (T_REAL8, 0)}, defined_in_module="phys_mod")
    b.global_grid("tsfc", T_REAL8, exists_in_module="phys_mod",
                  type_parent="fin", type_name="rad_input")
    b.global_grid("fluxes", T_REAL8, dims=(8,), exists_in_module="phys_mod")
    b.global_grid("w", T_REAL8, dims=(4,), common_block="wts")
    m = b.module("M")
    f = m.function("kern", return_type=T_VOID)
    f.param("n", T_INT, intent="in")
    f.param("a", T_REAL8, dims=(8,), intent="inout")
    s = f.step()
    s.foreach(i=(1, "n"))
    s.formula(ref("a", I("i")), ref("fluxes", I("i")) * ref("w", 1) + ref("tsfc"))
    return b.build()


class TestLegacyCodebase:
    def test_indexes(self):
        lc = _legacy()
        assert lc.has_module("phys_mod")
        assert lc.module_has("phys_mod", "fluxes")
        assert lc.module_has("phys_mod", "fin")
        assert "wts" in lc.commons
        sig = lc.signature("kern")
        assert sig.kind == "subroutine"
        assert [p.name for p in sig.params] == ["n", "a"]
        assert sig.params[1].rank == 1

    def test_type_fields_indexed(self):
        lc = _legacy()
        assert "tsfc" in lc.type_fields["rad_input"]

    def test_duplicate_file_rejected(self):
        lc = _legacy()
        with pytest.raises(IntegrationError):
            lc.add_file("legacy.f90", "")

    def test_missing_signature(self):
        with pytest.raises(IntegrationError):
            _legacy().signature("ghost")


class TestInterfaceChecks:
    def test_matching_interface_passes(self):
        report = check_interface(_matching_program(), "kern", _legacy())
        assert report.ok, [i.message for i in report.errors()]

    def test_kind_mismatch_detected(self):
        p = _matching_program()
        fn = p.find_function("kern")
        fn.grids["a"] = fn.grids["a"].with_(ty=T_REAL)  # REAL*4 vs legacy REAL*8
        report = check_interface(p, "kern", _legacy())
        assert not report.ok
        assert any("type mismatch" in i.message for i in report.errors())

    def test_rank_mismatch_detected(self):
        b = GlafBuilder("demo")
        m = b.module("M")
        f = m.function("kern", return_type=T_VOID)
        f.param("n", T_INT, intent="in")
        f.param("a", T_REAL8, dims=(8, 8), intent="inout")
        f.step()
        report = check_interface(b.build(), "kern", _legacy())
        assert any("rank" in i.message for i in report.errors())

    def test_arity_mismatch_detected(self):
        b = GlafBuilder("demo")
        m = b.module("M")
        f = m.function("kern", return_type=T_VOID)
        f.param("n", T_INT, intent="in")
        f.step()
        report = check_interface(b.build(), "kern", _legacy())
        assert any("count" in i.message for i in report.errors())

    def test_kind_mismatch_subroutine_vs_function(self):
        b = GlafBuilder("demo")
        m = b.module("M")
        f = m.function("kern", return_type=T_INT)
        f.param("n", T_INT, intent="in")
        f.param("a", T_REAL8, dims=(8,), intent="inout")
        f.returns(0)
        report = check_interface(b.build(), "kern", _legacy())
        assert any("3.4" in i.message for i in report.errors())

    def test_unknown_module_detected(self):
        p = _matching_program()
        p.global_grids["fluxes"] = p.global_grids["fluxes"].with_(
            exists_in_module="ghost_mod")
        report = check_interface(p, "kern", _legacy())
        assert any("no such module" in i.message for i in report.errors())

    def test_missing_export_detected(self):
        b = GlafBuilder("demo")
        b.global_grid("zz", T_REAL8, dims=(8,), exists_in_module="phys_mod")
        m = b.module("M")
        f = m.function("kern", return_type=T_VOID)
        f.param("n", T_INT, intent="in")
        f.param("a", T_REAL8, dims=(8,), intent="inout")
        s = f.step()
        s.foreach(i=(1, "n"))
        s.formula(ref("a", I("i")), ref("zz", I("i")))
        report = check_interface(b.build(), "kern", _legacy())
        assert any("does not export" in i.message for i in report.errors())

    def test_new_common_block_is_warning_only(self):
        b = GlafBuilder("demo")
        b.global_grid("q", T_REAL8, dims=(4,), common_block="newblk")
        m = b.module("M")
        f = m.function("kern", return_type=T_VOID)
        f.param("n", T_INT, intent="in")
        f.param("a", T_REAL8, dims=(8,), intent="inout")
        s = f.step()
        s.foreach(i=(1, "n"))
        s.formula(ref("a", I("i")), ref("q", 1))
        report = check_interface(b.build(), "kern", _legacy())
        assert report.ok
        assert any(i.severity == "warning" for i in report.issues)

    def test_check_program_covers_matching_units(self):
        reports = check_program(_matching_program(), _legacy())
        assert set(reports) == {"kern"}


class TestSplicing:
    def test_extract_unit(self):
        p = _matching_program()
        src = FortranGenerator(make_plan(p, "GLAF serial")).generate_module()
        unit = extract_unit(src, "kern")
        assert unit.lstrip().startswith("SUBROUTINE kern")
        assert unit.rstrip().endswith("END SUBROUTINE kern")

    def test_extract_missing_unit(self):
        with pytest.raises(IntegrationError):
            extract_unit("MODULE m\nEND MODULE m", "kern")

    def test_splice_replaces_and_runs(self):
        p = _matching_program()
        lc = _legacy()
        plan = make_plan(p, "GLAF serial")
        result = splice_into_codebase(plan, lc, ["kern"])
        assert result.replaced == {"kern": "legacy.f90"}
        assert "GLAF-generated replacement for kern" in result.files["legacy.f90"]

        rt = FortranRuntime()
        if result.support_source:
            rt.load(result.support_source)
        for fname in sorted(result.files):
            rt.load(result.files[fname])
        phys = rt.modules["phys_mod"]
        phys.variables["fluxes"].store[...] = np.arange(1.0, 9.0)
        phys.variables["fin"].store.fields["tsfc"][()] = 0.5
        rt.call("set_wts_for_test", []) if False else None
        # Materialize COMMON by running the program (w defaults to zero).
        rt.run_program("main")
        assert rt.output == [("a1", 0.5)]  # fluxes*0 + tsfc

    def test_splice_missing_unit_rejected_without_flag(self):
        p = _matching_program()
        lc = _legacy()
        src = FortranGenerator(make_plan(p, "GLAF serial")).generate_module()
        with pytest.raises(IntegrationError):
            splice_units(lc, src, ["kern", "ghost"])

    def test_add_missing_appends_new_units(self):
        p = _matching_program()
        # Add an extra generated helper that has no legacy counterpart.
        mod = p.modules["M"]
        from repro.core.function import GlafFunction

        helper = GlafFunction(name="extra_helper")
        mod.add_function(helper)
        lc = _legacy()
        src = FortranGenerator(make_plan(p, "GLAF serial")).generate_module()
        result = splice_units(lc, src, ["kern", "extra_helper"], add_missing=True)
        assert "glaf_generated_units.f90" in result.files
        assert "extra_helper" in result.files["glaf_generated_units.f90"]


class TestWrapper:
    def test_wrapper_generation_and_run(self):
        p = _matching_program()
        plan = make_plan(p, "GLAF serial")
        gen = FortranGenerator(plan)
        module_src = gen.generate_module()
        wrapper = generate_wrapper(
            p, "kern",
            {"n": 8, "a": np.zeros(8)},
            module_name=gen.module_name,
        )
        assert "PROGRAM test_kern" in wrapper
        assert f"USE {gen.module_name}" in wrapper
        rt = FortranRuntime()
        rt.load(LEGACY)          # provides phys_mod
        rt.load(module_src)
        rt.load(wrapper)
        phys = rt.modules["phys_mod"]
        phys.variables["fluxes"].store[...] = np.ones(8)
        phys.variables["fin"].store.fields["tsfc"][()] = 2.0
        rt.run_program("test_kern")
        values = parse_wrapper_output(rt.output)
        # w (COMMON) is zero => a(i) = tsfc.
        assert values["a(3)"] == 2.0
        assert values["n"] == 8

    def test_wrapper_missing_required_input(self):
        p = _matching_program()
        with pytest.raises(IntegrationError, match="sample"):
            generate_wrapper(p, "kern", {"a": np.zeros(8)}, module_name="m")

    def test_wrapper_shape_mismatch(self):
        p = _matching_program()
        with pytest.raises(IntegrationError, match="shape"):
            generate_wrapper(p, "kern", {"n": 8, "a": np.zeros(3)},
                             module_name="m")


class TestReport:
    def test_features_exercised(self):
        p = _matching_program()
        report = build_report(make_plan(p, "GLAF-parallel v0"))
        feats = report.features_exercised()
        assert feats["existing_module_import (3.1)"]
        assert feats["common_blocks (3.2)"]
        assert feats["subroutines (3.4)"]
        assert feats["type_elements (3.5)"]
        text = report.to_text()
        assert "USE phys_mod" in text and "COMMON /wts/" in text
