# Convenience targets for the GLAF reproduction.

PYTHON ?= python

.PHONY: install test ci bench examples figures outputs clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# What .github/workflows/ci.yml runs: compile check, full suite, fault sweep.
ci:
	$(PYTHON) -m compileall -q src
	PYTHONPATH=src $(PYTHON) -m pytest -x -q
	PYTHONPATH=src $(PYTHON) -m repro faultcheck

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/codegen_tour.py
	$(PYTHON) examples/graph_kernel.py
	$(PYTHON) examples/sarb_integration.py
	$(PYTHON) examples/fun3d_jacobian.py

figures:
	$(PYTHON) examples/paper_figures.py

outputs:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .benchmarks
