# Convenience targets for the GLAF reproduction.

PYTHON ?= python

.PHONY: install test lint batch ci bench examples figures outputs clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Static parallel-correctness gate: every shipped SARB/FUN3D output must
# lint clean at every pruning level — structural rules plus the
# interprocedural dataflow rules (--dataflow) — and the seeded mutation
# corpus must be caught at 100% (docs/STATIC_ANALYSIS.md).
lint:
	PYTHONPATH=src $(PYTHON) -m repro lint
	PYTHONPATH=src $(PYTHON) -m repro lint --dataflow
	PYTHONPATH=src $(PYTHON) -m repro lint --selftest

# Batch-compiler smoke (docs/BATCH.md): a small corpus with one
# deliberately hostile item through the crash-isolated parallel driver.
# Exit 1 from the first run is the *expected* outcome — the poison item
# must be quarantined, not fatal — and the warm rerun must serve every
# healthy item from the content-addressed artifact cache.
batch:
	rm -rf .repro/batch-smoke
	rc=0; PYTHONPATH=src $(PYTHON) -m repro batch fuzz:7:8 poison:crash \
	  --jobs 2 --retries 1 --timeout 10 \
	  --cache .repro/batch-smoke/cache \
	  --checkpoint .repro/batch-smoke/ckpt \
	  --quarantine .repro/batch-smoke/quarantine \
	  --manifest .repro/batch-smoke/manifest.json || rc=$$?; \
	  test "$$rc" -eq 1
	ls .repro/batch-smoke/quarantine/batch-*.json
	PYTHONPATH=src $(PYTHON) -m repro batch fuzz:7:8 --jobs 2 \
	  --cache .repro/batch-smoke/cache \
	  --checkpoint .repro/batch-smoke/ckpt \
	  --quarantine .repro/batch-smoke/quarantine \
	  --manifest .repro/batch-smoke/warm.json | grep "8 hit(s)"

# What .github/workflows/ci.yml runs: compile check, full suite (once on
# the reference interpreter, once with REPRO_EXECUTOR=vectorized so the
# array executor serves every interpreter-mode run — docs/EXECUTORS.md),
# lint gate, fault sweep (includes the numeric.sentinel scenario), the
# fixed-seed differential fuzz campaign (docs/FUZZING.md), the
# crash-isolated batch-compiler smoke (docs/BATCH.md), the
# resume-integrity smoke (kill a bench recording *and* a batch
# campaign, resume both, verify digests — docs/NUMERICS.md,
# docs/BATCH.md), the run-ledger selftest (append, stale-index
# reconciliation, quarantine, every exporter — docs/RUN_LEDGER.md),
# and the benchmark regression gates against the committed baseline
# (interpreter and vectorized legs; the recorded artifacts carry the
# X1 executor-speedup and X2 warm-cache gates).
ci: lint batch
	$(PYTHON) -m compileall -q src
	PYTHONPATH=src $(PYTHON) -m pytest -x -q
	REPRO_EXECUTOR=vectorized PYTHONPATH=src $(PYTHON) -m pytest -x -q
	PYTHONPATH=src $(PYTHON) -m repro runs selftest
	PYTHONPATH=src $(PYTHON) -m repro faultcheck
	PYTHONPATH=src $(PYTHON) -m repro fuzz --seed 7 --count 25 --profile small --crosscheck
	$(PYTHON) scripts/resume_smoke.py
	PYTHONPATH=src $(PYTHON) -m repro bench record --repeats 3 --out BENCH_ci.json
	PYTHONPATH=src $(PYTHON) -m repro bench compare BENCH_2.json BENCH_ci.json --fail-on-regress 400
	PYTHONPATH=src $(PYTHON) -m repro bench record --repeats 3 --executor vectorized --out BENCH_vec.json
	PYTHONPATH=src $(PYTHON) -m repro bench compare BENCH_2.json BENCH_vec.json --fail-on-regress 400

# The shape-criteria suite plus a recorded BENCH_<n>.json artifact
# (docs/BENCHMARKING.md documents the artifact schema and the workflow).
bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ -q
	PYTHONPATH=src $(PYTHON) -m repro bench record --repeats 3

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/codegen_tour.py
	$(PYTHON) examples/graph_kernel.py
	$(PYTHON) examples/sarb_integration.py
	$(PYTHON) examples/fun3d_jacobian.py

figures:
	$(PYTHON) examples/paper_figures.py

outputs:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ -q 2>&1 | tee bench_output.txt

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .benchmarks
