# Convenience targets for the GLAF reproduction.

PYTHON ?= python

.PHONY: install test lint ci bench examples figures outputs clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Static parallel-correctness gate: every shipped SARB/FUN3D output must
# lint clean at every pruning level — structural rules plus the
# interprocedural dataflow rules (--dataflow) — and the seeded mutation
# corpus must be caught at 100% (docs/STATIC_ANALYSIS.md).
lint:
	PYTHONPATH=src $(PYTHON) -m repro lint
	PYTHONPATH=src $(PYTHON) -m repro lint --dataflow
	PYTHONPATH=src $(PYTHON) -m repro lint --selftest

# What .github/workflows/ci.yml runs: compile check, full suite (once on
# the reference interpreter, once with REPRO_EXECUTOR=vectorized so the
# array executor serves every interpreter-mode run — docs/EXECUTORS.md),
# lint gate, fault sweep (includes the numeric.sentinel scenario), the
# fixed-seed differential fuzz campaign (docs/FUZZING.md), the
# resume-integrity smoke (kill a recording, resume it, verify digest +
# schema — docs/NUMERICS.md), the run-ledger selftest (append,
# stale-index reconciliation, quarantine, every exporter —
# docs/RUN_LEDGER.md), and the benchmark regression gates against
# the committed baseline (interpreter and vectorized legs).
ci: lint
	$(PYTHON) -m compileall -q src
	PYTHONPATH=src $(PYTHON) -m pytest -x -q
	REPRO_EXECUTOR=vectorized PYTHONPATH=src $(PYTHON) -m pytest -x -q
	PYTHONPATH=src $(PYTHON) -m repro runs selftest
	PYTHONPATH=src $(PYTHON) -m repro faultcheck
	PYTHONPATH=src $(PYTHON) -m repro fuzz --seed 7 --count 25 --profile small --crosscheck
	$(PYTHON) scripts/resume_smoke.py
	PYTHONPATH=src $(PYTHON) -m repro bench record --repeats 3 --out BENCH_ci.json
	PYTHONPATH=src $(PYTHON) -m repro bench compare BENCH_2.json BENCH_ci.json --fail-on-regress 400
	PYTHONPATH=src $(PYTHON) -m repro bench record --repeats 3 --executor vectorized --out BENCH_vec.json
	PYTHONPATH=src $(PYTHON) -m repro bench compare BENCH_2.json BENCH_vec.json --fail-on-regress 400

# The shape-criteria suite plus a recorded BENCH_<n>.json artifact
# (docs/BENCHMARKING.md documents the artifact schema and the workflow).
bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ -q
	PYTHONPATH=src $(PYTHON) -m repro bench record --repeats 3

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/codegen_tour.py
	$(PYTHON) examples/graph_kernel.py
	$(PYTHON) examples/sarb_integration.py
	$(PYTHON) examples/fun3d_jacobian.py

figures:
	$(PYTHON) examples/paper_figures.py

outputs:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ -q 2>&1 | tee bench_output.txt

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .benchmarks
